//! Guarantees for the `Scenario` migration:
//!
//! 1. the low-level `MaintenanceHarness::assemble` entry point and the
//!    `Scenario` builder produce **byte-identical** `MaintenanceReport` JSON
//!    for the same fixed seed, so every pre-migration result (including
//!    those produced through the since-removed deprecated constructors,
//!    which were thin wrappers over `assemble`) stays reproducible;
//! 2. `ScenarioOutcome` round-trips through serde without loss.

use two_steps_ahead::adversary::RandomChurnAdversary;
use two_steps_ahead::maintenance::{MaintenanceHarness, MaintenanceParams};
use two_steps_ahead::prelude::*;
use two_steps_ahead::sim::ChurnRules;

fn params() -> MaintenanceParams {
    MaintenanceParams::new(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

#[test]
fn assemble_with_explicit_rules_and_scenario_builder_agree_byte_for_byte() {
    let params = params();
    let rules = ChurnRules {
        max_events: Some(params.overlay.n / 4),
        window: params.overlay.churn_window(),
        bootstrap_rounds: params.bootstrap_rounds(),
        ..ChurnRules::default()
    };
    let rounds = 2 * params.maturity_age();

    let mut old = MaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(2, 5),
        11,
        rules,
        params.paper_lateness(),
    );
    old.run_bootstrap();
    old.run(rounds);

    let mut new = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::budget(48 / 4))
        .adversary(AdversarySpec::random(2, 5))
        .seed(11)
        .build();
    new.run_bootstrap();
    new.run(rounds);

    let old_json = serde_json::to_string(&old.report()).unwrap();
    let new_json = serde_json::to_string(&new.report()).unwrap();
    assert_eq!(
        old_json, new_json,
        "the Scenario builder must reproduce the deprecated path exactly"
    );
}

#[test]
fn assemble_without_churn_budget_and_churn_none_agree_byte_for_byte() {
    let params = params();

    // The old `without_churn(params, seed)` constructor, spelled explicitly:
    // paper rules (the budget is irrelevant when nothing is ever churned)
    // against the Null adversary.
    let mut old = MaintenanceHarness::assemble(
        params,
        NullAdversary,
        42,
        params.paper_churn_rules(),
        params.paper_lateness(),
    );
    old.run_bootstrap();
    old.run(8);

    let mut new = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::none())
        .seed(42)
        .build();
    new.run_bootstrap();
    new.run(8);

    assert_eq!(
        serde_json::to_string(&old.report()).unwrap(),
        serde_json::to_string(&new.report()).unwrap(),
    );
}

#[test]
fn assemble_with_paper_rules_and_paper_churn_agree_byte_for_byte() {
    let params = params();

    let mut old = MaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(1, 3),
        7,
        params.paper_churn_rules(),
        params.paper_lateness(),
    );
    old.run_bootstrap();
    old.run(10);

    let mut new = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::paper())
        .adversary(AdversarySpec::random(1, 3))
        .seed(7)
        .build();
    new.run_bootstrap();
    new.run(10);

    assert_eq!(
        serde_json::to_string(&old.report()).unwrap(),
        serde_json::to_string(&new.report()).unwrap(),
    );
}

#[test]
fn maintained_outcome_round_trips_through_serde() {
    let outcome = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::budget(12))
        .adversary(AdversarySpec::targeted(1, 2))
        .seed(9)
        .run(10);
    let json = serde_json::to_string(&outcome).unwrap();
    let back: ScenarioOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
    assert_eq!(back.spec, outcome.spec);
    let (a, b) = (
        back.maintenance.as_ref().unwrap(),
        outcome.maintenance.as_ref().unwrap(),
    );
    assert_eq!(a.report.round, b.report.round);
    assert_eq!(a.metrics_summary.rounds, b.metrics_summary.rounds);
    assert_eq!(
        a.metrics.as_ref().unwrap().rounds().len(),
        b.metrics.as_ref().unwrap().rounds().len()
    );
}

#[test]
fn outcome_replays_exactly_from_its_embedded_spec_and_rounds() {
    let outcome = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::budget(12))
        .adversary(AdversarySpec::random(2, 5))
        .seed(13)
        .run(6);
    assert_eq!(outcome.rounds, 6, "rounds records the measured rounds");
    let replay = two_steps_ahead::scenario::Scenario::from_spec(outcome.spec).run(outcome.rounds);
    assert_eq!(
        serde_json::to_string(&replay.maintenance.as_ref().unwrap().report).unwrap(),
        serde_json::to_string(&outcome.maintenance.as_ref().unwrap().report).unwrap(),
        "replaying spec + rounds must reproduce the published report"
    );
}

#[test]
fn manual_run_without_bootstrap_still_replays_exactly() {
    // build() then run() without run_bootstrap(): the outcome must record
    // what actually happened (no bootstrap), not what the spec defaulted to.
    let mut run = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .seed(21)
        .build();
    run.run(10);
    let outcome = run.into_outcome();
    assert_eq!(outcome.rounds, 10);
    assert!(!outcome.spec.bootstrap, "spec corrected to what ran");
    let replay = two_steps_ahead::scenario::Scenario::from_spec(outcome.spec).run(outcome.rounds);
    assert_eq!(
        serde_json::to_string(&replay.maintenance.as_ref().unwrap().report).unwrap(),
        serde_json::to_string(&outcome.maintenance.as_ref().unwrap().report).unwrap(),
    );
}

#[test]
fn null_adversary_leaves_baseline_structures_intact() {
    let outcome = Scenario::baseline(BaselineKind::HdGraph)
        .with_n(96)
        .seed(4)
        .run(0);
    let b = outcome.baseline.unwrap();
    assert_eq!(b.budget, 0, "Null adversary spends no churn");
    assert_eq!(b.resilience.removed, 0);
    assert_eq!(b.resilience.largest_component_fraction, 1.0);
}

#[test]
fn one_shot_outcomes_round_trip_through_serde() {
    for outcome in [
        Scenario::baseline(BaselineKind::Spartan)
            .with_n(128)
            .churn(ChurnSpec::budget(32))
            .adversary(AdversarySpec::targeted(1, 4))
            .seed(12)
            .run(0),
        Scenario::routing(128)
            .with_replication(4)
            .holder_failure(0.25)
            .seed(5)
            .run(0),
        Scenario::sampling(128).attempts(20_000).seed(6).run(0),
    ] {
        let json = outcome.to_json_pretty();
        let back: ScenarioOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json_pretty(), json, "{}", outcome.label);
    }
}
