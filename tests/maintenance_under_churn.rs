//! Integration tests for Theorem 14: the maintenance protocol keeps the
//! overlay routable under adversarial churn, fresh nodes are integrated, and
//! the adversary's 2-late topology knowledge buys it nothing.

use two_steps_ahead::adversary::{RandomChurnAdversary, TargetedSwarmAdversary};
use two_steps_ahead::maintenance::{MaintenanceHarness, MaintenanceParams};
use two_steps_ahead::sim::{Adversary, ChurnRules};

fn small_params() -> MaintenanceParams {
    MaintenanceParams::new(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

fn run_with<A: Adversary>(adversary: A, rounds: u64) -> MaintenanceHarness<A> {
    let params = small_params();
    // Budget: n/4 churn events per churn window — four times the paper's
    // α = 1/16 rate, applied gradually.
    let rules = ChurnRules {
        max_events: Some(params.overlay.n / 4),
        window: params.overlay.churn_window(),
        bootstrap_rounds: params.bootstrap_rounds(),
        ..ChurnRules::default()
    };
    let mut harness =
        MaintenanceHarness::with_rules(params, adversary, 11, rules, params.paper_lateness());
    harness.run_bootstrap();
    harness.run(rounds);
    harness
}

#[test]
fn overlay_stays_connected_under_random_churn() {
    let params = small_params();
    let harness = run_with(
        RandomChurnAdversary::new(2, 5),
        3 * params.maturity_age(),
    );
    let report = harness.report();
    assert!(
        report.largest_component_fraction > 0.9,
        "random churn must not shatter the overlay: {report:?}"
    );
    assert!(report.participation_rate > 0.8, "{report:?}");
    assert!(report.min_swarm_size > 0, "{report:?}");
}

#[test]
fn overlay_stays_connected_under_targeted_churn() {
    let params = small_params();
    let harness = run_with(
        TargetedSwarmAdversary::new(2, 6),
        3 * params.maturity_age(),
    );
    let report = harness.report();
    assert!(
        report.largest_component_fraction > 0.9,
        "a 2-late targeted adversary must do no better than random churn (Lemma 16): {report:?}"
    );
}

#[test]
fn churned_in_nodes_eventually_join_the_overlay() {
    let params = small_params();
    let harness = run_with(RandomChurnAdversary::new(2, 7), 4 * params.maturity_age());
    let snapshots = harness.snapshots();
    let late_joiners: Vec<_> = snapshots
        .iter()
        .filter(|(_, s)| !s.genesis && s.mature)
        .collect();
    assert!(
        !late_joiners.is_empty(),
        "the run must contain nodes that joined after the bootstrap and matured"
    );
    let integrated = late_joiners.iter().filter(|(_, s)| s.participating).count();
    assert!(
        integrated * 2 >= late_joiners.len(),
        "at least half of the matured late joiners must be wired into the overlay \
         ({integrated}/{})",
        late_joiners.len()
    );
}

#[test]
fn congestion_stays_polylogarithmic() {
    let params = small_params();
    let harness = run_with(RandomChurnAdversary::new(2, 8), 2 * params.maturity_age());
    let lambda = params.lambda() as usize;
    let peak = harness.metrics().peak_congestion();
    // Lemma 24: O(log^3 n) messages per node and round. With the small
    // constants used in tests the peak must stay well below n * λ and within a
    // modest multiple of λ^3.
    assert!(
        peak < 60 * lambda * lambda * lambda,
        "peak congestion {peak} is not O(log^3 n) (λ = {lambda})"
    );
}

#[test]
fn fresh_nodes_are_known_by_mature_nodes() {
    // Lemma 20/22: every fresh node connects to Θ(δ) mature nodes and no
    // mature node is overloaded with connects.
    let params = small_params();
    let harness = run_with(RandomChurnAdversary::new(2, 9), 2 * params.maturity_age());
    let connect_load = harness.connect_load();
    let max_load = connect_load.values().copied().max().unwrap_or(0);
    assert!(
        max_load <= 2 * params.delta + params.connect_slots(),
        "a mature node received {max_load} connects, far above 2δ = {}",
        params.connect_slots()
    );
}
