//! Integration tests for Theorem 14: the maintenance protocol keeps the
//! overlay routable under adversarial churn, fresh nodes are integrated, and
//! the adversary's 2-late topology knowledge buys it nothing. All scenarios
//! are composed through the `Scenario` builder.

use two_steps_ahead::prelude::*;
use two_steps_ahead::scenario::ScenarioRun;

fn small_scenario() -> Scenario {
    Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

fn run_with(adversary: AdversarySpec, rounds: u64) -> ScenarioRun {
    // Budget: n/4 churn events per churn window — four times the paper's
    // α = 1/16 rate, applied gradually.
    let mut run = small_scenario()
        .churn(ChurnSpec::budget(48 / 4))
        .adversary(adversary)
        .seed(11)
        .build();
    run.run_bootstrap();
    run.run(rounds);
    run
}

#[test]
fn overlay_stays_connected_under_random_churn() {
    let maturity_age = small_scenario().spec().maintenance_params().maturity_age();
    let run = run_with(AdversarySpec::random(2, 5), 3 * maturity_age);
    let report = run.report();
    assert!(
        report.largest_component_fraction > 0.9,
        "random churn must not shatter the overlay: {report:?}"
    );
    assert!(report.participation_rate > 0.8, "{report:?}");
    assert!(report.min_swarm_size > 0, "{report:?}");
}

#[test]
fn overlay_stays_connected_under_targeted_churn() {
    let maturity_age = small_scenario().spec().maintenance_params().maturity_age();
    let run = run_with(AdversarySpec::targeted(2, 6), 3 * maturity_age);
    let report = run.report();
    assert!(
        report.largest_component_fraction > 0.9,
        "a 2-late targeted adversary must do no better than random churn (Lemma 16): {report:?}"
    );
}

#[test]
fn churned_in_nodes_eventually_join_the_overlay() {
    let maturity_age = small_scenario().spec().maintenance_params().maturity_age();
    let run = run_with(AdversarySpec::random(2, 7), 4 * maturity_age);
    let snapshots = run.snapshots();
    let late_joiners: Vec<_> = snapshots
        .iter()
        .filter(|(_, s)| !s.genesis && s.mature)
        .collect();
    assert!(
        !late_joiners.is_empty(),
        "the run must contain nodes that joined after the bootstrap and matured"
    );
    let integrated = late_joiners.iter().filter(|(_, s)| s.participating).count();
    assert!(
        integrated * 2 >= late_joiners.len(),
        "at least half of the matured late joiners must be wired into the overlay \
         ({integrated}/{})",
        late_joiners.len()
    );
}

#[test]
fn congestion_stays_polylogarithmic() {
    let params = small_scenario().spec().maintenance_params();
    let run = run_with(AdversarySpec::random(2, 8), 2 * params.maturity_age());
    let lambda = params.lambda() as usize;
    let peak = run.metrics().peak_congestion();
    // Lemma 24: O(log^3 n) messages per node and round. With the small
    // constants used in tests the peak must stay well below n * λ and within a
    // modest multiple of λ^3.
    assert!(
        peak < 60 * lambda * lambda * lambda,
        "peak congestion {peak} is not O(log^3 n) (λ = {lambda})"
    );
}

#[test]
fn fresh_nodes_are_known_by_mature_nodes() {
    // Lemma 20/22: every fresh node connects to Θ(δ) mature nodes and no
    // mature node is overloaded with connects.
    let params = small_scenario().spec().maintenance_params();
    let run = run_with(AdversarySpec::random(2, 9), 2 * params.maturity_age());
    let connect_load = run.connect_load();
    let max_load = connect_load.values().copied().max().unwrap_or(0);
    assert!(
        max_load <= 2 * params.delta + params.connect_slots(),
        "a mature node received {max_load} connects, far above 2δ = {}",
        params.connect_slots()
    );
}

#[test]
fn scenario_outcome_captures_the_run() {
    let run = run_with(AdversarySpec::targeted(2, 6), 20);
    let outcome = run.into_outcome();
    assert!(outcome.maintenance.is_some());
    let json = outcome.to_json();
    assert!(json.contains("\"Targeted\""), "spec embedded in outcome");
}
