//! Property-based integration tests for the structural invariants the paper's
//! proofs rely on: the swarm property (Lemma 6), connectivity of the LDS, the
//! witness-overlap argument of Lemma 19, and the goodness bound of Lemma 17
//! under random survival.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use two_steps_ahead::overlay::{Interval, Lds, OverlayParams, Position};
use two_steps_ahead::scenario::{ExecutionModel, LatencyModel, Scenario};
use two_steps_ahead::sim::NodeId;

fn lds(n: usize, c: f64, seed: u64) -> Lds {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Lds::random(
        OverlayParams::new(n, c),
        (0..n as u64).map(NodeId),
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lemma 6: every swarm is adjacent to both of its de Bruijn image swarms.
    #[test]
    fn swarm_property_holds_everywhere(seed in 0u64..1000, p in 0.0f64..1.0) {
        let overlay = lds(192, 2.0, seed);
        prop_assert!(overlay.swarm_property_holds_at(Position::new(p)));
    }

    /// The LDS over uniformly random positions is connected for c ≥ 2.
    #[test]
    fn lds_is_connected(seed in 0u64..1000) {
        let overlay = lds(160, 2.0, seed);
        prop_assert!(overlay.to_graph().is_connected());
    }

    /// Lemma 19's witness argument: the responsibility interval of any point
    /// overlaps the list interval of any neighbour position by at least cλ/n,
    /// so a non-empty swarm always contains a witness that knows both.
    #[test]
    fn neighbor_responsibility_intervals_overlap(seed in 0u64..1000, p in 0.0f64..1.0) {
        let overlay = lds(160, 2.0, seed);
        let params = *overlay.params();
        let p = Position::new(p);
        // Any point within the list radius of p is a potential list neighbour.
        let q = p.offset(params.list_radius() * 0.99);
        let ip = Interval::around(p, params.swarm_radius());
        let iq = Interval::around(q, params.list_radius());
        prop_assert!(ip.overlap_length(&iq) >= params.swarm_radius() - 1e-12);
    }

    /// Lemma 17 (qualitative): if every node independently survives with
    /// probability 15/16, the vast majority of swarms keep at least 3/4 of
    /// their members.
    #[test]
    fn random_survival_keeps_swarms_good(seed in 0u64..1000) {
        let overlay = lds(256, 2.0, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
        let survivors: HashSet<NodeId> = overlay
            .members()
            .filter(|_| rng.gen::<f64>() < 15.0 / 16.0)
            .collect();
        let stats = overlay.goodness_stats(&survivors, 0.75);
        prop_assert!(
            stats.good_share > 0.9,
            "only {} of swarms stayed good",
            stats.good_share
        );
    }

    /// Every node is a member of its own swarm, and swarm membership is
    /// symmetric in the distance sense: if v ∈ S(p_w) then w ∈ S(p_v).
    #[test]
    fn swarm_membership_is_symmetric(seed in 0u64..1000) {
        let overlay = lds(96, 1.5, seed);
        for id in overlay.members().take(16) {
            let p = overlay.position(id).unwrap();
            let swarm = overlay.swarm(p);
            prop_assert!(swarm.contains(&id));
            for other in swarm {
                let q = overlay.position(other).unwrap();
                prop_assert!(overlay.swarm(q).contains(&id));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The maintained overlay's invariants under the *asynchronous* engine
    /// (sub-round constant latency): the paper's proofs assume synchronous
    /// rounds, and until this test the invariant suite was only asserted
    /// there. A sub-round delay provably reproduces the round engine, so
    /// the invariants must hold bit-for-bit on the event engine too — full
    /// participation, connectivity, the swarm property (no empty swarm of
    /// the ideal overlay, Lemma 6's routability prerequisite) and a nonzero
    /// congestion bound (Lemma 24's measured quantity). Fewer cases than
    /// the structural block above: each case is two full maintained runs.
    #[test]
    fn maintained_invariants_hold_under_async_execution(seed in 0u64..1000) {
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(seed)
        };
        let asynch = base()
            .execution(ExecutionModel::asynchronous(LatencyModel::constant(500)))
            .run(4);
        let m = asynch.maintenance.as_ref().expect("maintained outcome");
        prop_assert_eq!(m.report.node_count, 48);
        prop_assert_eq!(m.report.participation_rate, 1.0);
        prop_assert!(m.report.connected, "connectivity invariant: {:?}", m.report);
        prop_assert!(
            m.report.min_swarm_size > 0,
            "swarm property (no empty swarm): {:?}",
            m.report
        );
        prop_assert!(asynch.is_routable());
        prop_assert!(m.metrics_summary.peak_congestion > 0);

        // ... and the asynchronous run is the synchronous engine, byte for
        // byte (the sub-round equivalence the invariants inherit from). The
        // network counters are the async engine's own observables — the
        // round engine has none — so they come out before the comparison
        // (after checking they describe a loss-free network).
        let sync = base().run(4);
        let mut normalized = asynch.clone();
        normalized.spec.execution = ExecutionModel::Rounds;
        let stats = normalized
            .maintenance
            .as_mut()
            .and_then(|m| m.net_stats.take())
            .expect("async runs expose network counters");
        prop_assert!(stats.sent > 0);
        prop_assert_eq!(stats.lost, 0);
        prop_assert_eq!(
            serde_json::to_string(&normalized).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }
}

#[test]
fn degrees_grow_logarithmically_not_linearly() {
    // The LDS degree is Θ(log n): going from n=128 to n=512 must not multiply
    // the mean degree by anything close to 4.
    let d128 = lds(128, 2.0, 1).to_graph().mean_out_degree();
    let d512 = lds(512, 2.0, 1).to_graph().mean_out_degree();
    assert!(d512 < 2.0 * d128, "degree grew too fast: {d128} -> {d512}");
    assert!(
        d512 > 0.8 * d128,
        "degree should not shrink: {d128} -> {d512}"
    );
}

#[test]
fn ldg_has_constant_degree_but_dies_without_swarms() {
    // The classical LDG (the baseline the LDS extends) has constant degree;
    // removing a node's whole neighbourhood isolates it, which is exactly what
    // swarms prevent.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let ldg = two_steps_ahead::overlay::Ldg::random((0..256).map(NodeId), &mut rng);
    assert!(ldg.max_degree() <= 4);
    let graph = ldg.to_graph();
    let victim = NodeId(0);
    let neighborhood: HashSet<NodeId> = graph.neighbors(victim).iter().copied().collect();
    let survivors: HashSet<NodeId> = graph
        .vertices()
        .filter(|v| !neighborhood.contains(v))
        .collect();
    let restricted = graph.restrict_to(&survivors);
    assert_eq!(
        restricted.out_degree(victim),
        0,
        "removing the constant-size neighbourhood isolates an LDG node"
    );
}
