//! Integration tests for Section 4: routing (Lemma 9-12) and sampling
//! (Lemma 13) measured end to end over routable series of LDS overlays.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use two_steps_ahead::analysis::{fit_proportional, uniformity};
use two_steps_ahead::overlay::{Interval, Lds, OverlayParams, Position};
use two_steps_ahead::routing::{
    sample_many, trajectory_crossings, uniform_workload, RoutableSeries, RoutingConfig, RoutingSim,
};
use two_steps_ahead::sim::NodeId;

fn series(n: usize, seed: u64) -> RoutableSeries {
    RoutableSeries::new(
        OverlayParams::with_default_c(n),
        seed,
        (0..n as u64).map(NodeId),
    )
}

#[test]
fn lemma9_dilation_and_delivery_under_quarter_failures() {
    let s = series(256, 1);
    let lambda = s.params().lambda() as u64;
    let config = RoutingConfig::default()
        .with_replication(4)
        .with_holder_failure(0.25)
        .with_seed(2);
    let report = RoutingSim::new(&s, config).route_all(0, &uniform_workload(&s, 1, 3));
    assert!(
        report.delivery_rate() > 0.97,
        "delivery {}",
        report.delivery_rate()
    );
    assert_eq!(report.dilation, 2 * lambda + 2);
    for o in report.outcomes.iter().filter(|o| o.delivered) {
        assert_eq!(o.rounds, 2 * lambda + 2, "dilation must be exactly 2λ+2");
    }
}

#[test]
fn lemma9_congestion_grows_linearly_in_k() {
    let s = series(256, 4);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in [1usize, 2, 4] {
        let report = RoutingSim::new(&s, RoutingConfig::default().with_seed(5))
            .route_all(0, &uniform_workload(&s, k, 7 + k as u64));
        xs.push(k as f64);
        ys.push(report.max_congestion as f64);
    }
    let (_, r2) = fit_proportional(&xs, &ys);
    assert!(
        r2 > 0.8,
        "congestion should scale ~linearly with k (R² = {r2})"
    );
    assert!(ys[2] > ys[0], "more load, more congestion");
}

#[test]
fn lemma12_trajectory_crossings_match_expectation() {
    let s = series(512, 6);
    let overlay = s.overlay(0);
    let k = 2usize;
    let msgs = uniform_workload(&s, k, 8);
    let interval = Interval::around(Position::new(0.37), 0.05);
    let lambda = s.params().lambda() as usize;
    // Expectation per Lemma 12: k * n * |I| crossings at every step.
    let expected = k as f64 * 512.0 * interval.length();
    for j in [1usize, lambda / 2, lambda] {
        let crossings = trajectory_crossings(&overlay, &msgs, j, &interval) as f64;
        assert!(
            crossings > expected * 0.5 && crossings < expected * 1.7,
            "step {j}: crossings {crossings} far from expectation {expected}"
        );
    }
}

#[test]
fn lemma13_sampling_is_uniform_and_rarely_discarded() {
    let n = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let overlay = Lds::random(
        OverlayParams::with_default_c(n),
        (0..n as u64).map(NodeId),
        &mut rng,
    );
    let report = sample_many(&overlay, 50_000, 10);
    assert!(
        report.discard_rate() < 0.6,
        "discard rate {}",
        report.discard_rate()
    );
    let uni = uniformity(&report.hits, n);
    assert_eq!(
        report.distinct_nodes(),
        n,
        "every node must be reachable by sampling"
    );
    assert!(
        uni.total_variation < 0.15,
        "sampling far from uniform: {uni:?}"
    );
}

#[test]
fn routing_fails_gracefully_when_swarms_are_wiped_out() {
    // With 90% of every swarm failing each step and no redundancy, messages
    // must get lost — the delivery guarantee only holds for good swarms.
    let s = series(128, 11);
    let config = RoutingConfig::default()
        .with_replication(1)
        .with_holder_failure(0.9)
        .with_seed(12);
    let report = RoutingSim::new(&s, config).route_all(0, &uniform_workload(&s, 1, 13));
    assert!(
        report.delivery_rate() < 0.9,
        "with 90% failures and r=1 some messages must be lost"
    );
}
