//! `A_ROUTING` (Listing 1): redundant swarm-to-swarm routing along trajectories.
//!
//! A message from a node `v` to a point `p` is first broadcast to `v`'s own
//! swarm, then travels along the trajectory `τ(v, p)` (Definition 7). In every
//! *forwarding* step each holder forwards `r` copies to uniformly chosen
//! members of the next trajectory point's swarm; in every *handover* step the
//! copies move from the current overlay's swarm to the next overlay's swarm at
//! the same point. The final step broadcasts to the whole target swarm, so the
//! message arrives after exactly `2λ + 2` rounds (Lemma 9).
//!
//! This module executes the algorithm directly over a [`RoutableSeries`] (a
//! sequence of LDS snapshots) so its dilation, delivery rate and congestion
//! can be measured in isolation; the full message-level implementation inside
//! the maintenance protocol lives in `tsa-core`.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use tsa_overlay::{Interval, Lds, Position, Trajectory};
use tsa_sim::NodeId;

use crate::config::RoutingConfig;
use crate::congestion::CongestionTracker;
use crate::series::RoutableSeries;

/// One message to be routed: a source node and a target point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageSpec {
    /// The node that starts the message (must be a member of the series).
    pub source: NodeId,
    /// The target address `p ∈ [0,1)`.
    pub target: Position,
}

/// The fate of one routed message.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct MessageOutcome {
    /// Whether at least one member of the target swarm received the message.
    pub delivered: bool,
    /// Rounds from start to delivery (always `2λ + 2` when delivered).
    pub rounds: u64,
    /// Total copies created for this message.
    pub copies: usize,
    /// Fraction of the target swarm that received the message.
    pub target_coverage: f64,
}

/// Aggregate result of routing a batch of messages.
#[derive(Clone, Debug, Serialize)]
pub struct RoutingReport {
    /// Per-message outcomes.
    pub outcomes: Vec<MessageOutcome>,
    /// Number of delivered messages.
    pub delivered: usize,
    /// Number of messages routed.
    pub total: usize,
    /// The dilation `2λ + 2` every delivered message took.
    pub dilation: u64,
    /// Maximum copies handled by one node in one round (Lemma 9 congestion).
    pub max_congestion: usize,
    /// Mean copies per active (node, round) pair.
    pub mean_congestion: f64,
    /// Total copies created across all messages.
    pub total_copies: usize,
}

impl RoutingReport {
    /// Delivered fraction.
    pub fn delivery_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.delivered as f64 / self.total as f64
        }
    }

    /// Mean fraction of the target swarm covered, over delivered messages.
    pub fn mean_target_coverage(&self) -> f64 {
        let delivered: Vec<&MessageOutcome> =
            self.outcomes.iter().filter(|o| o.delivered).collect();
        if delivered.is_empty() {
            return 0.0;
        }
        delivered.iter().map(|o| o.target_coverage).sum::<f64>() / delivered.len() as f64
    }
}

/// Executes `A_ROUTING` over a routable series of overlays.
pub struct RoutingSim<'a> {
    series: &'a RoutableSeries,
    config: RoutingConfig,
}

impl<'a> RoutingSim<'a> {
    /// Creates a routing simulation.
    pub fn new(series: &'a RoutableSeries, config: RoutingConfig) -> Self {
        RoutingSim { series, config }
    }

    /// Routes every message in `messages`, all starting in overlay epoch
    /// `first_epoch`, and reports delivery and congestion statistics.
    pub fn route_all(&self, first_epoch: u64, messages: &[MessageSpec]) -> RoutingReport {
        let lambda = self.series.params().lambda();
        let overlays = self.series.window(first_epoch, lambda as usize + 1);
        let mut congestion = CongestionTracker::new();
        let mut outcomes = Vec::with_capacity(messages.len());
        for (idx, spec) in messages.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.config.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            outcomes.push(self.route_one(spec, &overlays, lambda, &mut congestion, &mut rng));
        }
        let delivered = outcomes.iter().filter(|o| o.delivered).count();
        RoutingReport {
            delivered,
            total: outcomes.len(),
            dilation: 2 * lambda as u64 + 2,
            max_congestion: congestion.max_per_node_round(),
            mean_congestion: congestion.mean_per_active_node_round(),
            total_copies: congestion.total(),
            outcomes,
        }
    }

    /// Routes a single message along its trajectory through `overlays`
    /// (`overlays[i]` is the overlay used for forwarding step `i + 1`).
    fn route_one(
        &self,
        spec: &MessageSpec,
        overlays: &[Lds],
        lambda: u32,
        congestion: &mut CongestionTracker,
        rng: &mut ChaCha8Rng,
    ) -> MessageOutcome {
        let d0 = &overlays[0];
        let Some(source_pos) = d0.position(spec.source) else {
            return MessageOutcome {
                delivered: false,
                rounds: 0,
                copies: 0,
                target_coverage: 0.0,
            };
        };
        let trajectory = Trajectory::compute(source_pos, spec.target, lambda);
        let mut copies_total = 0usize;
        let mut round: u64 = 0;

        // Initial step: broadcast to the source's own swarm S(x_0).
        let mut holders: Vec<NodeId> = d0.swarm(source_pos);
        round += 1;
        for &h in &holders {
            congestion.record(round, h, 1);
        }
        copies_total += holders.len();

        // λ forwarding steps, each followed by a handover to the next overlay.
        for i in 1..=lambda as usize {
            let overlay = &overlays[i - 1];
            let next_point = trajectory.point(i);
            let target_swarm = overlay.swarm(next_point);
            holders = self.transfer(&holders, &target_swarm, false, congestion, round + 1, rng);
            round += 1;
            copies_total += holders.len();
            if holders.is_empty() {
                return MessageOutcome {
                    delivered: false,
                    rounds: round,
                    copies: copies_total,
                    target_coverage: 0.0,
                };
            }

            // Handover: same trajectory point, next overlay.
            let next_overlay = &overlays[i.min(overlays.len() - 1)];
            let handover_swarm = next_overlay.swarm(next_point);
            holders = self.transfer(&holders, &handover_swarm, false, congestion, round + 1, rng);
            round += 1;
            copies_total += holders.len();
            if holders.is_empty() {
                return MessageOutcome {
                    delivered: false,
                    rounds: round,
                    copies: copies_total,
                    target_coverage: 0.0,
                };
            }
        }

        // Final step: broadcast to the whole target swarm S(p) in the current
        // overlay.
        let final_overlay = &overlays[overlays.len() - 1];
        let target_swarm = final_overlay.swarm(spec.target);
        let reached = self.transfer(&holders, &target_swarm, true, congestion, round + 1, rng);
        round += 1;
        copies_total += reached.len();
        let coverage = if target_swarm.is_empty() {
            0.0
        } else {
            reached.len() as f64 / target_swarm.len() as f64
        };
        MessageOutcome {
            delivered: !reached.is_empty(),
            rounds: round,
            copies: copies_total,
            target_coverage: coverage,
        }
    }

    /// One transfer step: every surviving holder forwards copies into
    /// `target_swarm`. With `broadcast` each holder contacts the whole swarm
    /// (initial/final step); otherwise each holder picks `r` uniform members.
    /// Returns the distinct members that received at least one copy.
    fn transfer(
        &self,
        holders: &[NodeId],
        target_swarm: &[NodeId],
        broadcast: bool,
        congestion: &mut CongestionTracker,
        round: u64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        if target_swarm.is_empty() {
            return Vec::new();
        }
        let mut received: Vec<NodeId> = Vec::new();
        for &_holder in holders {
            if self.config.holder_failure > 0.0 && rng.gen::<f64>() < self.config.holder_failure {
                continue; // this holder was churned out before it could forward
            }
            if broadcast {
                for &t in target_swarm {
                    congestion.record(round, t, 1);
                    received.push(t);
                }
            } else {
                for _ in 0..self.config.replication {
                    let &t = target_swarm.choose(rng).expect("non-empty swarm");
                    congestion.record(round, t, 1);
                    received.push(t);
                }
            }
        }
        received.sort();
        received.dedup();
        received
    }
}

/// Counts how many of `messages` have the `j`-th point of their trajectory in
/// `interval` (the quantity of Lemma 12, whose expectation is `k · n · |I|`).
pub fn trajectory_crossings(
    overlay: &Lds,
    messages: &[MessageSpec],
    j: usize,
    interval: &Interval,
) -> usize {
    let lambda = overlay.params().lambda();
    messages
        .iter()
        .filter(|spec| {
            overlay
                .position(spec.source)
                .map(|src| {
                    let t = Trajectory::compute(src, spec.target, lambda);
                    j < t.len() && interval.contains(t.point(j))
                })
                .unwrap_or(false)
        })
        .count()
}

/// Generates `k` messages per member of the series, each with an independent
/// uniformly random target — the workload of Lemma 9.
pub fn uniform_workload(series: &RoutableSeries, k: usize, seed: u64) -> Vec<MessageSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(series.len() * k);
    for &m in series.members() {
        for _ in 0..k {
            out.push(MessageSpec {
                source: m,
                target: Position::new(rng.gen::<f64>()),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_overlay::OverlayParams;

    fn series(n: usize) -> RoutableSeries {
        RoutableSeries::new(
            OverlayParams::with_default_c(n),
            1234,
            (0..n as u64).map(NodeId),
        )
    }

    #[test]
    fn all_messages_delivered_without_failures() {
        let s = series(128);
        let sim = RoutingSim::new(&s, RoutingConfig::default());
        let msgs = uniform_workload(&s, 1, 7);
        let report = sim.route_all(0, &msgs);
        assert_eq!(report.total, 128);
        assert_eq!(
            report.delivered, 128,
            "every message must be delivered on a good series"
        );
        assert!((report.delivery_rate() - 1.0).abs() < 1e-12);
        assert!(
            report.mean_target_coverage() > 0.99,
            "final broadcast covers the whole swarm"
        );
    }

    #[test]
    fn dilation_is_exactly_two_lambda_plus_two() {
        let s = series(64);
        let lambda = s.params().lambda() as u64;
        let sim = RoutingSim::new(&s, RoutingConfig::default());
        let msgs = uniform_workload(&s, 1, 3);
        let report = sim.route_all(0, &msgs);
        assert_eq!(report.dilation, 2 * lambda + 2);
        for o in &report.outcomes {
            if o.delivered {
                assert_eq!(o.rounds, 2 * lambda + 2);
            }
        }
    }

    #[test]
    fn routing_survives_quarter_holder_failures() {
        let s = series(256);
        let config = RoutingConfig::default()
            .with_holder_failure(0.25)
            .with_replication(4);
        let sim = RoutingSim::new(&s, config);
        let msgs = uniform_workload(&s, 1, 11);
        let report = sim.route_all(0, &msgs);
        assert!(
            report.delivery_rate() > 0.97,
            "delivery rate {} too low under 25% holder failure",
            report.delivery_rate()
        );
    }

    #[test]
    fn congestion_scales_like_k_log_n() {
        let s = series(256);
        let sim = RoutingSim::new(&s, RoutingConfig::default());
        let r1 = sim.route_all(0, &uniform_workload(&s, 1, 5));
        let r4 = sim.route_all(0, &uniform_workload(&s, 4, 5));
        assert!(
            r4.max_congestion > r1.max_congestion,
            "more messages, more congestion"
        );
        // The peak is dominated by the final whole-swarm broadcast, so it is a
        // small multiple of k · λ · (swarm size); it must stay polylogarithmic
        // in n rather than anywhere near linear.
        let lambda = s.params().lambda() as usize;
        assert!(
            r1.max_congestion < 40 * lambda * lambda,
            "congestion {} unexpectedly large vs λ = {lambda}",
            r1.max_congestion
        );
        assert!(
            r4.max_congestion < 10 * r1.max_congestion,
            "congestion must scale roughly linearly in k"
        );
    }

    #[test]
    fn unknown_source_is_not_delivered() {
        let s = series(32);
        let sim = RoutingSim::new(&s, RoutingConfig::default());
        let report = sim.route_all(
            0,
            &[MessageSpec {
                source: NodeId(9999),
                target: Position::new(0.5),
            }],
        );
        assert_eq!(report.delivered, 0);
        assert_eq!(report.outcomes[0].copies, 0);
    }

    #[test]
    fn trajectory_crossings_counts_matching_messages() {
        let s = series(64);
        let overlay = s.overlay(0);
        let msgs = uniform_workload(&s, 2, 9);
        let full_ring = Interval::around(Position::new(0.5), 0.5);
        assert_eq!(
            trajectory_crossings(&overlay, &msgs, 0, &full_ring),
            msgs.len(),
            "every trajectory's 0th point lies somewhere on the ring"
        );
        let empty = Interval::around(Position::new(0.5), 0.0);
        assert!(trajectory_crossings(&overlay, &msgs, 1, &empty) <= msgs.len() / 8);
    }

    #[test]
    fn uniform_workload_generates_k_messages_per_node() {
        let s = series(16);
        let msgs = uniform_workload(&s, 3, 1);
        assert_eq!(msgs.len(), 48);
        assert!(msgs.iter().filter(|m| m.source == NodeId(5)).count() == 3);
    }
}
