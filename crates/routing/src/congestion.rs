//! Congestion accounting for the routing experiments.
//!
//! Lemma 9 claims dilation exactly `2λ + 2` and congestion `O(k log n)` when
//! every node starts `k` messages to uniform targets. The tracker records how
//! many message copies every node handles in every round so the experiment can
//! report the maximum and compare it against `k · log n`.

use std::collections::HashMap;

use tsa_sim::{NodeId, Round};

/// Records message copies handled per node per round.
#[derive(Clone, Debug, Default)]
pub struct CongestionTracker {
    per_round: HashMap<Round, HashMap<NodeId, usize>>,
    total: usize,
}

impl CongestionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` handled `copies` message copies in `round`.
    pub fn record(&mut self, round: Round, node: NodeId, copies: usize) {
        if copies == 0 {
            return;
        }
        *self
            .per_round
            .entry(round)
            .or_default()
            .entry(node)
            .or_insert(0) += copies;
        self.total += copies;
    }

    /// Total copies handled over the whole run.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The largest number of copies any single node handled in any single
    /// round — the congestion of Lemma 9.
    pub fn max_per_node_round(&self) -> usize {
        self.per_round
            .values()
            .flat_map(|m| m.values())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Mean copies per (node, round) pair that handled at least one copy.
    pub fn mean_per_active_node_round(&self) -> f64 {
        let count: usize = self.per_round.values().map(|m| m.len()).sum();
        if count == 0 {
            0.0
        } else {
            self.total as f64 / count as f64
        }
    }

    /// The per-round maxima, sorted by round (for time-series plots).
    pub fn per_round_max(&self) -> Vec<(Round, usize)> {
        let mut v: Vec<(Round, usize)> = self
            .per_round
            .iter()
            .map(|(r, m)| (*r, m.values().copied().max().unwrap_or(0)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of distinct rounds with recorded traffic.
    pub fn rounds(&self) -> usize {
        self.per_round.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut t = CongestionTracker::new();
        t.record(0, NodeId(1), 3);
        t.record(0, NodeId(1), 2);
        t.record(0, NodeId(2), 1);
        t.record(1, NodeId(3), 7);
        t.record(1, NodeId(4), 0); // ignored
        assert_eq!(t.total(), 13);
        assert_eq!(t.max_per_node_round(), 7);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.per_round_max(), vec![(0, 5), (1, 7)]);
        assert!((t.mean_per_active_node_round() - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let t = CongestionTracker::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.max_per_node_round(), 0);
        assert_eq!(t.mean_per_active_node_round(), 0.0);
        assert!(t.per_round_max().is_empty());
    }
}
