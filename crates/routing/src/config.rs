//! Routing configuration.

use serde::{Deserialize, Serialize};

/// Parameters of `A_ROUTING` (Listing 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// The replication factor `r ∈ Θ(1)`: how many random members of the next
    /// swarm each holder forwards a copy to. The paper's analysis (Lemma 11)
    /// only needs a sufficiently large constant; 3 already works well in
    /// practice and 4 is a comfortable default.
    pub replication: usize,
    /// Probability that an individual holder fails to forward in a step
    /// (models churned-out swarm members when the routing layer is exercised
    /// without the full maintenance protocol). The goodness assumption of
    /// Definition 8 corresponds to values up to `1/4`.
    pub holder_failure: f64,
    /// Seed for the routing layer's random choices.
    pub seed: u64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            replication: 4,
            holder_failure: 0.0,
            seed: 0xA11CE,
        }
    }
}

impl RoutingConfig {
    /// Sets the replication factor `r`.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r;
        self
    }

    /// Sets the per-step holder failure probability.
    pub fn with_holder_failure(mut self, p: f64) -> Self {
        self.holder_failure = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reasonable() {
        let c = RoutingConfig::default();
        assert!(c.replication >= 3);
        assert_eq!(c.holder_failure, 0.0);
    }

    #[test]
    fn builders_compose_and_clamp() {
        let c = RoutingConfig::default()
            .with_replication(7)
            .with_holder_failure(2.0)
            .with_seed(5);
        assert_eq!(c.replication, 7);
        assert_eq!(c.holder_failure, 1.0);
        assert_eq!(c.seed, 5);
    }
}
