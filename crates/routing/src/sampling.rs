//! `A_SAMPLING` (Listing 2): sending a message to a uniformly random node.
//!
//! The technique is adapted from King & Saia: pick a uniform target point
//! `p ∈ [0,1)` and a uniform offset `Δ ∈ {0, …, 2cλ}`, route to the swarm
//! `S(p)` with `A_ROUTING`, then deliver only to the node `u ∈ S(p)` such that
//! exactly `Δ` swarm members lie clockwise between `p` and `u`; if no such
//! node exists the message is discarded. Lemma 13 shows every node is chosen
//! with the same probability and the discard probability is at most `1/2`.

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use tsa_overlay::{Lds, Position};
use tsa_sim::NodeId;

/// Result of a batch of sampling attempts.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SamplingReport {
    /// How often each node was selected.
    pub hits: HashMap<u64, usize>,
    /// Number of discarded attempts.
    pub discarded: usize,
    /// Total attempts.
    pub attempts: usize,
}

impl SamplingReport {
    /// The empirical discard probability.
    pub fn discard_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.discarded as f64 / self.attempts as f64
        }
    }

    /// Number of distinct nodes that were selected at least once.
    pub fn distinct_nodes(&self) -> usize {
        self.hits.len()
    }

    /// Total delivered samples.
    pub fn delivered(&self) -> usize {
        self.attempts - self.discarded
    }

    /// Maximum and minimum hit counts over nodes that were hit at least once.
    pub fn hit_spread(&self) -> (usize, usize) {
        let max = self.hits.values().copied().max().unwrap_or(0);
        let min = self.hits.values().copied().min().unwrap_or(0);
        (min, max)
    }
}

/// The maximum offset `2cλ` used when drawing `Δ`.
pub fn max_offset(lds: &Lds) -> usize {
    (2.0 * lds.params().c * lds.params().lambda() as f64).round() as usize
}

/// The delivery rule of `A_SAMPLING`: given the routed-to point `p` and the
/// drawn offset `delta`, returns the node of `S(p)` with exactly `delta` swarm
/// members clockwise between `p` and itself, or `None` (discard).
pub fn select_sample_target(lds: &Lds, p: Position, delta: usize) -> Option<NodeId> {
    let swarm = lds.swarm(p);
    // Order the swarm members that are right of p by clockwise distance from p.
    let mut right_of_p: Vec<(f64, NodeId)> = swarm
        .iter()
        .filter_map(|&id| {
            let pos = lds.position(id)?;
            if pos.is_right_of(p) || pos == p {
                // Clockwise offset from p.
                Some(((pos.value() - p.value()).rem_euclid(1.0), id))
            } else {
                None
            }
        })
        .collect();
    right_of_p.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    right_of_p.get(delta).map(|(_, id)| *id)
}

/// Performs `attempts` independent sampling attempts on `lds` and reports the
/// per-node hit counts and the discard rate.
pub fn sample_many(lds: &Lds, attempts: usize, seed: u64) -> SamplingReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let max_delta = max_offset(lds);
    let mut report = SamplingReport {
        attempts,
        ..Default::default()
    };
    for _ in 0..attempts {
        let p = Position::new(rng.gen::<f64>());
        let delta = rng.gen_range(0..=max_delta);
        match select_sample_target(lds, p, delta) {
            Some(node) => *report.hits.entry(node.raw()).or_insert(0) += 1,
            None => report.discarded += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsa_overlay::OverlayParams;

    fn lds(n: usize, seed: u64) -> Lds {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Lds::random(
            OverlayParams::with_default_c(n),
            (0..n as u64).map(NodeId),
            &mut rng,
        )
    }

    #[test]
    fn selection_with_delta_zero_returns_first_node_right_of_p() {
        let overlay = Lds::build(
            OverlayParams::new(10, 1.0),
            [
                (NodeId(0), Position::new(0.10)),
                (NodeId(1), Position::new(0.15)),
                (NodeId(2), Position::new(0.20)),
                (NodeId(3), Position::new(0.80)),
            ],
        );
        let got = select_sample_target(&overlay, Position::new(0.12), 0);
        assert_eq!(got, Some(NodeId(1)));
        let got = select_sample_target(&overlay, Position::new(0.12), 1);
        assert_eq!(got, Some(NodeId(2)));
    }

    #[test]
    fn selection_discards_when_delta_too_large() {
        let overlay = lds(64, 3);
        let p = Position::new(0.5);
        let huge = 10 * max_offset(&overlay);
        assert_eq!(select_sample_target(&overlay, p, huge), None);
    }

    #[test]
    fn discard_rate_is_at_most_one_half_ish() {
        // Lemma 13: P[discard] <= 1/2. Empirically it hovers just below 1/2
        // because the offset range 2cλ is twice the expected number of nodes
        // right of p in the swarm.
        let overlay = lds(512, 4);
        let report = sample_many(&overlay, 20_000, 9);
        assert!(
            report.discard_rate() < 0.6,
            "discard rate {} far above the Lemma 13 bound",
            report.discard_rate()
        );
        assert!(report.delivered() > 0);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let n = 256;
        let overlay = lds(n, 5);
        let attempts = 60_000;
        let report = sample_many(&overlay, attempts, 11);
        // Every node should be hit, and no node should dominate.
        assert_eq!(report.distinct_nodes(), n, "every node must be sampleable");
        let expected = report.delivered() as f64 / n as f64;
        let (min, max) = report.hit_spread();
        assert!(
            (max as f64) < expected * 2.0,
            "max hits {max} more than twice the expectation {expected}"
        );
        assert!(
            (min as f64) > expected * 0.4,
            "min hits {min} less than 40% of the expectation {expected}"
        );
    }

    #[test]
    fn report_helpers() {
        let mut r = SamplingReport::default();
        assert_eq!(r.discard_rate(), 0.0);
        r.attempts = 10;
        r.discarded = 4;
        r.hits.insert(1, 3);
        r.hits.insert(2, 3);
        assert!((r.discard_rate() - 0.4).abs() < 1e-12);
        assert_eq!(r.delivered(), 6);
        assert_eq!(r.distinct_nodes(), 2);
        assert_eq!(r.hit_spread(), (3, 3));
    }
}
