//! # tsa-routing — `A_ROUTING` and `A_SAMPLING` for the Linearized DeBruijn Swarm
//!
//! Implements Section 4 of *"Always be Two Steps Ahead of Your Enemy"*:
//!
//! * [`RoutingSim`] executes the redundant swarm-to-swarm routing algorithm
//!   `A_ROUTING` (Listing 1) over a [`RoutableSeries`] of LDS snapshots and
//!   measures delivery rate, dilation (exactly `2λ + 2`, Lemma 9) and
//!   congestion (`O(k log n)`).
//! * [`sample_many`] exercises the uniform peer-sampling algorithm
//!   `A_SAMPLING` (Listing 2, Lemma 13).
//! * [`CongestionTracker`] records per-node per-round load.
//!
//! ```
//! use tsa_routing::{RoutableSeries, RoutingConfig, RoutingSim, uniform_workload};
//! use tsa_overlay::OverlayParams;
//! use tsa_sim::NodeId;
//!
//! let series = RoutableSeries::new(OverlayParams::with_default_c(64), 7, (0..64).map(NodeId));
//! let sim = RoutingSim::new(&series, RoutingConfig::default());
//! let report = sim.route_all(0, &uniform_workload(&series, 1, 3));
//! assert_eq!(report.delivered, 64);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod congestion;
pub mod router;
pub mod sampling;
pub mod series;

pub use config::RoutingConfig;
pub use congestion::CongestionTracker;
pub use router::{
    trajectory_crossings, uniform_workload, MessageOutcome, MessageSpec, RoutingReport, RoutingSim,
};
pub use sampling::{max_offset, sample_many, select_sample_target, SamplingReport};
pub use series::RoutableSeries;
