//! Routable series of overlays (Definition 8).
//!
//! The maintenance protocol of Section 5 rebuilds the overlay every two
//! rounds: overlay epoch `e` places node `v` at `h(v, e)`. A
//! [`RoutableSeries`] materializes those snapshots so the routing layer can be
//! exercised and analysed in isolation from the message-level protocol.

use tsa_overlay::{Lds, OverlayParams};
use tsa_sim::NodeId;

/// A generator of consecutive LDS snapshots `D_e, D_{e+1}, …` over a fixed
/// member set, where positions are drawn from the shared hash `h(v, e)`.
#[derive(Clone, Debug)]
pub struct RoutableSeries {
    params: OverlayParams,
    hash_seed: u64,
    members: Vec<NodeId>,
}

impl RoutableSeries {
    /// Creates a series over `members` using `hash_seed` for the position hash.
    pub fn new<I>(params: OverlayParams, hash_seed: u64, members: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort();
        members.dedup();
        RoutableSeries {
            params,
            hash_seed,
            members,
        }
    }

    /// The overlay parameters.
    pub fn params(&self) -> &OverlayParams {
        &self.params
    }

    /// The member identifiers.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the series has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Materializes the overlay of epoch `epoch`.
    pub fn overlay(&self, epoch: u64) -> Lds {
        Lds::from_hash(
            self.params,
            self.members.iter().copied(),
            self.hash_seed,
            epoch,
        )
    }

    /// Materializes `count` consecutive overlays starting at `first_epoch` —
    /// exactly the `λ + 1` snapshots a message travels through.
    pub fn window(&self, first_epoch: u64, count: usize) -> Vec<Lds> {
        (0..count as u64)
            .map(|i| self.overlay(first_epoch + i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlays_change_every_epoch_but_members_do_not() {
        let params = OverlayParams::with_default_c(64);
        let series = RoutableSeries::new(params, 42, (0..64).map(NodeId));
        let d0 = series.overlay(0);
        let d1 = series.overlay(1);
        assert_eq!(d0.len(), 64);
        assert_eq!(d1.len(), 64);
        // Positions are completely re-drawn between epochs.
        let moved = (0..64u64)
            .filter(|&i| {
                d0.position(NodeId(i))
                    .unwrap()
                    .distance(d1.position(NodeId(i)).unwrap())
                    > 1e-9
            })
            .count();
        assert!(moved > 60, "only {moved} nodes moved between epochs");
    }

    #[test]
    fn same_epoch_is_deterministic() {
        let params = OverlayParams::with_default_c(32);
        let series = RoutableSeries::new(params, 7, (0..32).map(NodeId));
        let a = series.overlay(3);
        let b = series.overlay(3);
        for id in a.members() {
            assert_eq!(
                a.position(id).unwrap().value(),
                b.position(id).unwrap().value()
            );
        }
    }

    #[test]
    fn window_produces_consecutive_epochs() {
        let params = OverlayParams::with_default_c(16);
        let series = RoutableSeries::new(params, 7, (0..16).map(NodeId));
        let w = series.window(5, 3);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 16);
    }

    #[test]
    fn members_are_deduplicated_and_sorted() {
        let params = OverlayParams::with_default_c(8);
        let series = RoutableSeries::new(params, 1, [NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(series.members(), &[NodeId(1), NodeId(3)]);
        assert_eq!(series.len(), 2);
        assert!(!series.is_empty());
    }
}
