//! Property tests for the wire codec: random value trees must round-trip
//! bit-exactly through the frame encoding — whole, split at every byte
//! boundary, and interleaved in one stream — and no mutilation of a valid
//! frame (truncation, corruption) may ever panic the decoder.
//!
//! Equality is asserted on the *re-encoded bytes*, not the decoded trees:
//! the encoding is deterministic, so byte equality is exactly tree equality
//! — while also covering NaN floats, whose trees compare unequal to
//! themselves under IEEE semantics but must still travel bit-exactly.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
use serde::Value;
use tsa_net::{decode_value, encode_frame, encode_value, FrameDecoder, FRAME_HEADER_LEN};

/// Random [`Value`] trees with at most `depth` levels of nesting below the
/// root. Floats are raw bit patterns, so infinities, subnormals and NaNs all
/// occur; strings mix ASCII with multi-byte UTF-8.
struct ValueTree {
    depth: usize,
}

impl Strategy for ValueTree {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_value(rng, self.depth)
    }
}

fn gen_value(rng: &mut TestRng, depth: usize) -> Value {
    // Containers only while below the depth budget.
    match rng.next_u64() % if depth == 0 { 6 } else { 8 } {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 0),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::UInt(rng.next_u64()),
        4 => Value::Float(f64::from_bits(rng.next_u64())),
        5 => Value::Str(gen_string(rng)),
        6 => Value::Array(
            (0..rng.next_u64() % 4)
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.next_u64() % 4)
                .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    const ALPHABET: [char; 8] = ['a', 'z', '0', ' ', 'λ', 'é', '✓', '🦀'];
    (0..rng.next_u64() % 8)
        .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
        .collect()
}

/// The canonical encoding of `value`, no frame header.
fn encoding(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(value, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_tree_round_trips_bit_exactly(value in ValueTree { depth: 3 }) {
        let bytes = encoding(&value);
        let decoded = decode_value(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(encoding(&decoded), bytes);
    }

    #[test]
    fn frames_survive_any_stream_split(
        values in proptest::collection::vec(ValueTree { depth: 2 }, 1..5),
        chunk in 1usize..17,
    ) {
        // All frames in one contiguous stream, delivered `chunk` bytes at a
        // time — every frame must come back out, in order, bit-exact.
        let mut stream = Vec::new();
        for value in &values {
            encode_frame(value, &mut stream);
        }
        let mut decoder = FrameDecoder::new();
        let mut recovered = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(frame) = decoder.next_frame().expect("valid frames decode") {
                recovered.push(frame);
            }
        }
        prop_assert_eq!(recovered.len(), values.len());
        for (out, sent) in recovered.iter().zip(&values) {
            prop_assert_eq!(encoding(out), encoding(sent));
        }
        prop_assert_eq!(decoder.pending_len(), 0);
    }

    #[test]
    fn no_strict_prefix_of_an_encoding_decodes(value in ValueTree { depth: 2 }) {
        // The tag-length grammar consumes a determined number of bytes per
        // production, so cutting an encoding anywhere must yield an error —
        // never a silently shortened tree.
        let bytes = encoding(&value);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_value(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
        }
    }

    #[test]
    fn corrupted_payloads_never_panic(
        value in ValueTree { depth: 2 },
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        // A single flipped bit may still decode (e.g. a scalar's raw bytes),
        // but it must always return *something* — the decoder has no panic
        // or overflow path on arbitrary input.
        let mut bytes = encoding(&value);
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = decode_value(&bytes);

        // The same bytes as a framed stream: header included in the flips.
        let mut framed = Vec::new();
        encode_frame(&value, &mut framed);
        let at = flip % framed.len();
        framed[at] ^= 1 << bit;
        let mut decoder = FrameDecoder::with_max_frame(framed.len());
        decoder.push(&framed);
        while let Ok(Some(_)) = decoder.next_frame() {}
    }
}

#[test]
fn oversized_frames_are_rejected_from_the_header_alone() {
    // A lying length prefix is refused before any payload is buffered.
    let mut decoder = FrameDecoder::with_max_frame(8);
    let mut bytes = (9u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0; 2]);
    decoder.push(&bytes);
    assert!(decoder.next_frame().is_err());
    assert!(bytes.len() < 8 + FRAME_HEADER_LEN);
}
