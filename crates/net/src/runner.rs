//! The loopback-TCP transport runtime.
//!
//! # Runtime model
//!
//! [`NetRunner`] is the third scheduler policy over the workspace's
//! transport-agnostic [`ProtocolStep`] node logic — after the lockstep round
//! engine and the virtual-time event engine — and the first one where
//! messages travel as real bytes. Every node owns a loopback TCP listener;
//! activations still happen on the synchronous cadence of the paper's model,
//! but the cadence is now *wall-clock*: each round lasts
//! `tick × ticks_per_round` of real time (the event engine's 1000-ticks
//! clock, reinterpreted at a configurable tick duration), and the network
//! between the boundaries is the operating system.
//!
//! Two threads run the show: the caller's thread is the *coordinator*
//! (churn, activations, sends), and one *poller* thread owns every listener
//! and accepted connection, decoding frames into a shared hub of inboxes as
//! they arrive. There is no tokio and no thread-per-node — `std::net`
//! nonblocking sockets and a `64 KiB` read buffer are enough for an
//! in-process overlay.
//!
//! # Determinism boundary
//!
//! Wall-clock time and OS scheduling decide *when* a frame lands, and
//! therefore which round boundary reads it — that is the only
//! nondeterminism. Everything else is pinned: churn goes through the same
//! [`tsa_sim::apply_churn_plan`] arbiter against the same lateness-filtered
//! knowledge, per-activation RNG streams depend only on
//! `(seed, node, round)`, and inboxes are re-sorted into global send order
//! before every activation. The runner records each message's fate in a
//! [`MessageTrace`]; replaying that trace in an
//! [`EventSimulator`](tsa_event::EventSimulator) re-executes the run inside
//! the deterministic model — the differential tests in `tsa-core` prove the
//! replay reproduces the transport run's protocol state exactly.

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use tsa_event::{
    FaultAdapter, FaultCoins, FaultDecision, FaultPlan, FaultStats, MessageFate, MessageTrace,
    NetStats, TICKS_PER_ROUND,
};
use tsa_obs::ObsHandle;
use tsa_sim::knowledge::{KnowledgeView, MemberInfo, RoundRecord};
use tsa_sim::{
    apply_churn_plan, record_round_obs, run_activation, Adversary, ChurnBudget, ChurnOutcome,
    Envelope, MetricsHistory, MetricsMode, MetricsSummary, NodeFactory, NodeId, PlanScratch,
    ProtocolStep, Round, RoundMetrics, RoundMetricsBuilder, SimConfig, StreamingMetrics,
};

use crate::codec::{decode_wire_value, encode_wire_frame, FrameDecoder, DEFAULT_MAX_FRAME};

/// Configuration of a loopback transport run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The shared simulation knobs: seed, hash seed, lateness, churn rules,
    /// history window. Seeds are used exactly as in the other two engines,
    /// so the same protocol run is comparable across all three.
    pub sim: SimConfig,
    /// Virtual ticks per round (defaults to [`TICKS_PER_ROUND`]); only the
    /// product `tick × ticks_per_round` — the round duration — is
    /// observable.
    pub ticks_per_round: u64,
    /// Wall-clock duration of one virtual tick. The default 20 µs makes a
    /// 1000-tick round last 20 ms: comfortably longer than a loopback
    /// round-trip, short enough that tests stay fast.
    pub tick: Duration,
    /// Upper bound on a single frame's payload, enforced by the decoder.
    pub max_frame: usize,
}

impl NetConfig {
    /// A transport configuration over `sim` with the default 20 ms round.
    pub fn new(sim: SimConfig) -> Self {
        NetConfig {
            sim,
            ticks_per_round: TICKS_PER_ROUND,
            tick: Duration::from_micros(20),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Sets the wall-clock duration of one whole round (the tick becomes
    /// `duration / ticks_per_round`).
    pub fn with_round_duration(mut self, duration: Duration) -> Self {
        self.tick = duration / (self.ticks_per_round as u32);
        self
    }

    /// The wall-clock duration of one round.
    pub fn round_duration(&self) -> Duration {
        self.tick * (self.ticks_per_round as u32)
    }
}

/// Whole-run counters of actual wire traffic (frames and bytes, headers
/// included), on both sides of the loopback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireStats {
    /// Frames successfully written to a socket.
    pub frames_sent: u64,
    /// Bytes written, length prefixes included.
    pub bytes_sent: u64,
    /// Frames decoded by the poller.
    pub frames_received: u64,
    /// Bytes read by the poller.
    pub bytes_received: u64,
}

/// One node's decoded-but-unread messages: `(send seq, envelope)` pairs in
/// arrival order, re-sorted into global send order at the round boundary.
type InboxBatch<M> = Vec<(u64, Envelope<M>)>;

/// Messages the poller has decoded but no activation has read yet.
struct Hub<M> {
    /// Per-node pending messages, keyed by the *listener owner* (the socket
    /// a frame arrived on decides its receiver).
    inboxes: BTreeMap<NodeId, InboxBatch<M>>,
    /// Sequence numbers of frames that arrived for a node with no inbox
    /// (departed between the sender's records and delivery).
    dead_letters: Vec<u64>,
    frames_received: u64,
    bytes_received: u64,
}

impl<M> Default for Hub<M> {
    fn default() -> Self {
        Hub {
            inboxes: BTreeMap::new(),
            dead_letters: Vec::new(),
            frames_received: 0,
            bytes_received: 0,
        }
    }
}

/// Coordinator → poller control messages.
enum Ctl {
    Register(NodeId, TcpListener),
    Unregister(NodeId),
    Shutdown,
}

/// One accepted connection on the poller: the listener owner it delivers
/// to, the nonblocking stream, and its incremental frame decoder.
struct Conn {
    owner: NodeId,
    stream: TcpStream,
    decoder: FrameDecoder,
}

/// The poller loop: accept on every registered listener, read every
/// connection, decode frames into the hub. Runs until shutdown.
fn poll_loop<M: serde::Deserialize>(
    ctl: mpsc::Receiver<Ctl>,
    hub: Arc<Mutex<Hub<M>>>,
    max_frame: usize,
) {
    let mut listeners: Vec<(NodeId, TcpListener)> = Vec::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        loop {
            match ctl.try_recv() {
                Ok(Ctl::Register(id, listener)) => listeners.push((id, listener)),
                Ok(Ctl::Unregister(id)) => {
                    listeners.retain(|(owner, _)| *owner != id);
                    conns.retain(|c| c.owner != id);
                }
                Ok(Ctl::Shutdown) | Err(mpsc::TryRecvError::Disconnected) => return,
                Err(mpsc::TryRecvError::Empty) => break,
            }
        }
        let mut active = false;
        for (owner, listener) in listeners.iter() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.push(Conn {
                            owner: *owner,
                            stream,
                            decoder: FrameDecoder::with_max_frame(max_frame),
                        });
                        active = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let mut drop_conn = false;
            loop {
                match conns[i].stream.read(&mut buf) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(n) => {
                        active = true;
                        let conn = &mut conns[i];
                        conn.decoder.push(&buf[..n]);
                        let mut hub = hub.lock().expect("hub lock poisoned");
                        hub.bytes_received += n as u64;
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some(value)) => match decode_wire_value::<M>(&value) {
                                    Ok((seq, env)) => {
                                        hub.frames_received += 1;
                                        match hub.inboxes.get_mut(&conn.owner) {
                                            Some(inbox) => inbox.push((seq, env)),
                                            None => hub.dead_letters.push(seq),
                                        }
                                    }
                                    // A frame that decodes but is not a wire
                                    // envelope: the peer is broken, cut it.
                                    Err(_) => {
                                        drop_conn = true;
                                        break;
                                    }
                                },
                                Ok(None) => break,
                                // Oversized or malformed stream: the offset
                                // is meaningless from here on, cut it.
                                Err(_) => {
                                    drop_conn = true;
                                    break;
                                }
                            }
                        }
                        if drop_conn {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }
            if drop_conn {
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if !active {
            thread::sleep(Duration::from_micros(200));
        }
    }
}

/// A node on the transport: protocol state plus its reusable outbox buffer.
struct NetSlot<P: ProtocolStep> {
    id: NodeId,
    joined_at: Round,
    process: P,
    out: Vec<(NodeId, P::Msg)>,
    sponsored_start: usize,
    sponsored_len: usize,
}

/// The loopback transport runtime: real sockets under the unmodified
/// protocol logic, with every message's fate recorded for twin replay.
pub struct NetRunner<P, A>
where
    P: ProtocolStep,
    P::Msg: serde::Serialize + serde::Deserialize,
    A: Adversary,
{
    config: NetConfig,
    adversary: A,
    factory: NodeFactory<P>,
    /// Node slots, sorted by identifier.
    slots: Vec<NetSlot<P>>,
    members: BTreeMap<NodeId, MemberInfo>,
    /// Listener addresses of live nodes, for the sender side.
    addrs: BTreeMap<NodeId, SocketAddr>,
    /// Cached outgoing streams, one per directed `(sender, receiver)` link.
    conns: BTreeMap<(NodeId, NodeId), TcpStream>,
    hub: Arc<Mutex<Hub<P::Msg>>>,
    ctl: mpsc::Sender<Ctl>,
    poller: Option<thread::JoinHandle<()>>,
    /// Global send sequence number, assigned exactly as in the twin engines:
    /// in activation id order within each round.
    seq: u64,
    /// Recorded fates; a message is `Lost` until its delivery is observed.
    fates: MessageTrace,
    /// Scratch: the current round's inbox, in global send order.
    inbox_scratch: Vec<Envelope<P::Msg>>,
    sponsored_pairs: Vec<(NodeId, NodeId)>,
    sponsored_ids: Vec<NodeId>,
    dedup_scratch: Vec<NodeId>,
    plan_scratch: PlanScratch,
    encode_scratch: Vec<u8>,
    records: Vec<RoundRecord>,
    metrics: MetricsHistory,
    /// When set, finished rounds fold into O(1) accumulators instead of
    /// growing the history ([`MetricsMode::Streaming`]).
    streaming: Option<StreamingMetrics>,
    /// Observability sink; off by default (one branch per probe). Note the
    /// transport caveat: which boundary reads a frame is wall-clock, so the
    /// runner's "deterministic" counters are only run-to-run stable when
    /// every frame makes its next boundary (generous round durations — the
    /// same condition the twin-replay CI smoke relies on).
    obs: ObsHandle,
    budget: ChurnBudget,
    round: Round,
    next_id: u64,
    last_outcome: ChurnOutcome,
    stats: NetStats,
    wire_sent_frames: u64,
    wire_sent_bytes: u64,
    /// When `Some`, every outgoing frame is matched against the fault plan
    /// before it is written (the same pure `(seed, seq)` decisions the
    /// event engine takes at its delivery boundary).
    faults: Option<(FaultPlan, FaultAdapter<P::Msg>)>,
    /// The cached per-rule fault-coin blocks: one ChaCha8 key schedule per
    /// 64 consecutive sequence numbers (identical values to the event
    /// engine's cache — the coins are pure functions of `(seed, seq)`).
    fault_coins: FaultCoins,
    /// Whole-run counters of injected faults (separate from [`NetStats`]).
    fault_stats: FaultStats,
    /// Fault-delayed frames: `(release round, seq, envelope)`, written to
    /// the wire at the boundary whose round reaches `release`.
    held: Vec<(Round, u64, Envelope<P::Msg>)>,
}

impl<P, A> NetRunner<P, A>
where
    P: ProtocolStep,
    P::Msg: serde::Serialize + serde::Deserialize,
    A: Adversary,
{
    /// Creates an empty runner and starts its poller thread. Populate the
    /// initial node set with [`seed_nodes`](NetRunner::seed_nodes).
    pub fn new(config: NetConfig, adversary: A, factory: NodeFactory<P>) -> Self {
        assert!(config.ticks_per_round > 0, "ticks_per_round must be > 0");
        let fault_coins = FaultCoins::new(config.sim.seed);
        let hub: Arc<Mutex<Hub<P::Msg>>> = Arc::new(Mutex::new(Hub::default()));
        let (ctl, ctl_rx) = mpsc::channel();
        let poller_hub = Arc::clone(&hub);
        let max_frame = config.max_frame;
        let poller = thread::Builder::new()
            .name("tsa-net-poller".into())
            .spawn(move || poll_loop::<P::Msg>(ctl_rx, poller_hub, max_frame))
            .expect("spawn poller thread");
        NetRunner {
            config,
            adversary,
            factory,
            slots: Vec::new(),
            members: BTreeMap::new(),
            addrs: BTreeMap::new(),
            conns: BTreeMap::new(),
            hub,
            ctl,
            poller: Some(poller),
            seq: 0,
            fates: MessageTrace::new(),
            inbox_scratch: Vec::new(),
            sponsored_pairs: Vec::new(),
            sponsored_ids: Vec::new(),
            dedup_scratch: Vec::new(),
            plan_scratch: PlanScratch::default(),
            encode_scratch: Vec::new(),
            records: Vec::new(),
            metrics: MetricsHistory::new(),
            streaming: None,
            obs: ObsHandle::off(),
            budget: ChurnBudget::new(),
            round: 0,
            next_id: 0,
            last_outcome: ChurnOutcome::default(),
            stats: NetStats::default(),
            wire_sent_frames: 0,
            wire_sent_bytes: 0,
            faults: None,
            fault_coins,
            fault_stats: FaultStats::default(),
            held: Vec::new(),
        }
    }

    /// Creates `count` initial nodes, each with a bound loopback listener.
    /// Returns their identifiers.
    pub fn seed_nodes(&mut self, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(self.next_id);
            self.next_id += 1;
            self.members.insert(
                id,
                MemberInfo {
                    joined_at: self.round,
                },
            );
            self.spawn_slot(id, self.round);
            ids.push(id);
        }
        ids
    }

    /// Materializes a member's slot, listener and hub inbox.
    fn spawn_slot(&mut self, id: NodeId, round: Round) {
        let process = (self.factory)(id, round);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener address");
        self.addrs.insert(id, addr);
        self.hub
            .lock()
            .expect("hub lock poisoned")
            .inboxes
            .insert(id, Vec::new());
        self.ctl
            .send(Ctl::Register(id, listener))
            .expect("poller alive");
        self.slots.push(NetSlot {
            id,
            joined_at: round,
            process,
            out: Vec::new(),
            sponsored_start: 0,
            sponsored_len: 0,
        });
    }

    /// Tears down a departed member's listener, hub inbox and cached
    /// streams; frames it never read become receiver-departed drops at
    /// round `t` (exactly when the twin engines would drop them).
    fn retire_slot(&mut self, id: NodeId, t: Round, dropped: &mut usize) {
        let idx = self
            .slots
            .binary_search_by_key(&id, |s| s.id)
            .expect("departed node has a slot");
        self.slots.remove(idx);
        self.addrs.remove(&id);
        self.conns.retain(|(from, to), _| *from != id && *to != id);
        self.ctl.send(Ctl::Unregister(id)).expect("poller alive");
        let pending = self
            .hub
            .lock()
            .expect("hub lock poisoned")
            .inboxes
            .remove(&id)
            .unwrap_or_default();
        for (seq, _env) in pending {
            self.fates
                .record(seq, MessageFate::Delivered { at_round: t });
            self.stats.dropped_departed += 1;
            *dropped += 1;
        }
    }

    /// The current round (the next round boundary to be executed).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Identifiers of all current members, in ascending order.
    pub fn member_ids(&self) -> Vec<NodeId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// The round a current member joined, if it exists.
    pub fn joined_at(&self, id: NodeId) -> Option<Round> {
        self.members.get(&id).map(|m| m.joined_at)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.slots[i].process)
    }

    /// Iterates over `(id, protocol state)` pairs of all current members.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.slots.iter().map(|s| (s.id, &s.process))
    }

    /// Metrics collected so far (one row per round). Empty under
    /// [`MetricsMode::Streaming`] — use
    /// [`metrics_summary`](Self::metrics_summary) /
    /// [`last_metrics`](Self::last_metrics) for mode-independent access.
    pub fn metrics(&self) -> &MetricsHistory {
        &self.metrics
    }

    /// Attaches an observability sink (or detaches it with
    /// [`ObsHandle::off`]); recording starts with the next round.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Selects how finished rounds are retained. Call before running.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.streaming = match mode {
            MetricsMode::Full => None,
            MetricsMode::Streaming => Some(StreamingMetrics::new()),
        };
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        match &self.streaming {
            Some(s) => s.summary(),
            None => self.metrics.summary(),
        }
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        match &self.streaming {
            Some(s) => s.last(),
            None => self.metrics.last(),
        }
    }

    /// The streaming accumulators, when running under
    /// [`MetricsMode::Streaming`].
    pub fn streaming_metrics(&self) -> Option<&StreamingMetrics> {
        self.streaming.as_ref()
    }

    /// Archived round records (communication graphs and digests).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The churn outcome of the most recently executed round.
    pub fn last_churn_outcome(&self) -> &ChurnOutcome {
        &self.last_outcome
    }

    /// Network-effect counters, comparable with the event engine's: `sent`
    /// and `dropped_departed` mean the same thing; `lost` counts messages
    /// that never made it onto the wire (no route, connect or write
    /// failure); delay ticks are delivery-boundary quantized.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Actual wire traffic counters.
    pub fn wire_stats(&self) -> WireStats {
        let hub = self.hub.lock().expect("hub lock poisoned");
        WireStats {
            frames_sent: self.wire_sent_frames,
            bytes_sent: self.wire_sent_bytes,
            frames_received: hub.frames_received,
            bytes_received: hub.bytes_received,
        }
    }

    /// The fate trace recorded so far: one entry per sent message, in send
    /// order. Messages still in flight (written but never read by an
    /// activation) are `Lost`, which is exactly how a replay must treat
    /// them — they influenced nobody.
    pub fn trace(&self) -> MessageTrace {
        self.fates.clone()
    }

    /// Installs a fault-injection plan and the protocol's message adapter.
    /// Call before the first [`step`](NetRunner::step). Decisions are pure
    /// functions of `(seed, seq)` — identical to the event engine's for the
    /// same plan — and are taken at the frame boundary: dropped frames
    /// never reach the wire, delayed frames are held back whole rounds,
    /// duplicated frames consume the next sequence number, mutated frames
    /// are corrupted before encoding.
    pub fn set_faults(&mut self, plan: FaultPlan, adapter: FaultAdapter<P::Msg>) {
        self.faults = Some((plan, adapter));
    }

    /// Whole-run counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Executes `rounds` rounds, each lasting its configured wall-clock
    /// duration.
    pub fn run(&mut self, rounds: u64) {
        if self.streaming.is_none() {
            self.metrics.reserve(rounds as usize);
        }
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes one round: churn at the boundary, read everything the
    /// poller delivered, activate every node, write this round's sends to
    /// the wire, then sleep out the round's wall-clock budget so frames can
    /// arrive for the next boundary.
    pub fn step(&mut self) {
        let deadline = Instant::now() + self.config.round_duration();
        let t = self.round;
        let mut mb = RoundMetricsBuilder::new(t);
        let obs_on = self.obs.is_on();
        let wire_frames_before = self.wire_sent_frames;
        let wire_bytes_before = self.wire_sent_bytes;
        let fault_stats_before = self.fault_stats;
        let mut dropped = 0usize;

        // Phase 1: adversarial churn through the shared arbiter, identical
        // to the twin engines (suppressed during bootstrap).
        let span = self.obs.span_start();
        let mut outcome = std::mem::take(&mut self.last_outcome);
        outcome.departed.clear();
        outcome.joined.clear();
        outcome.rejected_departures.clear();
        outcome.rejected_joins.clear();
        if t >= self.config.sim.churn_rules.bootstrap_rounds {
            let remaining = self.budget.remaining(t, &self.config.sim.churn_rules);
            let plan = {
                let view = KnowledgeView::new(
                    t,
                    self.config.sim.lateness,
                    &self.records,
                    &self.members,
                    remaining,
                    self.config.sim.churn_rules.min_bootstrap_age,
                );
                self.adversary.plan(t, &view)
            };
            let rules = self.config.sim.churn_rules;
            apply_churn_plan(
                t,
                plan,
                &rules,
                &mut self.budget,
                &mut self.members,
                &mut self.next_id,
                &mut self.plan_scratch,
                &mut outcome,
            );
            let departed: Vec<NodeId> = outcome.departed.clone();
            for id in departed {
                self.retire_slot(id, t, &mut dropped);
            }
            for &(id, _bootstrap) in outcome.joined.iter() {
                self.spawn_slot(id, t);
            }
        }
        mb.record_churn(outcome.departed.len(), outcome.joined.len());
        self.obs.span_end("net.churn", span);

        // Phase 2: snapshot the hub. Everything the poller decoded before
        // this instant is this boundary's delivery batch; the batch is
        // re-sorted into global send order, exactly like the event engine's
        // deliverable batch, so residual arrival jitter has no meaning.
        let span = self.obs.span_start();
        let mut batches: Vec<(NodeId, InboxBatch<P::Msg>)> = {
            let mut hub = self.hub.lock().expect("hub lock poisoned");
            for seq in hub.dead_letters.drain(..) {
                self.fates
                    .record(seq, MessageFate::Delivered { at_round: t });
                self.stats.dropped_departed += 1;
                dropped += 1;
            }
            self.slots
                .iter()
                .map(|slot| {
                    let batch = hub
                        .inboxes
                        .get_mut(&slot.id)
                        .map(std::mem::take)
                        .unwrap_or_default();
                    (slot.id, batch)
                })
                .collect()
        };
        for (_, batch) in batches.iter_mut() {
            batch.sort_unstable_by_key(|&(seq, _)| seq);
            for &(seq, ref env) in batch.iter() {
                self.fates
                    .record(seq, MessageFate::Delivered { at_round: t });
                let delay = (t - env.sent_at) * self.config.ticks_per_round;
                self.stats.max_delay_ticks = self.stats.max_delay_ticks.max(delay);
                self.stats.total_delay_ticks += delay;
            }
        }
        self.obs.span_end("net.poll", span);

        // Sponsored joiners, grouped contiguously by bootstrap node exactly
        // as in the twin engines.
        self.sponsored_pairs.clear();
        self.sponsored_pairs.extend(
            outcome
                .joined
                .iter()
                .map(|&(joiner, bootstrap)| (bootstrap, joiner)),
        );
        self.sponsored_pairs
            .sort_by_key(|&(bootstrap, _)| bootstrap);
        self.sponsored_ids.clear();
        self.sponsored_ids
            .extend(self.sponsored_pairs.iter().map(|&(_, joiner)| joiner));
        for slot in self.slots.iter_mut() {
            slot.sponsored_start = 0;
            slot.sponsored_len = 0;
        }
        {
            let mut s = 0usize;
            let mut k = 0usize;
            while k < self.sponsored_pairs.len() {
                let bootstrap = self.sponsored_pairs[k].0;
                let run_start = k;
                while k < self.sponsored_pairs.len() && self.sponsored_pairs[k].0 == bootstrap {
                    k += 1;
                }
                while s < self.slots.len() && self.slots[s].id < bootstrap {
                    s += 1;
                }
                if s < self.slots.len() && self.slots[s].id == bootstrap {
                    self.slots[s].sponsored_start = run_start;
                    self.slots[s].sponsored_len = k - run_start;
                }
            }
        }

        mb.record_node_count(self.slots.len());

        // Phase 3: activate every node in id order and write its sends to
        // the wire. Sequence numbers are assigned here, in exactly the
        // interleaving the twin engines use (per-slot, immediately after
        // its activation), so `seq` means the same message in all three
        // runtimes.
        let mut rec = RoundRecord::default();
        rec.graph.round = t;
        let seed = self.config.sim.seed;
        let hash_seed = self.config.sim.hash_seed;
        let record_digests = self.config.sim.record_digests;
        let mut lost = 0usize;
        // Fault-delayed frames whose hold has expired go onto the wire at
        // this boundary, to be read one round later — `delay_rounds` past
        // their original delivery boundary. Frames whose hold outlives the
        // run stay recorded as `Lost`, which is how the replaying twin must
        // treat them (they influenced nobody).
        if !self.held.is_empty() {
            let mut held = std::mem::take(&mut self.held);
            let mut still = Vec::new();
            for (release, seq, env) in held.drain(..) {
                if release > t {
                    still.push((release, seq, env));
                } else if !self.write_frame(seq, &env) {
                    lost += 1;
                    self.stats.lost += 1;
                }
            }
            self.held = still;
        }
        let span = self.obs.span_start();
        // The snapshot was taken after churn over the current slots, so it
        // holds exactly one batch per slot, in id order (joiners included,
        // necessarily empty: their listeners bound this boundary).
        let mut batches = batches.into_iter();
        for si in 0..self.slots.len() {
            let (batch_id, batch) = batches.next().expect("one batch per slot");
            debug_assert_eq!(batch_id, self.slots[si].id, "snapshot follows slot order");
            self.inbox_scratch.clear();
            self.inbox_scratch
                .extend(batch.into_iter().map(|(_, env)| env));
            let slot = &mut self.slots[si];
            mb.record_received(slot.id, self.inbox_scratch.len());
            if obs_on {
                self.obs
                    .observe("proto.inbox_len", self.inbox_scratch.len() as u64);
            }
            let sponsored = &self.sponsored_ids
                [slot.sponsored_start..slot.sponsored_start + slot.sponsored_len];
            let (out, digest) = run_activation(
                &mut slot.process,
                slot.id,
                t,
                slot.joined_at,
                sponsored,
                seed,
                hash_seed,
                &self.inbox_scratch,
                std::mem::take(&mut slot.out),
                record_digests,
            );
            slot.out = out;
            self.dedup_scratch.clear();
            self.dedup_scratch
                .extend(slot.out.iter().map(|(to, _)| *to));
            self.dedup_scratch.sort_unstable();
            self.dedup_scratch.dedup();
            mb.record_sent(slot.id, slot.out.len(), self.dedup_scratch.len());
            for &to in self.dedup_scratch.iter() {
                rec.graph.edges.push((slot.id, to));
            }
            if record_digests {
                rec.digests.push((slot.id, digest));
            }
            let from = slot.id;
            let tpr = self.config.ticks_per_round;
            let mut out = std::mem::take(&mut self.slots[si].out);
            for (to, mut payload) in out.drain(..) {
                // Fault-plan decision on the sequence number this frame is
                // about to take — the same pure function of (seed, seq) the
                // event engine evaluates for the identical message.
                let (fault_drop, delay_rounds, duplicate) = match self.faults.as_ref() {
                    None => (false, 0u64, false),
                    Some((plan, adapter)) => {
                        match plan.decide_with(
                            &mut self.fault_coins,
                            self.seq,
                            t,
                            from,
                            to,
                            (adapter.kind_of)(&payload),
                        ) {
                            FaultDecision::Pass => (false, 0, false),
                            FaultDecision::Drop => {
                                self.fault_stats.dropped += 1;
                                (true, 0, false)
                            }
                            FaultDecision::Delay(ticks) => {
                                self.fault_stats.delayed += 1;
                                // The transport's clock is the round cadence:
                                // the hold-back is the tick delay rounded up to
                                // whole rounds, at least one.
                                (false, ticks.div_ceil(tpr).max(1), false)
                            }
                            FaultDecision::Duplicate => {
                                self.fault_stats.duplicated += 1;
                                (false, 0, true)
                            }
                            FaultDecision::Mutate => {
                                if (adapter.mutate)(
                                    &mut payload,
                                    FaultPlan::mutation_entropy(seed, self.seq),
                                ) {
                                    self.fault_stats.mutated += 1;
                                }
                                (false, 0, false)
                            }
                        }
                    }
                };
                // The duplicate copy consumes the next sequence number and
                // takes its own wire fate, with no fault decision of its
                // own.
                let dup = duplicate.then(|| payload.clone());
                for payload in std::iter::once(payload).chain(dup) {
                    let msg_seq = self.seq;
                    self.seq += 1;
                    self.stats.sent += 1;
                    // Lost until proven delivered: overwritten when a later
                    // boundary (or none) reads the frame.
                    self.fates.record(msg_seq, MessageFate::Lost);
                    let env = Envelope::new(from, to, t, payload);
                    if fault_drop {
                        // Never reaches the wire; counted exactly like the
                        // event engine counts a fault drop.
                        lost += 1;
                        self.stats.lost += 1;
                    } else if delay_rounds > 0 {
                        self.held
                            .push((t.saturating_add(delay_rounds), msg_seq, env));
                    } else if !self.write_frame(msg_seq, &env) {
                        lost += 1;
                        self.stats.lost += 1;
                    }
                }
            }
            self.slots[si].out = out;
            rec.graph.members.push(from);
        }
        drop(batches);
        self.obs.span_end("net.encode", span);
        mb.record_dropped(dropped + lost);
        rec.graph.edges.sort_unstable();
        rec.graph.edges.dedup();

        self.records.push(rec);
        if let Some(window) = self.config.sim.history_window {
            while self.records.len() > window {
                self.records.remove(0);
            }
        }

        let row = mb.finish();
        if obs_on {
            record_round_obs(&self.obs, &row);
            // Wire-level counters: deterministic functions of the protocol
            // traffic (frame counts and encoded bytes), not of scheduling.
            self.obs.add(
                "net.wire_frames",
                self.wire_sent_frames - wire_frames_before,
            );
            self.obs
                .add("net.wire_bytes", self.wire_sent_bytes - wire_bytes_before);
            // Fault counters only exist when a plan is installed, so
            // fault-free runs keep their exact historical obs output.
            if self.faults.is_some() {
                let f = &self.fault_stats;
                self.obs.add(
                    "proto.fault_dropped",
                    f.dropped - fault_stats_before.dropped,
                );
                self.obs.add(
                    "proto.fault_delayed",
                    f.delayed - fault_stats_before.delayed,
                );
                self.obs.add(
                    "proto.fault_duplicated",
                    f.duplicated - fault_stats_before.duplicated,
                );
                self.obs.add(
                    "proto.fault_mutated",
                    f.mutated - fault_stats_before.mutated,
                );
            }
        }
        match &mut self.streaming {
            Some(s) => s.push(row),
            None => self.metrics.push(row),
        }
        self.last_outcome = outcome;
        self.round += 1;

        // Phase 4: sleep out the round's wall-clock budget — this is the
        // window in which the poller turns this round's writes into the
        // next boundary's deliveries.
        let span = self.obs.span_start();
        let now = Instant::now();
        if now < deadline {
            thread::sleep(deadline - now);
        }
        self.obs.span_end("net.barrier", span);
    }

    /// Writes one framed message to its receiver's socket, connecting (and
    /// caching the stream) on first use. Returns false if the message never
    /// made it onto the wire.
    fn write_frame(&mut self, seq: u64, env: &Envelope<P::Msg>) -> bool {
        let Some(&addr) = self.addrs.get(&env.to) else {
            // No such member (departed, or an id that never existed):
            // nothing to connect to.
            return false;
        };
        let key = (env.from, env.to);
        if let std::collections::btree_map::Entry::Vacant(entry) = self.conns.entry(key) {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    entry.insert(stream);
                }
                Err(_) => return false,
            }
        }
        self.encode_scratch.clear();
        let len = encode_wire_frame(seq, env, &mut self.encode_scratch);
        let stream = self.conns.get_mut(&key).expect("stream just cached");
        match stream.write_all(&self.encode_scratch) {
            Ok(()) => {
                self.wire_sent_frames += 1;
                self.wire_sent_bytes += len as u64;
                true
            }
            Err(_) => {
                self.conns.remove(&key);
                false
            }
        }
    }
}

impl<P, A> Drop for NetRunner<P, A>
where
    P: ProtocolStep,
    P::Msg: serde::Serialize + serde::Deserialize,
    A: Adversary,
{
    fn drop(&mut self) {
        let _ = self.ctl.send(Ctl::Shutdown);
        if let Some(handle) = self.poller.take() {
            let _ = handle.join();
        }
    }
}
