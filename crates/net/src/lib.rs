//! # tsa-net — the overlay on a real transport
//!
//! The round engine and the event engine prove the two-steps-ahead
//! maintenance protocol correct under controlled schedulers; this crate runs
//! the *same unmodified node logic* ([`ProtocolStep`](tsa_sim::ProtocolStep))
//! over real in-process sockets, and bounds the wall-clock nondeterminism it
//! introduces with a deterministic twin:
//!
//! * [`codec`] — a length-prefixed binary wire format for the workspace's
//!   serde value trees: deterministic encoding, incremental partial-read
//!   decoding, and hostile-input rejection (size bounds, depth caps, no
//!   panics);
//! * [`NetRunner`] — the loopback-TCP runtime: one listener per node, a
//!   single poller thread, wall-clock rounds derived from the event engine's
//!   1000-ticks clock, and churn through the shared
//!   [`tsa_sim::apply_churn_plan`] arbiter;
//! * every message's fate is recorded in a
//!   [`MessageTrace`](tsa_event::MessageTrace); replaying the trace in the
//!   [`EventSimulator`](tsa_event::EventSimulator) reproduces the transport
//!   run inside the deterministic model, which is what the differential twin
//!   tests in `tsa-core` verify.
//!
//! ```
//! use std::time::Duration;
//! use tsa_net::{NetConfig, NetRunner};
//! use tsa_sim::prelude::*;
//!
//! // A trivial protocol: every node pings node 0 each activation.
//! struct Pinger;
//! impl Process for Pinger {
//!     type Msg = u64;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[Envelope<u64>]) {
//!         ctx.send(NodeId(0), ctx.round());
//!     }
//! }
//!
//! let config = NetConfig::new(SimConfig::default().with_seed(7))
//!     .with_round_duration(Duration::from_millis(5));
//! let mut net = NetRunner::new(config, NullAdversary, Box::new(|_, _| Pinger));
//! net.seed_nodes(4);
//! net.run(3);
//! assert_eq!(net.node_count(), 4);
//! assert!(net.wire_stats().frames_sent > 0);
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod runner;

pub use codec::{
    decode_value, decode_wire_value, encode_frame, encode_value, encode_wire_frame, CodecError,
    FrameDecoder, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN,
};
pub use runner::{NetConfig, NetRunner, WireStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tsa_sim::prelude::*;
    use tsa_sim::SimConfig;

    /// The same flood protocol the event engine tests use: talk to the two
    /// numerically adjacent identifiers, tag payloads with (sender, round).
    #[derive(Default)]
    struct Ping {
        heard: Vec<u64>,
    }

    impl Process for Ping {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.heard.push(env.payload);
            }
            let me = ctx.id().raw();
            let tag = (me << 32) | ctx.round();
            ctx.send(NodeId(me.wrapping_add(1)), tag);
            if me > 0 {
                ctx.send(NodeId(me - 1), tag);
            }
        }
        fn state_digest(&self) -> u64 {
            self.heard.len() as u64
        }
    }

    fn runner(seed: u64) -> NetRunner<Ping, NullAdversary> {
        let config = NetConfig::new(SimConfig::default().with_seed(seed))
            .with_round_duration(Duration::from_millis(10));
        NetRunner::new(config, NullAdversary, Box::new(|_, _| Ping::default()))
    }

    #[test]
    fn loopback_messages_actually_arrive() {
        let mut net = runner(3);
        net.seed_nodes(4);
        net.run(5);
        // Node 1 talks to nodes 0 and 2 every round; on a 10 ms round the
        // loopback comfortably delivers round-t sends by round t+1, so by
        // round 5 node 1 has heard from both neighbors repeatedly.
        let heard = &net.node(NodeId(1)).unwrap().heard;
        assert!(
            heard.len() >= 4,
            "expected steady neighbor traffic, heard {}",
            heard.len()
        );
        let stats = net.net_stats();
        let wire = net.wire_stats();
        assert_eq!(
            stats.sent,
            5 * 7,
            "4 nodes × 2 sends − edge node, × 5 rounds"
        );
        assert!(wire.frames_sent > 0);
        assert!(wire.bytes_sent > wire.frames_sent * 4, "frames have bodies");
        // The edge sends (node 3 → 4, node 0 → u64::MAX wrap) never connect.
        assert!(
            stats.lost >= 5,
            "nonexistent receivers are lost at the wire"
        );
    }

    #[test]
    fn the_trace_accounts_for_every_message() {
        let mut net = runner(4);
        net.seed_nodes(4);
        net.run(4);
        let trace = net.trace();
        assert_eq!(trace.len() as u64, net.net_stats().sent);
        let delivered: usize = net
            .metrics()
            .rounds()
            .iter()
            .map(|m| m.messages_delivered)
            .sum();
        assert_eq!(
            trace.delivered_count(),
            delivered + net.net_stats().dropped_departed as usize
        );
    }

    #[test]
    fn departures_tear_down_the_socket_state() {
        use tsa_sim::ChurnRules;

        struct OneShotChurn;
        impl Adversary for OneShotChurn {
            fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
                if round == 2 {
                    let bootstrap = *view.eligible_bootstraps().last().unwrap();
                    ChurnPlan {
                        departures: vec![NodeId(0)],
                        joins: vec![JoinPlan { bootstrap }],
                    }
                } else {
                    ChurnPlan::none()
                }
            }
        }
        let sim = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let config = NetConfig::new(sim).with_round_duration(Duration::from_millis(10));
        let mut net = NetRunner::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        net.seed_nodes(4);
        net.run(3);
        assert!(!net.member_ids().contains(&NodeId(0)), "node 0 departed");
        assert_eq!(net.node_count(), 4, "one left, one joined");
        let outcome = net.last_churn_outcome();
        assert_eq!(outcome.departed, vec![NodeId(0)]);
        assert_eq!(net.joined_at(outcome.joined[0].0), Some(2));
        // Node 1 keeps sending to the departed node 0: those messages die
        // at the closed socket (or as receiver-departed drops if a stale
        // stream buffered them), never in an inbox.
        net.run(2);
        let stats = net.net_stats();
        assert!(stats.lost + stats.dropped_departed > 5);
    }
}
