//! Length-prefixed wire framing for serde [`Value`] trees.
//!
//! The transport sends every protocol message as one *frame*: a little-endian
//! `u32` payload length followed by a compact binary encoding of the message's
//! serde value tree. The encoding is deterministic (floats travel as their
//! exact `f64::to_bits` image, object keys keep declaration order), so the
//! bytes-on-the-wire figure reported by `exp_net` is a pure function of the
//! protocol trace, not of formatting.
//!
//! Decoding is written for a hostile peer: [`FrameDecoder`] buffers partial
//! reads until a full frame is available, rejects frames beyond a configured
//! size bound before buffering their bodies, and [`decode_value`] bounds its
//! recursion depth so a deeply nested (or truncated, or trailing-garbage)
//! frame yields a [`CodecError`] instead of a panic or stack overflow.

use serde::Value;
use std::fmt;
use tsa_sim::{Envelope, NodeId};

/// Hard ceiling on nesting depth while decoding, so an adversarial frame of
/// `[[[[...]]]]` cannot overflow the decoder's stack. Protocol messages are
/// at most a few levels deep.
const MAX_DEPTH: usize = 64;

/// Default bound on a single frame's payload size (1 MiB) — vastly above any
/// real protocol message, but small enough that a corrupt length prefix
/// cannot make the decoder buffer gigabytes.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Bytes of the `u32` length prefix preceding every frame payload.
pub const FRAME_HEADER_LEN: usize = 4;

/// A framing or decoding failure. All variants are recoverable errors — the
/// codec never panics on wire input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The length prefix announced a payload larger than the decoder's bound.
    Oversized {
        /// The announced payload length.
        len: usize,
        /// The decoder's configured bound.
        max: usize,
    },
    /// The payload was structurally invalid: unknown tag, truncated field,
    /// invalid UTF-8, nesting deeper than the cap, or trailing bytes.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds bound of {max}")
            }
            CodecError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// Value-tree tags. `Bool` spends two tags so every scalar is tag + raw bytes.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_UINT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// Appends the binary encoding of `value` to `out` (no length prefix).
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(entries) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, val) in entries {
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Appends a complete frame (length prefix + payload) for `value` to `out`.
pub fn encode_frame(value: &Value, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&[0; FRAME_HEADER_LEN]);
    encode_value(value, out);
    let payload_len = (out.len() - header_at - FRAME_HEADER_LEN) as u32;
    out[header_at..header_at + FRAME_HEADER_LEN].copy_from_slice(&payload_len.to_le_bytes());
}

/// Encodes `(seq, envelope)` as one complete frame appended to `out`,
/// returning the frame's total on-the-wire length (header included).
///
/// The wire shape is a fixed 5-array: global send sequence number, sender,
/// receiver, send round, then the payload's own value tree. The sequence
/// number travels with the message because it is the message's *identity* in
/// a [`MessageTrace`](tsa_event::MessageTrace) — the receiver records fates
/// against it.
pub fn encode_wire_frame<M: serde::Serialize>(
    seq: u64,
    env: &Envelope<M>,
    out: &mut Vec<u8>,
) -> usize {
    let before = out.len();
    let value = Value::Array(vec![
        Value::UInt(seq),
        Value::UInt(env.from.raw()),
        Value::UInt(env.to.raw()),
        Value::UInt(env.sent_at),
        env.payload.to_value(),
    ]);
    encode_frame(&value, out);
    out.len() - before
}

fn wire_u64(value: &Value) -> Result<u64, CodecError> {
    match value {
        Value::UInt(u) => Ok(*u),
        _ => Err(CodecError::Malformed("expected unsigned wire field")),
    }
}

/// Decodes a frame's value tree back into `(seq, envelope)`.
pub fn decode_wire_value<M: serde::Deserialize>(
    value: &Value,
) -> Result<(u64, Envelope<M>), CodecError> {
    let items = match value {
        Value::Array(items) if items.len() == 5 => items,
        _ => return Err(CodecError::Malformed("wire envelope is not a 5-array")),
    };
    let seq = wire_u64(&items[0])?;
    let from = NodeId(wire_u64(&items[1])?);
    let to = NodeId(wire_u64(&items[2])?);
    let sent_at = wire_u64(&items[3])?;
    let payload = M::from_value(&items[4])
        .map_err(|_| CodecError::Malformed("payload failed to deserialize"))?;
    Ok((seq, Envelope::new(from, to, sent_at, payload)))
}

/// A cursor over a frame payload; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CodecError::Malformed("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("invalid UTF-8"))
    }

    fn value(&mut self, depth: usize) -> Result<Value, CodecError> {
        if depth >= MAX_DEPTH {
            return Err(CodecError::Malformed("nesting too deep"));
        }
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(self.u64()? as i64)),
            TAG_UINT => Ok(Value::UInt(self.u64()?)),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_ARRAY => {
                let count = self.u32()? as usize;
                // Every element costs at least one tag byte, so a count
                // beyond the remaining payload is a lie — reject it before
                // reserving anything.
                if count > self.buf.len() - self.pos {
                    return Err(CodecError::Malformed("array count exceeds payload"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let count = self.u32()? as usize;
                if count > self.buf.len() - self.pos {
                    return Err(CodecError::Malformed("object count exceeds payload"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.string()?;
                    entries.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Object(entries))
            }
            _ => Err(CodecError::Malformed("unknown tag")),
        }
    }
}

/// Decodes one complete frame payload back into a [`Value`].
///
/// The whole payload must be consumed — trailing bytes are an error, so a
/// frame boundary slipping out of sync is caught at the first frame, not
/// after silently resynchronizing on garbage.
pub fn decode_value(payload: &[u8]) -> Result<Value, CodecError> {
    let mut reader = Reader {
        buf: payload,
        pos: 0,
    };
    let value = reader.value(0)?;
    if reader.pos != payload.len() {
        return Err(CodecError::Malformed("trailing bytes after value"));
    }
    Ok(value)
}

/// Incremental frame extraction over a byte stream delivered in arbitrary
/// chunks (the read side of a TCP connection).
///
/// Feed raw reads in with [`push`](FrameDecoder::push); pull decoded values
/// out with [`next_frame`](FrameDecoder::next_frame) until it returns
/// `Ok(None)`. Errors are sticky for the connection in practice — after a
/// malformed frame the stream offset is meaningless and the caller should
/// drop the connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder enforcing the [`DEFAULT_MAX_FRAME`] payload bound.
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A decoder enforcing a custom payload bound.
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends freshly read bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, amortizing the copy.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(value))` for a
    /// decoded frame, and `Err` for an oversized or malformed one.
    pub fn next_frame(&mut self) -> Result<Option<Value>, CodecError> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..FRAME_HEADER_LEN].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(CodecError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if pending.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let value = decode_value(payload)?;
        self.start += FRAME_HEADER_LEN + len;
        Ok(Some(value))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut bytes = Vec::new();
        encode_value(v, &mut bytes);
        decode_value(&bytes).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(0.1 + 0.2),
            Value::Str("héllo\nworld".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn floats_are_bit_exact() {
        // JSON rendering would lose the NaN payload; the wire codec must not.
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut bytes = Vec::new();
        encode_value(&Value::Float(weird), &mut bytes);
        match decode_value(&bytes).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), weird.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Object(vec![
            ("id".into(), Value::UInt(7)),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(-1), Value::Null, Value::Str("s".into())]),
            ),
            ("inner".into(), Value::Object(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn frame_stream_splits_at_any_boundary() {
        let values = [
            Value::UInt(1),
            Value::Str("two".into()),
            Value::Array(vec![Value::UInt(3)]),
        ];
        let mut stream = Vec::new();
        for v in &values {
            encode_frame(v, &mut stream);
        }
        // Deliver the stream one byte at a time — the cruelest segmentation.
        let mut dec = FrameDecoder::new();
        let mut seen = Vec::new();
        for byte in stream {
            dec.push(&[byte]);
            while let Some(v) = dec.next_frame().unwrap() {
                seen.push(v);
            }
        }
        assert_eq!(seen, values);
        assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        let mut dec = FrameDecoder::with_max_frame(16);
        dec.push(&1024u32.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(CodecError::Oversized { len: 1024, max: 16 })
        );
    }

    #[test]
    fn malformed_payloads_error_without_panicking() {
        // Unknown tag.
        assert!(decode_value(&[99]).is_err());
        // Truncated scalar.
        assert!(decode_value(&[TAG_UINT, 1, 2]).is_err());
        // String length past the payload end.
        assert!(decode_value(&[TAG_STR, 255, 255, 255, 255]).is_err());
        // Invalid UTF-8.
        assert!(decode_value(&[TAG_STR, 1, 0, 0, 0, 0xFF]).is_err());
        // Array count exceeding the remaining payload.
        assert!(decode_value(&[TAG_ARRAY, 255, 255, 255, 255]).is_err());
        // Trailing garbage after a valid value.
        assert!(decode_value(&[TAG_NULL, 0]).is_err());
        // Empty payload.
        assert!(decode_value(&[]).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        // 1000 nested single-element arrays: rejected by the depth cap long
        // before the decoder's real stack is at risk.
        let mut bytes = Vec::new();
        for _ in 0..1000 {
            bytes.push(TAG_ARRAY);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(TAG_NULL);
        assert_eq!(
            decode_value(&bytes),
            Err(CodecError::Malformed("nesting too deep"))
        );
    }
}
