//! The trace exporter's robustness pin: whatever the span and counter names
//! contain — quotes, backslashes, control bytes, non-ASCII, JSON syntax —
//! and whatever the timestamps are, [`TraceBuilder::to_json`] emits valid
//! JSON, and durations are u64 microseconds by construction so `NaN` can
//! never appear. Perfetto refuses whole files over one bad byte, so this is
//! the exporter's contract.

use proptest::{collection::vec, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
use tsa_dash::{SpanSlice, TraceBuilder};

/// The hostile alphabet: every character class that has ever broken a JSON
/// escaper, indexed by a plain integer so the shim's integer strategies can
/// drive it.
const HOSTILE: &[&str] = &[
    "\"",
    "\\",
    "\n",
    "\r",
    "\t",
    "\u{0}",
    "\u{1}",
    "\u{7f}",
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "</script>",
    "𝕊",
    "é",
    "☃",
    "\u{2028}",
    "\u{2029}",
    "a",
    "b",
    "span.name",
    " ",
];

/// A hostile name: a short sequence of draws from [`HOSTILE`].
fn hostile_name() -> impl Strategy<Value = String> {
    vec(0usize..HOSTILE.len(), 0..8)
        .prop_map(|picks| picks.into_iter().map(|i| HOSTILE[i]).collect::<String>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hostile_names_and_extreme_times_still_export_valid_json(
        process in hostile_name(),
        thread in hostile_name(),
        names in vec(0usize..HOSTILE.len(), 1..6),
        start in 0u64..u64::MAX,
        dur in 0u64..u64::MAX,
    ) {
        let mut trace = TraceBuilder::new();
        trace.process_name(1, &process);
        trace.thread_name(1, 1, &thread);
        let slices: Vec<SpanSlice> = names
            .iter()
            .enumerate()
            .map(|(i, &pick)| SpanSlice {
                name: HOSTILE[pick].to_string(),
                start_us: start.wrapping_add(i as u64),
                dur_us: dur,
            })
            .collect();
        trace.slices_from(1, 1, &slices);
        let json = trace.to_json();
        let value = serde_json::parse_value(&json)
            .expect("trace export must be valid JSON whatever the names");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array present");
        // Two metadata events plus one slice per span, nothing dropped.
        prop_assert_eq!(events.len(), 2 + slices.len());
        prop_assert!(!json.contains("NaN"), "durations are u64 by construction");
    }
}
