//! Pins for the flight-recorder journal's two load-bearing claims.
//!
//! * **The journal IS the snapshot.** Folding a [`RunJournal`] reproduces
//!   the live recorder's `DetSnapshot` byte-for-byte — on the round engine
//!   and the event engine, across seeds. The `tsa-dash --fold` path and the
//!   dashboard's offline views rest on this.
//! * **The stream is cap-invariant.** The ordered JSONL journal — event
//!   order, not just folded totals — is byte-identical across rayon thread
//!   caps 1, 2 and 4, because deterministic events only ever originate from
//!   the engines' sequential sections. CI's byte-comparison of the exported
//!   `journal.*.jsonl` streams rests on this.

use std::sync::Arc;

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use tsa_adversary::RandomChurnAdversary;
use tsa_core::{AsyncMaintenanceHarness, MaintenanceHarness, MaintenanceParams};
use tsa_dash::{JournalRecorder, RunJournal};
use tsa_event::{LatencyModel, NetModel};
use tsa_obs::ObsHandle;

fn small_params() -> MaintenanceParams {
    MaintenanceParams::new(24)
        .with_c(1.5)
        .with_tau(3)
        .with_replication(2)
}

/// Runs the round engine under a thread cap with a [`JournalRecorder`];
/// returns (journal JSONL, live det snapshot JSON, fold JSON).
fn round_journal(seed: u64, rounds: u64, cap: usize) -> (String, String, String) {
    rayon::with_thread_cap(cap, || {
        let params = small_params();
        let mut h = MaintenanceHarness::assemble(
            params,
            RandomChurnAdversary::new(1, seed),
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        );
        let rec = Arc::new(JournalRecorder::new());
        h.set_obs(ObsHandle::new(rec.clone()));
        h.run_bootstrap();
        h.run(rounds);
        digest(&rec)
    })
}

/// Like [`round_journal`], on the event engine under super-round latency
/// (1500 ticks — delivery genuinely straddles round boundaries).
fn event_journal(seed: u64, rounds: u64, cap: usize) -> (String, String, String) {
    rayon::with_thread_cap(cap, || {
        let params = small_params();
        let mut h = AsyncMaintenanceHarness::assemble(
            params,
            RandomChurnAdversary::new(1, seed),
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
            NetModel::new(LatencyModel::constant(1500)),
        );
        let rec = Arc::new(JournalRecorder::new());
        h.set_obs(ObsHandle::new(rec.clone()));
        h.run_bootstrap();
        h.run(rounds);
        digest(&rec)
    })
}

fn digest(rec: &JournalRecorder) -> (String, String, String) {
    let journal = rec.journal();
    (
        journal.to_jsonl(),
        serde_json::to_string(&rec.det_snapshot()).unwrap(),
        serde_json::to_string(&journal.fold()).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn round_journal_folds_to_the_live_snapshot_across_caps(seed in 0u64..1000) {
        let (jsonl_cap1, live, fold) = round_journal(seed, 3, 1);
        prop_assert_eq!(&fold, &live, "cap 1: fold must reproduce the live snapshot");
        prop_assert!(!jsonl_cap1.is_empty(), "an instrumented run must journal events");
        for cap in [2usize, 4] {
            let (jsonl, live, fold) = round_journal(seed, 3, cap);
            prop_assert_eq!(&fold, &live, "cap {}: fold must reproduce the live snapshot", cap);
            prop_assert_eq!(
                &jsonl, &jsonl_cap1,
                "cap {}: the ordered journal stream must not depend on the thread cap", cap
            );
        }
    }

    #[test]
    fn event_journal_folds_to_the_live_snapshot_across_caps(seed in 0u64..1000) {
        let (jsonl_cap1, live, fold) = event_journal(seed, 3, 1);
        prop_assert_eq!(&fold, &live, "cap 1: fold must reproduce the live snapshot");
        for cap in [2usize, 4] {
            let (jsonl, live, fold) = event_journal(seed, 3, cap);
            prop_assert_eq!(&fold, &live, "cap {}: fold must reproduce the live snapshot", cap);
            prop_assert_eq!(
                &jsonl, &jsonl_cap1,
                "cap {}: the ordered journal stream must not depend on the thread cap", cap
            );
        }
    }

    #[test]
    fn journal_streams_round_trip_through_jsonl(seed in 0u64..1000) {
        let (jsonl, live, _) = round_journal(seed, 2, 1);
        let reparsed = RunJournal::from_jsonl(&jsonl).expect("exported journal parses");
        prop_assert_eq!(reparsed.to_jsonl(), jsonl, "serialize∘parse must be identity");
        prop_assert_eq!(
            serde_json::to_string(&reparsed.fold()).unwrap(), live,
            "a journal read back from disk must still fold to the live snapshot"
        );
    }
}
