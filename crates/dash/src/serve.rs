//! The live experiment dashboard: a minimal HTTP/1.1 server over
//! `std::net` TCP — the same no-tokio discipline as `tsa-net` — serving a
//! static HTML page plus JSON polling endpoints.
//!
//! Endpoints:
//!
//! * `GET /` — the embedded dashboard page (no files to deploy).
//! * `GET /api/progress` — every `*.progress.json` sidecar under the sweeps
//!   directory, as an array of `{file, snapshot}` objects. Sidecars are
//!   written atomically by the sweep executor after each cell, so a poll
//!   always sees a complete JSON document.
//! * `GET /api/trajectory` — every parseable row of `TRAJECTORY.jsonl`.
//! * `GET /api/bench` — the names of committed `BENCH_*.json` artifacts.
//! * `GET /api/bench/<name>` — one artifact's contents (name must match
//!   `BENCH_*.json` exactly; path traversal is rejected by construction).
//!
//! The server handles one connection at a time with a short read timeout:
//! it is an observation window onto files the experiments own, not a
//! production web server, and a stalled client must never wedge a sweep.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::Value;

use crate::trajectory::{read_rows, TRAJECTORY_FILE};

/// What the dashboard watches.
#[derive(Clone, Debug)]
pub struct DashConfig {
    /// The repo/artifact directory: `BENCH_*.json` and `TRAJECTORY.jsonl`
    /// live here.
    pub dir: PathBuf,
    /// The sweep shard directory: `*.progress.json` sidecars live here.
    pub sweeps: PathBuf,
}

impl DashConfig {
    /// Watches `dir` for artifacts and `dir/target/sweeps` for progress.
    pub fn at(dir: &Path) -> Self {
        DashConfig {
            dir: dir.to_path_buf(),
            sweeps: dir.join("target").join("sweeps"),
        }
    }
}

/// Serves `config` on `listener` until `max_requests` connections have been
/// handled (`None` = forever). Returns the number of requests served.
///
/// Per-connection errors (torn requests, client timeouts, broken pipes) are
/// absorbed: the dashboard observes, it must never fail the thing it
/// observes.
pub fn serve(listener: &TcpListener, config: &DashConfig, max_requests: Option<usize>) -> usize {
    let mut served = 0;
    for stream in listener.incoming() {
        if let Ok(stream) = stream {
            let _ = handle(stream, config);
        }
        served += 1;
        if let Some(max) = max_requests {
            if served >= max {
                break;
            }
        }
    }
    served
}

fn handle(mut stream: TcpStream, config: &DashConfig) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => return respond(&mut stream, 400, "text/plain", b"bad request"),
    };
    match path.as_str() {
        "/" | "/index.html" => respond(
            &mut stream,
            200,
            "text/html; charset=utf-8",
            DASH_HTML.as_bytes(),
        ),
        "/api/progress" => {
            let body = progress_json(&config.sweeps);
            respond(&mut stream, 200, "application/json", body.as_bytes())
        }
        "/api/trajectory" => {
            let body = trajectory_json(&config.dir);
            respond(&mut stream, 200, "application/json", body.as_bytes())
        }
        "/api/bench" => {
            let body = bench_list_json(&config.dir);
            respond(&mut stream, 200, "application/json", body.as_bytes())
        }
        p if p.starts_with("/api/bench/") => {
            match bench_artifact(&config.dir, &p["/api/bench/".len()..]) {
                Some(body) => respond(&mut stream, 200, "application/json", body.as_bytes()),
                None => respond(&mut stream, 404, "text/plain", b"no such artifact"),
            }
        }
        _ => respond(&mut stream, 404, "text/plain", b"not found"),
    }
}

/// Reads the request head and returns the GET path (query string stripped).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    // Read until the end of the request line; a well-formed GET fits well
    // inside 8 KiB, and anything longer is not a request we serve.
    let mut buf = [0u8; 8192];
    let mut len = 0;
    loop {
        if len == buf.len() {
            return None;
        }
        let n = stream.read(&mut buf[len..]).ok()?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].contains(&b'\n') {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..len]).ok()?;
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    Some(target.split('?').next().unwrap_or(target).to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\ncache-control: no-store\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// All progress sidecars as `[{file, snapshot}]`, sorted by file name so
/// polls are stable.
fn progress_json(sweeps: &Path) -> String {
    let mut entries: Vec<(String, Value)> = Vec::new();
    if let Ok(dir) = std::fs::read_dir(sweeps) {
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if !name.ends_with(".progress.json") {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(entry.path()) {
                if let Ok(snapshot) = serde_json::parse_value(&text) {
                    entries.push((name, snapshot));
                }
            }
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(
        entries
            .into_iter()
            .map(|(file, snapshot)| {
                Value::Object(vec![
                    ("file".to_string(), Value::Str(file)),
                    ("snapshot".to_string(), snapshot),
                ])
            })
            .collect(),
    )
    .to_json_compact()
}

fn trajectory_json(dir: &Path) -> String {
    let rows = read_rows(&dir.join(TRAJECTORY_FILE));
    serde_json::to_string(&rows).unwrap_or_else(|_| "[]".to_string())
}

/// Committed artifact names (`BENCH_*.json`), sorted.
fn bench_list_json(dir: &Path) -> String {
    let mut names: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if valid_bench_name(&name) {
                names.push(name);
            }
        }
    }
    names.sort();
    Value::Array(names.into_iter().map(Value::Str).collect()).to_json_compact()
}

/// A servable artifact name: exactly `BENCH_<word>.json`, no separators —
/// traversal is impossible because nothing outside this shape is looked up.
fn valid_bench_name(name: &str) -> bool {
    name.starts_with("BENCH_")
        && name.ends_with(".json")
        && name.len() > "BENCH_.json".len()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !name.contains("..")
}

fn bench_artifact(dir: &Path, name: &str) -> Option<String> {
    if !valid_bench_name(name) {
        return None;
    }
    let text = std::fs::read_to_string(dir.join(name)).ok()?;
    // Only serve well-formed JSON: the page consumes it directly.
    serde_json::parse_value(&text).ok()?;
    Some(text)
}

/// The dashboard page. Palette and chart rules follow the repo's data-viz
/// discipline: roles as CSS custom properties with a selected dark mode,
/// categorical slot 1 (blue) for the single trajectory series per chart
/// (one series per small multiple — no legend needed), text in ink tokens,
/// hairline grid, thin marks, tabular figures in tables.
const DASH_HTML: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>tsa dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --series-1: #2a78d6;
    --good: #0ca30c;
    --critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --series-1: #3987e5;
      --good: #0ca30c;
      --critical: #d03b3b;
    }
  }
  body.viz-root {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; margin: 0 0 4px; }
  h2 { font-size: 14px; margin: 24px 0 8px; color: var(--text-secondary); font-weight: 600; }
  .sub { color: var(--text-secondary); margin: 0 0 16px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--grid);
    border-radius: 8px; padding: 12px 16px; margin-bottom: 12px;
  }
  .bar { height: 6px; border-radius: 3px; background: var(--grid); overflow: hidden; margin: 6px 0; }
  .bar > div { height: 100%; background: var(--series-1); border-radius: 3px; }
  .meta { color: var(--text-secondary); font-size: 12px; }
  .recent { color: var(--muted); font-size: 12px; white-space: pre-wrap; margin-top: 4px; }
  table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
  th, td { text-align: left; padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }
  th { color: var(--text-secondary); font-weight: 600; }
  td.num { text-align: right; }
  .ok { color: var(--good); } .bad { color: var(--critical); }
  .charts { display: flex; flex-wrap: wrap; gap: 12px; }
  .chart { background: var(--surface-1); border: 1px solid var(--grid); border-radius: 8px; padding: 10px 12px; }
  .chart .t { font-size: 12px; color: var(--text-secondary); margin-bottom: 4px; }
  svg text { fill: var(--muted); font: 10px system-ui, sans-serif; }
  .empty { color: var(--muted); }
</style>
</head>
<body class="viz-root">
<h1>tsa experiment dashboard</h1>
<p class="sub">Live sweep progress and the cross-PR perf trajectory. Polls every 2&#8201;s.</p>
<h2>Sweeps in flight</h2>
<div id="progress"><p class="empty">No progress sidecars yet.</p></div>
<h2>Perf trajectory (TRAJECTORY.jsonl)</h2>
<div id="trajectory" class="charts"><p class="empty">No trajectory rows yet.</p></div>
<h2>Committed artifacts</h2>
<div id="bench" class="card"><p class="empty">None found.</p></div>
<script>
"use strict";
const esc = s => String(s).replace(/[&<>"]/g, c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmtSecs = s => s < 60 ? Math.round(s) + "s"
  : s < 3600 ? Math.floor(s/60) + "m" + String(Math.round(s%60)).padStart(2,"0") + "s"
  : Math.floor(s/3600) + "h" + String(Math.floor(s%3600/60)).padStart(2,"0") + "m";

async function poll(url) {
  try { const r = await fetch(url); return r.ok ? await r.json() : null; }
  catch (e) { return null; }
}

function renderProgress(items) {
  const el = document.getElementById("progress");
  if (!items || !items.length) { el.innerHTML = '<p class="empty">No progress sidecars yet.</p>'; return; }
  el.innerHTML = items.map(({file, snapshot: s}) => {
    const pct = s.total ? (100 * s.done / s.total) : 0;
    const eta = s.done >= s.total ? "done" : "eta " + fmtSecs(s.eta_secs);
    const recent = (s.recent || []).slice(-3).map(esc).join("\n");
    return `<div class="card"><strong>${esc(s.label)}</strong>
      <span class="meta">${s.done}/${s.total} &middot; ${eta} &middot; ${esc(file)}</span>
      <div class="bar"><div style="width:${pct.toFixed(1)}%"></div></div>
      <div class="recent">${recent}</div></div>`;
  }).join("");
}

// One small multiple per (exp, metric): a single blue series on its own
// axis — never two scales on one chart.
function chartSvg(points) {
  const W = 260, H = 90, L = 8, R = 8, T = 8, B = 16;
  const xs = points.map(p => p.x), ys = points.map(p => p.y);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const y0 = Math.min(0, Math.min(...ys)), y1 = Math.max(...ys) || 1;
  const px = x => x1 === x0 ? W / 2 : L + (x - x0) / (x1 - x0) * (W - L - R);
  const py = y => H - B - (y - y0) / (y1 - y0 || 1) * (H - T - B);
  const d = points.map((p, i) => (i ? "L" : "M") + px(p.x).toFixed(1) + " " + py(p.y).toFixed(1)).join(" ");
  const dots = points.length === 1
    ? `<circle cx="${px(points[0].x)}" cy="${py(points[0].y)}" r="4" fill="var(--series-1)"/>` : "";
  const last = points[points.length - 1];
  return `<svg width="${W}" height="${H}" role="img">
    <line x1="${L}" y1="${H-B}" x2="${W-R}" y2="${H-B}" stroke="var(--baseline)" stroke-width="1"/>
    <path d="${d}" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round"/>${dots}
    <text x="${W-R}" y="${H-3}" text-anchor="end">${esc(last.y.toPrecision(4))}</text>
  </svg>`;
}

function renderTrajectory(rows) {
  const el = document.getElementById("trajectory");
  if (!rows || !rows.length) { el.innerHTML = '<p class="empty">No trajectory rows yet.</p>'; return; }
  const series = new Map();
  for (const row of rows) {
    for (const m of row.metrics || []) {
      const key = row.exp + " &middot; " + esc(m.name);
      if (!series.has(key)) series.set(key, []);
      series.get(key).push({x: row.unix_ms, y: m.value, ok: row.det_match});
    }
  }
  let html = "";
  for (const [key, pts] of series) {
    pts.sort((a, b) => a.x - b.x);
    const ok = pts.every(p => p.ok);
    html += `<div class="chart"><div class="t">${key}
      <span class="${ok ? "ok" : "bad"}">${ok ? "&#10003; det" : "&#10007; drift"}</span></div>
      ${chartSvg(pts)}</div>`;
  }
  el.innerHTML = html;
}

function renderBench(names) {
  const el = document.getElementById("bench");
  if (!names || !names.length) { el.innerHTML = '<p class="empty">None found.</p>'; return; }
  el.innerHTML = "<table><tr><th>artifact</th></tr>" +
    names.map(n => `<tr><td><a href="/api/bench/${esc(n)}">${esc(n)}</a></td></tr>`).join("") +
    "</table>";
}

async function tick() {
  renderProgress(await poll("/api/progress"));
  renderTrajectory(await poll("/api/trajectory"));
  renderBench(await poll("/api/bench"));
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn request(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        let status: u16 = body
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = body
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    fn temp_config(tag: &str) -> DashConfig {
        let dir = std::env::temp_dir().join(format!("tsa-dash-serve-{tag}"));
        let sweeps = dir.join("sweeps");
        std::fs::create_dir_all(&sweeps).unwrap();
        DashConfig {
            dir: dir.clone(),
            sweeps,
        }
    }

    fn serve_n(
        config: DashConfig,
        n: usize,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(&listener, &config, Some(n)));
        (addr, handle)
    }

    #[test]
    fn serves_page_progress_trajectory_and_artifacts() {
        let config = temp_config("full");
        std::fs::write(
            config.sweeps.join("exp.sweep.progress.json"),
            r#"{"label":"exp/sweep","total":4,"done":1,"elapsed_secs":1.0,"eta_secs":3.0,"recent":["cell"]}"#,
        )
        .unwrap();
        std::fs::write(
            config.dir.join(TRAJECTORY_FILE),
            "{\"exp\":\"exp_perf\",\"unix_ms\":5,\"host\":\"h/l/x\",\"det_match\":true,\"artifact_bytes\":10,\"metrics\":[]}\n",
        )
        .unwrap();
        std::fs::write(config.dir.join("BENCH_exp_demo.json"), "{\"ok\":true}").unwrap();
        std::fs::write(config.dir.join("not_bench.json"), "{}").unwrap();

        let (addr, handle) = serve_n(config, 6);
        let (status, page) = request(addr, "/");
        assert_eq!(status, 200);
        assert!(page.contains("tsa experiment dashboard"));

        let (status, progress) = request(addr, "/api/progress");
        assert_eq!(status, 200);
        let doc = serde_json::parse_value(&progress).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0]
                .get("snapshot")
                .unwrap()
                .get("label")
                .unwrap()
                .as_str(),
            Some("exp/sweep")
        );

        let (status, traj) = request(addr, "/api/trajectory");
        assert_eq!(status, 200);
        let rows = serde_json::parse_value(&traj).unwrap();
        assert_eq!(rows.as_array().unwrap().len(), 1);

        let (status, list) = request(addr, "/api/bench");
        assert_eq!(status, 200);
        let names = serde_json::parse_value(&list).unwrap();
        assert_eq!(
            names.as_array().unwrap()[0].as_str(),
            Some("BENCH_exp_demo.json")
        );

        let (status, artifact) = request(addr, "/api/bench/BENCH_exp_demo.json");
        assert_eq!(status, 200);
        assert!(artifact.contains("\"ok\""));

        let (status, _) = request(addr, "/api/bench/../Cargo.toml");
        assert_eq!(status, 404);
        assert_eq!(handle.join().unwrap(), 6);
    }

    #[test]
    fn unknown_paths_and_bad_methods_do_not_wedge_the_server() {
        let config = temp_config("bad");
        let (addr, handle) = serve_n(config, 3);
        let (status, _) = request(addr, "/nope");
        assert_eq!(status, 404);
        // A POST is refused, not served.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST / HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // And the server is still alive for the next request.
        let (status, _) = request(addr, "/api/progress");
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn bench_name_validation_is_strict() {
        assert!(valid_bench_name("BENCH_exp_perf.json"));
        assert!(!valid_bench_name("BENCH_.json"));
        assert!(!valid_bench_name("BENCH_a/../b.json"));
        assert!(!valid_bench_name("BENCH_a..json"));
        assert!(!valid_bench_name("other.json"));
        assert!(!valid_bench_name("BENCH_exp.txt"));
    }
}
