//! Chrome-trace / Perfetto export.
//!
//! Renders wall-clock [`SpanSlice`]s — engine phase spans and sweep cells —
//! as [trace-event JSON]: a `{"traceEvents": [...]}` document that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly. One process per engine or sweep, one thread ("track") per
//! worker, one complete (`"ph": "X"`) slice per span.
//!
//! Two design constraints, both enforced by construction rather than by
//! checking:
//!
//! * **Always valid JSON.** The vendored serde derive has no `rename`
//!   attribute, and trace-event keys (`traceEvents`, `ph`, `ts`, `pid`) do
//!   not follow Rust naming — so the builder assembles a `serde` [`Value`]
//!   tree directly and serializes through the shim's escaping writer.
//!   Hostile span names (quotes, backslashes, control characters, non-BMP
//!   codepoints) are escaped exactly like any other JSON string.
//! * **No NaN, ever.** Timestamps and durations stay `u64` microseconds end
//!   to end and are emitted as JSON integers; a non-finite number cannot be
//!   represented in the input types. The hostile-name proptest pins both
//!   properties.
//!
//! [trace-event JSON]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::Value;

use crate::journal::SpanSlice;

/// One trace event, held as an ordered JSON object.
fn event(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds a trace-event JSON document from span slices.
///
/// Tracks are addressed by `(pid, tid)` pairs chosen by the caller — one
/// pid per engine (or per sweep), one tid per worker — and optionally named
/// through metadata events so Perfetto shows labels instead of numbers.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events (slices + metadata) added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names process `pid` (one per engine or sweep) in the trace UI.
    pub fn process_name(&mut self, pid: u64, name: &str) -> &mut Self {
        self.events.push(event(vec![
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(0)),
            (
                "args",
                Value::Object(vec![("name".to_string(), Value::Str(name.to_string()))]),
            ),
        ]));
        self
    }

    /// Names thread (track) `tid` of process `pid` in the trace UI.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) -> &mut Self {
        self.events.push(event(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            (
                "args",
                Value::Object(vec![("name".to_string(), Value::Str(name.to_string()))]),
            ),
        ]));
        self
    }

    /// One complete (`"ph": "X"`) slice on track `(pid, tid)`, starting
    /// `ts_us` microseconds into the trace and lasting `dur_us`.
    pub fn slice(&mut self, pid: u64, tid: u64, name: &str, ts_us: u64, dur_us: u64) -> &mut Self {
        self.events.push(event(vec![
            ("name", Value::Str(name.to_string())),
            ("ph", Value::Str("X".to_string())),
            ("ts", Value::UInt(ts_us)),
            ("dur", Value::UInt(dur_us)),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
        ]));
        self
    }

    /// Every slice of `slices` onto track `(pid, tid)` — the bridge from a
    /// [`JournalRecorder`](crate::JournalRecorder)'s collected spans.
    pub fn slices_from(&mut self, pid: u64, tid: u64, slices: &[SpanSlice]) -> &mut Self {
        for s in slices {
            self.slice(pid, tid, &s.name, s.start_us, s.dur_us);
        }
        self
    }

    /// The finished document: `{"traceEvents": [...], "displayTimeUnit":
    /// "ms"}` as compact JSON. Valid by construction — every string passes
    /// through the serializer's escaping writer and every number is an
    /// integer.
    pub fn to_json(&self) -> String {
        let doc = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(self.events.clone())),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        doc.to_json_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_minimal_trace_has_the_required_keys() {
        let mut t = TraceBuilder::new();
        t.process_name(1, "round engine")
            .thread_name(1, 1, "rounds")
            .slice(1, 1, "sim.deliver", 0, 250);
        assert_eq!(t.len(), 3);
        let json = t.to_json();
        let doc = serde_json::parse_value(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        let slice = &events[2];
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(250));
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    }

    #[test]
    fn hostile_names_stay_valid_json() {
        let mut t = TraceBuilder::new();
        let hostile = "quote\" backslash\\ newline\n null\u{0} emoji\u{1F600} end";
        t.process_name(7, hostile).thread_name(7, 3, hostile).slice(
            7,
            3,
            hostile,
            u64::MAX,
            u64::MAX,
        );
        let json = t.to_json();
        let doc = serde_json::parse_value(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[2].get("name").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn slices_from_maps_every_span() {
        let slices = vec![
            SpanSlice {
                name: "a".into(),
                start_us: 10,
                dur_us: 5,
            },
            SpanSlice {
                name: "b".into(),
                start_us: 20,
                dur_us: 0,
            },
        ];
        let mut t = TraceBuilder::new();
        t.slices_from(2, 1, &slices);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let doc = serde_json::parse_value(&t.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("b"));
        assert_eq!(events[1].get("dur").unwrap().as_u64(), Some(0));
    }
}
