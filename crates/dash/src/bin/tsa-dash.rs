//! The dashboard binary.
//!
//! ```text
//! tsa-dash --serve [--addr 127.0.0.1:8787] [--dir .] [--sweeps <dir>]
//! tsa-dash --fold <journal.jsonl>
//! ```
//!
//! `--serve` starts the live dashboard (see [`tsa_dash::serve`]); `--fold`
//! replays a flight-recorder journal and prints the deterministic snapshot
//! it folds to — the offline half of the fold-equals-snapshot check.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use tsa_dash::{serve, DashConfig, RunJournal};

const USAGE: &str = "usage:
  tsa-dash --serve [--addr 127.0.0.1:8787] [--dir .] [--sweeps <dir>] [--max-requests N]
  tsa-dash --fold <journal.jsonl>

  --serve          serve the live dashboard over plain HTTP
  --addr A         listen address (default 127.0.0.1:8787)
  --dir D          artifact directory holding BENCH_*.json and TRAJECTORY.jsonl (default .)
  --sweeps D       progress sidecar directory (default <dir>/target/sweeps)
  --max-requests N exit after serving N requests (smoke tests)
  --fold FILE      fold a JSONL journal and print its DetSnapshot as JSON";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_serve = false;
    let mut fold: Option<PathBuf> = None;
    let mut addr = String::from("127.0.0.1:8787");
    let mut dir = PathBuf::from(".");
    let mut sweeps: Option<PathBuf> = None;
    let mut max_requests: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serve" => mode_serve = true,
            "--fold" => match it.next() {
                Some(path) => fold = Some(PathBuf::from(path)),
                None => return usage_error("--fold needs a file"),
            },
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error("--addr needs an address"),
            },
            "--dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => return usage_error("--dir needs a directory"),
            },
            "--sweeps" => match it.next() {
                Some(d) => sweeps = Some(PathBuf::from(d)),
                None => return usage_error("--sweeps needs a directory"),
            },
            "--max-requests" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_requests = Some(n),
                None => return usage_error("--max-requests needs a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other}")),
        }
    }

    if let Some(path) = fold {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tsa-dash: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let journal = match RunJournal::from_jsonl(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("tsa-dash: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snapshot = journal.fold();
        println!(
            "{}",
            serde_json::to_string_pretty(&snapshot).expect("snapshot serializes")
        );
        return ExitCode::SUCCESS;
    }

    if !mode_serve {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut config = DashConfig::at(&dir);
    if let Some(s) = sweeps {
        config.sweeps = s;
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("tsa-dash: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tsa-dash: serving {} (sweeps: {}) on http://{addr}/",
        config.dir.display(),
        config.sweeps.display()
    );
    serve(&listener, &config, max_requests);
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("tsa-dash: {message}\n{USAGE}");
    ExitCode::FAILURE
}
