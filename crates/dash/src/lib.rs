//! # tsa-dash — the observation/presentation layer
//!
//! What `tsa-obs` measures, this crate keeps, exports and shows:
//!
//! * [`JournalRecorder`] / [`RunJournal`] — the **flight recorder**: the
//!   ordered deterministic event stream of a run (counter deltas, histogram
//!   observations, round boundaries) as serde-round-trippable JSONL, with
//!   the invariant that [`RunJournal::fold`] reproduces the live
//!   [`DetSnapshot`](tsa_obs::DetSnapshot) byte-for-byte. Because engines
//!   emit deterministic events only from sequential sections, the stream —
//!   order included — is byte-identical across hosts and thread caps.
//! * [`TraceBuilder`] — **Chrome-trace/Perfetto export** of the wall-clock
//!   side: engine phase spans and sweep cells as trace-event JSON, one
//!   process per engine, one track per worker, one slice per span.
//! * [`serve()`](serve::serve) / [`DashConfig`] — the **live dashboard**: a `std::net`
//!   HTTP server (no tokio, same discipline as `tsa-net`) that tails sweep
//!   progress sidecars, plots the cross-PR [`TrajectoryRow`] history and
//!   lists committed `BENCH_*.json` artifacts.
//! * [`TrajectoryRow`] / [`append_row`] — the **perf trajectory**: one
//!   machine-tagged JSONL row per `tsa-bench --compare` run.
//!
//! The det/timing split of `tsa-obs` is preserved wholesale: journals hold
//! only deterministic events and are byte-compared in CI; spans live in
//! [`SpanSlice`]s and traces, which never are.

#![deny(missing_docs)]

pub mod journal;
pub mod serve;
pub mod trace;
pub mod trajectory;

pub use journal::{JournalEvent, JournalRecorder, RunJournal, SpanSlice};
pub use serve::{serve, DashConfig};
pub use trace::TraceBuilder;
pub use trajectory::{
    append_row, machine_tag, read_rows, MetricPoint, TrajectoryRow, TRAJECTORY_FILE,
};
