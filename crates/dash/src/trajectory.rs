//! The cross-PR perf trajectory: one machine-tagged JSONL row per
//! `tsa-bench --compare` run, appended to `TRAJECTORY.jsonl` at the repo
//! root and plotted by the dashboard.
//!
//! The file is append-only history, not a byte-compared artifact: rows
//! carry wall-clock timestamps, hostnames and timing-derived metrics, so
//! two machines legitimately write different rows. What *is* checked is
//! the `det_match` flag — the deterministic half of the compared artifact
//! either matched the committed bytes or it did not, and the row records
//! which, forever.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// The trajectory file's name at the repo root.
pub const TRAJECTORY_FILE: &str = "TRAJECTORY.jsonl";

/// One named scalar pulled out of a bench artifact for plotting (e.g.
/// `rounds_per_sec[flood,n=4096,t=4]`). A `Vec` of these rather than a map
/// so the row round-trips through the vendored serde derive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// The metric's name (artifact-specific, stable across PRs).
    pub name: String,
    /// Its value in this run.
    pub value: f64,
}

/// One `tsa-bench --compare` run's outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryRow {
    /// The experiment (`exp_perf`, `exp_table1`, …).
    pub exp: String,
    /// Wall-clock milliseconds since the Unix epoch when the run finished.
    pub unix_ms: u64,
    /// The machine tag ([`machine_tag`]): `host/os/arch`.
    pub host: String,
    /// Whether the fresh deterministic artifact byte-matched the committed
    /// one.
    pub det_match: bool,
    /// Size of the freshly generated artifact in bytes.
    pub artifact_bytes: u64,
    /// Plottable scalars extracted from the fresh artifact.
    pub metrics: Vec<MetricPoint>,
}

/// A `host/os/arch` tag identifying the machine a row came from. The host
/// part prefers `$HOSTNAME`, falls back to `/proc/sys/kernel/hostname`,
/// then to `"unknown"` — best effort, never an error.
pub fn machine_tag() -> String {
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    format!("{host}/{}/{}", std::env::consts::OS, std::env::consts::ARCH)
}

/// Appends one row to the trajectory file at `path`, creating it if absent.
pub fn append_row(path: &Path, row: &TrajectoryRow) -> std::io::Result<()> {
    let line = serde_json::to_string(row)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{line}")
}

/// Reads every parseable row from the trajectory file at `path`. Missing
/// file means no history (empty vec); unparseable lines are skipped — the
/// trajectory is observational, a torn append must not brick the dashboard.
pub fn read_rows(path: &Path) -> Vec<TrajectoryRow> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<TrajectoryRow>(l).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(exp: &str, unix_ms: u64) -> TrajectoryRow {
        TrajectoryRow {
            exp: exp.to_string(),
            unix_ms,
            host: machine_tag(),
            det_match: true,
            artifact_bytes: 1234,
            metrics: vec![MetricPoint {
                name: "rounds_per_sec[flood,n=1024,t=1]".to_string(),
                value: 41.5,
            }],
        }
    }

    #[test]
    fn rows_append_and_read_back_in_order() {
        let dir = std::env::temp_dir().join("tsa-dash-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TRAJECTORY_FILE);
        let _ = std::fs::remove_file(&path);
        assert!(read_rows(&path).is_empty(), "missing file reads as empty");
        append_row(&path, &sample("exp_perf", 1)).unwrap();
        append_row(&path, &sample("exp_table1", 2)).unwrap();
        let rows = read_rows(&path);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].exp, "exp_perf");
        assert_eq!(rows[1].unix_ms, 2);
        assert_eq!(rows[0].metrics[0].value, 41.5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("tsa-dash-trajectory-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TRAJECTORY_FILE);
        let _ = std::fs::remove_file(&path);
        append_row(&path, &sample("exp_perf", 9)).unwrap();
        // Simulate a kill mid-append.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"exp\":\"torn").unwrap();
        drop(f);
        let rows = read_rows(&path);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].unix_ms, 9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn machine_tag_has_three_parts() {
        let tag = machine_tag();
        assert_eq!(tag.split('/').count(), 3, "{tag}");
        assert!(tag.ends_with(std::env::consts::ARCH));
    }
}
