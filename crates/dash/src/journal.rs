//! The flight recorder: an ordered journal of deterministic observability
//! events.
//!
//! [`ObsRecorder`] aggregates — a run's story dies at process exit as one
//! terminal [`DetSnapshot`]. The [`JournalRecorder`] keeps the *stream*
//! instead: every counter delta, histogram observation and round boundary,
//! in engine emission order, as serde-round-trippable [`JournalEvent`]s.
//! Two invariants make the journal trustworthy:
//!
//! * **Fold equals snapshot.** [`RunJournal::fold`] replays the stream into
//!   a fresh [`DetSnapshot`] that is byte-identical to what the live
//!   recorder reports. The journal therefore carries strictly *more*
//!   information than the snapshot — order and per-round attribution — at
//!   zero trust cost: if the fold matches, no event was lost or reordered
//!   into a different aggregate.
//! * **The deterministic stream is deterministic.** Engines emit
//!   deterministic events only from their sequential sections (the PR 7
//!   contract), so the event *order* — not just the totals — is a pure
//!   function of `(seed, protocol)`: byte-identical JSONL across hosts,
//!   thread caps and `TSA_THREADS` settings. CI byte-compares the files.
//!
//! Wall-clock spans never enter the deterministic stream. The recorder
//! keeps them as [`SpanSlice`]s — honest begin/duration pairs relative to
//! the recorder's epoch — on a strictly separate side, feeding the
//! [trace export](crate::trace) and never a byte-compared artifact.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tsa_obs::{
    bucket_of, BucketCount, CounterSnapshot, DetSnapshot, HistogramSnapshot, ObsRecorder, Recorder,
    RegionHistogramSnapshot, TimingSnapshot,
};

/// One deterministic observability event, in engine emission order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// `delta` was added to the monotonic counter `name`.
    Counter {
        /// The counter's name.
        name: String,
        /// The increment.
        delta: u64,
    },
    /// `value` was recorded into the power-of-two histogram `name`.
    Observe {
        /// The histogram's name.
        name: String,
        /// The observed value.
        value: u64,
    },
    /// `value` was recorded into the histogram `name` keyed by `region`.
    Region {
        /// The histogram's name.
        name: String,
        /// The region key.
        region: u32,
        /// The observed value.
        value: u64,
    },
    /// Protocol round `index` finished; the events that follow (up to the
    /// next boundary) belong to later rounds.
    Round {
        /// The completed round's index.
        index: u64,
    },
}

/// The ordered deterministic event stream of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunJournal {
    /// The events, in emission order.
    pub events: Vec<JournalEvent>,
}

/// A folding histogram: the same algebra as the live recorder's, but keyed
/// by owned strings (journal events carry `String` names, the live recorder
/// `&'static str`).
#[derive(Default)]
struct FoldHist {
    count: u64,
    sum: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

impl FoldHist {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .map(|(bucket, count)| BucketCount {
                    bucket: *bucket,
                    count: *count,
                })
                .collect(),
        }
    }
}

impl RunJournal {
    /// Number of events in the journal.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the stream into the aggregate it implies. The result is
    /// byte-identical to the [`DetSnapshot`] of the live recorder that
    /// emitted the journal — the fold-equals-snapshot invariant pinned by
    /// `tests/journal_props.rs` and the CI `dash-smoke` job.
    pub fn fold(&self) -> DetSnapshot {
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<&str, FoldHist> = BTreeMap::new();
        let mut regions: BTreeMap<(&str, u32), FoldHist> = BTreeMap::new();
        for event in &self.events {
            match event {
                JournalEvent::Counter { name, delta } => {
                    *counters.entry(name).or_insert(0) += delta;
                }
                JournalEvent::Observe { name, value } => {
                    histograms.entry(name).or_default().record(*value);
                }
                JournalEvent::Region {
                    name,
                    region,
                    value,
                } => {
                    regions.entry((name, *region)).or_default().record(*value);
                }
                JournalEvent::Round { .. } => {}
            }
        }
        DetSnapshot {
            counters: counters
                .iter()
                .map(|(name, value)| CounterSnapshot {
                    name: name.to_string(),
                    value: *value,
                })
                .collect(),
            histograms: histograms
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
            region_histograms: regions
                .iter()
                .map(|((name, region), h)| RegionHistogramSnapshot {
                    region: *region,
                    histogram: h.snapshot(name),
                })
                .collect(),
        }
    }

    /// The journal as JSONL: one compact JSON object per line, in emission
    /// order. This is the byte-compared on-disk form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&serde_json::to_string(event).expect("journal events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL journal back. Empty lines are skipped; the first
    /// malformed line aborts with its line number — a journal is an ordered
    /// record, so silently dropping a line would forge the fold.
    pub fn from_jsonl(text: &str) -> Result<RunJournal, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalEvent>(line) {
                Ok(event) => events.push(event),
                Err(err) => return Err(format!("journal line {}: {err:?}", i + 1)),
            }
        }
        Ok(RunJournal { events })
    }
}

/// One completed wall-clock span, positioned in run time: `start_us`
/// microseconds after the recorder's creation, lasting `dur_us`. The
/// trace exporter turns these into Perfetto slices. Honest timings —
/// machine-dependent, never byte-compared.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSlice {
    /// The span's name.
    pub name: String,
    /// Microseconds from the recorder's epoch to the span's start.
    pub start_us: u64,
    /// The span's duration in microseconds.
    pub dur_us: u64,
}

/// The flight recorder: an [`ObsRecorder`] that additionally journals the
/// deterministic event stream and keeps wall-clock spans as positioned
/// slices.
///
/// Delegation, not reimplementation: every call lands in the inner
/// aggregate recorder too, so [`det_snapshot`](JournalRecorder::det_snapshot)
/// is *the same code path* exp_profile has always byte-compared — the
/// journal rides along and its fold is checked against that snapshot.
#[derive(Debug)]
pub struct JournalRecorder {
    inner: ObsRecorder,
    events: Mutex<Vec<JournalEvent>>,
    slices: Mutex<Vec<SpanSlice>>,
    epoch: Instant,
}

impl Default for JournalRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl JournalRecorder {
    /// An empty flight recorder; its epoch (the zero of every slice) is now.
    pub fn new() -> Self {
        JournalRecorder {
            inner: ObsRecorder::new(),
            events: Mutex::new(Vec::new()),
            slices: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// The live deterministic aggregate (identical to an [`ObsRecorder`]'s).
    pub fn det_snapshot(&self) -> DetSnapshot {
        self.inner.det_snapshot()
    }

    /// The live wall-clock span aggregate (identical to an
    /// [`ObsRecorder`]'s).
    pub fn timing_snapshot(&self) -> TimingSnapshot {
        self.inner.timing_snapshot()
    }

    /// The deterministic event stream journaled so far.
    pub fn journal(&self) -> RunJournal {
        RunJournal {
            events: self.events.lock().expect("journal event lock").clone(),
        }
    }

    /// The wall-clock span slices collected so far, in completion order.
    pub fn slices(&self) -> Vec<SpanSlice> {
        self.slices.lock().expect("journal slice lock").clone()
    }
}

impl Recorder for JournalRecorder {
    fn add(&self, name: &'static str, delta: u64) {
        self.events
            .lock()
            .expect("journal event lock")
            .push(JournalEvent::Counter {
                name: name.to_string(),
                delta,
            });
        self.inner.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.events
            .lock()
            .expect("journal event lock")
            .push(JournalEvent::Observe {
                name: name.to_string(),
                value,
            });
        self.inner.observe(name, value);
    }

    fn observe_region(&self, name: &'static str, region: u32, value: u64) {
        self.events
            .lock()
            .expect("journal event lock")
            .push(JournalEvent::Region {
                name: name.to_string(),
                region,
                value,
            });
        self.inner.observe_region(name, region, value);
    }

    fn round_mark(&self, index: u64) {
        self.events
            .lock()
            .expect("journal event lock")
            .push(JournalEvent::Round { index });
    }

    fn span_ns(&self, name: &'static str, nanos: u64) {
        // Position the slice by its end (the only instant this callback
        // has): start = now - duration, both relative to the epoch.
        let end_us = self.epoch.elapsed().as_micros() as u64;
        let dur_us = nanos / 1_000;
        self.slices
            .lock()
            .expect("journal slice lock")
            .push(SpanSlice {
                name: name.to_string(),
                start_us: end_us.saturating_sub(dur_us),
                dur_us,
            });
        self.inner.span_ns(name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tsa_obs::ObsHandle;

    #[test]
    fn fold_reproduces_the_live_snapshot() {
        let rec = Arc::new(JournalRecorder::new());
        let obs = ObsHandle::new(rec.clone());
        obs.add("proto.sent", 10);
        obs.observe("proto.inbox", 3);
        obs.round_mark(0);
        obs.add("proto.sent", 7);
        obs.observe("proto.inbox", 0);
        obs.observe_region("proto.age", 2, 5);
        obs.round_mark(1);
        let folded = rec.journal().fold();
        assert_eq!(folded, rec.det_snapshot());
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&rec.det_snapshot()).unwrap()
        );
        assert_eq!(rec.journal().len(), 7);
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let journal = RunJournal {
            events: vec![
                JournalEvent::Round { index: 0 },
                JournalEvent::Counter {
                    name: "a".into(),
                    delta: 1,
                },
                JournalEvent::Observe {
                    name: "quoted \"name\"\nwith\\escapes".into(),
                    value: u64::MAX,
                },
                JournalEvent::Region {
                    name: "r".into(),
                    region: 7,
                    value: 0,
                },
            ],
        };
        let text = journal.to_jsonl();
        let back = RunJournal::from_jsonl(&text).unwrap();
        assert_eq!(back, journal);
        assert_eq!(back.to_jsonl(), text);
        // serde round-trip of the whole struct, too.
        let json = serde_json::to_string(&journal).unwrap();
        let back: RunJournal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, journal);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = RunJournal::from_jsonl("{\"Round\":{\"index\":0}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Empty lines are tolerated (trailing newline, blank separators).
        let ok = RunJournal::from_jsonl("\n{\"Round\":{\"index\":3}}\n\n").unwrap();
        assert_eq!(ok.events, vec![JournalEvent::Round { index: 3 }]);
    }

    #[test]
    fn spans_never_enter_the_deterministic_stream() {
        let rec = JournalRecorder::new();
        rec.span_ns("sim.deliver", 2_000_000);
        rec.span_ns("sim.compute", 500);
        assert!(rec.journal().is_empty());
        let slices = rec.slices();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].name, "sim.deliver");
        assert_eq!(slices[0].dur_us, 2_000);
        // Sub-microsecond spans round to zero duration but still appear.
        assert_eq!(slices[1].dur_us, 0);
        // And the timing aggregate matches an ObsRecorder's shape.
        assert_eq!(rec.timing_snapshot().spans.len(), 2);
        assert_eq!(rec.det_snapshot(), DetSnapshot::default());
    }

    #[test]
    fn fold_merges_like_the_recorder_merges() {
        // The same multiset of events through both recorders: fold output
        // must be byte-identical to the aggregate, bucket structure included.
        let rec = Arc::new(JournalRecorder::new());
        let obs = ObsHandle::new(rec.clone());
        for v in [0u64, 1, 1, 3, 1024, 1 << 40] {
            obs.observe("h", v);
            obs.observe_region("g", 1, v);
            obs.add("c", v);
        }
        assert_eq!(
            serde_json::to_string(&rec.journal().fold()).unwrap(),
            serde_json::to_string(&rec.det_snapshot()).unwrap()
        );
    }
}
