//! The `(a,b)`-late omniscient adversary's view of the network.
//!
//! Section 1.1 defines the adversary's knowledge: in round `t` it has *full
//! knowledge of the topology* (the communication graphs `G_0, …, G_{t-a}`) and
//! *complete knowledge* — internal states, random choices, message contents —
//! only up to round `t - b`. The engine enforces this by handing adversary
//! strategies a [`KnowledgeView`] whose accessors simply refuse to return
//! anything newer.

use std::collections::BTreeMap;

use crate::ids::{NodeId, Round};

/// The directed communication graph `G_t` of one round: an edge `(u, v)` means
/// `u` sent at least one message to `v` in round `t`.
#[derive(Clone, Debug, Default)]
pub struct CommGraph {
    /// The round this graph belongs to.
    pub round: Round,
    /// Directed edges, deduplicated and sorted by `(from, to)`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The nodes present in this round (the vertex set `V_t`).
    pub members: Vec<NodeId>,
}

impl CommGraph {
    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `node` (distinct receivers it contacted).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.edges.iter().filter(|(f, _)| *f == node).count()
    }

    /// In-degree of `node` (distinct senders that contacted it).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.edges.iter().filter(|(_, t)| *t == node).count()
    }

    /// All nodes that `node` contacted in this round.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == node)
            .map(|(_, t)| *t)
            .collect()
    }

    /// All nodes that contacted `node` in this round.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == node)
            .map(|(f, _)| *f)
            .collect()
    }
}

/// One archived round: the communication graph plus the state digests the
/// `b`-late part of the adversary may eventually read.
#[derive(Clone, Debug, Default)]
pub struct RoundRecord {
    /// The communication graph of the round.
    pub graph: CommGraph,
    /// Per-node state digests captured at the end of the round.
    pub digests: Vec<(NodeId, u64)>,
}

/// Per-member bookkeeping the adversary is always allowed to see (it controls
/// membership itself, so hiding it would be meaningless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberInfo {
    /// The round the node joined the network.
    pub joined_at: Round,
}

/// Lateness parameters `(a, b)` of the adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Lateness {
    /// Rounds after which the adversary learns the topology.
    pub topology: Round,
    /// Rounds after which the adversary learns states and message contents.
    pub state: Round,
}

impl Lateness {
    /// The paper's headline adversary: `(2, 2λ + 7)`-late.
    pub fn paper(lambda: u64) -> Self {
        Lateness {
            topology: 2,
            state: 2 * lambda + 7,
        }
    }

    /// A fully up-to-date adversary with respect to the topology (used by the
    /// Lemma 3 impossibility experiment).
    pub fn zero_late_topology() -> Self {
        Lateness {
            topology: 0,
            state: Round::MAX,
        }
    }

    /// An adversary that never learns anything beyond membership.
    pub fn oblivious() -> Self {
        Lateness {
            topology: Round::MAX,
            state: Round::MAX,
        }
    }
}

/// The lateness-filtered window onto the simulation given to adversary
/// strategies each round.
pub struct KnowledgeView<'a> {
    now: Round,
    lateness: Lateness,
    records: &'a [RoundRecord],
    members: &'a BTreeMap<NodeId, MemberInfo>,
    remaining_budget: usize,
    min_bootstrap_age: Round,
}

impl<'a> KnowledgeView<'a> {
    /// Constructs a view; used by the engine and by adversary unit tests.
    pub fn new(
        now: Round,
        lateness: Lateness,
        records: &'a [RoundRecord],
        members: &'a BTreeMap<NodeId, MemberInfo>,
        remaining_budget: usize,
        min_bootstrap_age: Round,
    ) -> Self {
        KnowledgeView {
            now,
            lateness,
            records,
            members,
            remaining_budget,
            min_bootstrap_age,
        }
    }

    /// The current round `t` (the round the adversary is about to act in).
    pub fn now(&self) -> Round {
        self.now
    }

    /// The adversary's lateness parameters.
    pub fn lateness(&self) -> Lateness {
        self.lateness
    }

    /// How many more churn events the engine will accept within the current
    /// rate window.
    pub fn remaining_budget(&self) -> usize {
        self.remaining_budget
    }

    /// Current members together with their join round.
    pub fn members(&self) -> impl Iterator<Item = (NodeId, MemberInfo)> + '_ {
        self.members.iter().map(|(id, info)| (*id, *info))
    }

    /// Number of nodes currently in the network.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// `true` if `node` is currently in the network.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains_key(&node)
    }

    /// The round `node` joined, if it is currently a member.
    pub fn joined_at(&self, node: NodeId) -> Option<Round> {
        self.members.get(&node).map(|m| m.joined_at)
    }

    /// Nodes eligible to serve as bootstrap nodes this round, i.e. nodes in
    /// `V_t ∩ V_{t - min_bootstrap_age}`.
    pub fn eligible_bootstraps(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|(_, info)| info.joined_at + self.min_bootstrap_age <= self.now)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The newest round whose topology the adversary may inspect, if any.
    pub fn newest_visible_topology_round(&self) -> Option<Round> {
        self.now.checked_sub(self.lateness.topology)
    }

    /// The communication graph `G_r`, available only if `r ≤ t - a`.
    pub fn topology_at(&self, round: Round) -> Option<&CommGraph> {
        let newest = self.newest_visible_topology_round()?;
        if round > newest {
            return None;
        }
        self.records
            .iter()
            .find(|rec| rec.graph.round == round)
            .map(|rec| &rec.graph)
    }

    /// The newest communication graph visible under the `a`-lateness, if any.
    pub fn latest_topology(&self) -> Option<&CommGraph> {
        let newest = self.newest_visible_topology_round()?;
        self.records
            .iter()
            .rev()
            .find(|rec| rec.graph.round <= newest)
            .map(|rec| &rec.graph)
    }

    /// All currently visible communication graphs, oldest first.
    pub fn visible_topologies(&self) -> Vec<&CommGraph> {
        match self.newest_visible_topology_round() {
            None => Vec::new(),
            Some(newest) => self
                .records
                .iter()
                .filter(|rec| rec.graph.round <= newest)
                .map(|rec| &rec.graph)
                .collect(),
        }
    }

    /// A node's state digest at `round`, available only if `round ≤ t - b`.
    pub fn state_digest_at(&self, round: Round, node: NodeId) -> Option<u64> {
        let newest = self.now.checked_sub(self.lateness.state)?;
        if round > newest {
            return None;
        }
        self.records
            .iter()
            .find(|rec| rec.graph.round == round)?
            .digests
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: Round, edges: Vec<(u64, u64)>) -> RoundRecord {
        RoundRecord {
            graph: CommGraph {
                round,
                edges: edges
                    .into_iter()
                    .map(|(a, b)| (NodeId(a), NodeId(b)))
                    .collect(),
                members: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            digests: vec![(NodeId(1), 111), (NodeId(2), 222)],
        }
    }

    fn members() -> BTreeMap<NodeId, MemberInfo> {
        let mut m = BTreeMap::new();
        m.insert(NodeId(1), MemberInfo { joined_at: 0 });
        m.insert(NodeId(2), MemberInfo { joined_at: 0 });
        m.insert(NodeId(3), MemberInfo { joined_at: 9 });
        m
    }

    #[test]
    fn comm_graph_degrees() {
        let g = record(0, vec![(1, 2), (1, 3), (2, 3)]).graph;
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(1)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.successors(NodeId(1)), vec![NodeId(2), NodeId(3)]);
        assert_eq!(g.predecessors(NodeId(2)), vec![NodeId(1)]);
    }

    #[test]
    fn two_late_adversary_cannot_see_recent_topology() {
        let recs = vec![
            record(7, vec![(1, 2)]),
            record(8, vec![(2, 3)]),
            record(9, vec![(3, 1)]),
        ];
        let m = members();
        let v = KnowledgeView::new(
            10,
            Lateness {
                topology: 2,
                state: 20,
            },
            &recs,
            &m,
            100,
            2,
        );
        assert!(v.topology_at(8).is_some());
        assert!(
            v.topology_at(9).is_none(),
            "round 9 is too recent for a 2-late adversary at t=10"
        );
        assert_eq!(v.latest_topology().unwrap().round, 8);
        assert_eq!(v.visible_topologies().len(), 2);
    }

    #[test]
    fn oblivious_adversary_sees_no_topology() {
        let recs = vec![record(0, vec![(1, 2)])];
        let m = members();
        let v = KnowledgeView::new(5, Lateness::oblivious(), &recs, &m, 10, 2);
        assert!(v.latest_topology().is_none());
        assert!(v.visible_topologies().is_empty());
        assert!(v.topology_at(0).is_none());
    }

    #[test]
    fn state_digests_respect_b_lateness() {
        let recs = vec![record(1, vec![]), record(5, vec![])];
        let m = members();
        let v = KnowledgeView::new(
            10,
            Lateness {
                topology: 0,
                state: 6,
            },
            &recs,
            &m,
            10,
            2,
        );
        assert_eq!(v.state_digest_at(1, NodeId(1)), Some(111));
        assert_eq!(
            v.state_digest_at(5, NodeId(1)),
            None,
            "round 5 is newer than t-b=4"
        );
    }

    #[test]
    fn eligible_bootstraps_require_min_age() {
        let recs = Vec::new();
        let m = members();
        let v = KnowledgeView::new(10, Lateness::paper(4), &recs, &m, 10, 2);
        let eligible = v.eligible_bootstraps();
        assert!(eligible.contains(&NodeId(1)));
        assert!(eligible.contains(&NodeId(2)));
        assert!(
            !eligible.contains(&NodeId(3)),
            "node 3 joined at round 9, too fresh at round 10"
        );
    }

    #[test]
    fn membership_queries() {
        let recs = Vec::new();
        let m = members();
        let v = KnowledgeView::new(10, Lateness::paper(4), &recs, &m, 3, 2);
        assert_eq!(v.member_count(), 3);
        assert!(v.contains(NodeId(2)));
        assert!(!v.contains(NodeId(7)));
        assert_eq!(v.joined_at(NodeId(3)), Some(9));
        assert_eq!(v.remaining_budget(), 3);
        assert_eq!(v.members().count(), 3);
    }

    #[test]
    fn paper_lateness_values() {
        let l = Lateness::paper(5);
        assert_eq!(l.topology, 2);
        assert_eq!(l.state, 17);
        assert_eq!(Lateness::zero_late_topology().topology, 0);
    }
}
