//! The round-synchronous simulation engine.
//!
//! The engine realizes the model of Section 1.1 exactly:
//!
//! * time proceeds in synchronous rounds;
//! * at the beginning of round `t` the adversary removes `O_t ⊂ V_{t-1}` (those
//!   nodes receive none of this round's messages) and proposes joins `J_t`,
//!   each via a bootstrap node that has been in the network for at least
//!   `min_bootstrap_age` rounds;
//! * every surviving node then receives all messages addressed to it that were
//!   sent in round `t - 1`, computes, and sends messages that arrive in `t+1`;
//! * the communication graph `G_t` (who messaged whom) is archived and exposed
//!   to the adversary with lateness `a`, node-state digests with lateness `b`.

use std::collections::{BTreeMap, HashMap};

use rayon::prelude::*;

use crate::adversary::Adversary;
use crate::churn::{ChurnBudget, ChurnOutcome, ChurnPlan};
use crate::config::SimConfig;
use crate::ids::{NodeId, Round};
use crate::knowledge::{CommGraph, KnowledgeView, MemberInfo, RoundRecord};
use crate::message::Envelope;
use crate::metrics::{MetricsHistory, RoundMetricsBuilder};
use crate::node::{Ctx, Process};

/// A node in the engine: its protocol state plus bookkeeping.
struct NodeSlot<P> {
    process: P,
    joined_at: Round,
}

/// Creates the protocol state for a node that joins the network.
///
/// The factory receives the new node's identifier and the round it joins in.
/// It must not embed any knowledge of other nodes (a joining node knows
/// nothing until somebody messages it); protocol-level configuration is fine.
pub type NodeFactory<P> = Box<dyn Fn(NodeId, Round) -> P + Send>;

/// The round-synchronous simulator.
pub struct Simulator<P: Process, A: Adversary> {
    config: SimConfig,
    adversary: A,
    factory: NodeFactory<P>,
    nodes: BTreeMap<NodeId, NodeSlot<P>>,
    members: BTreeMap<NodeId, MemberInfo>,
    in_flight: Vec<Envelope<P::Msg>>,
    records: Vec<RoundRecord>,
    metrics: MetricsHistory,
    budget: ChurnBudget,
    round: Round,
    next_id: u64,
    last_outcome: ChurnOutcome,
}

impl<P: Process, A: Adversary> Simulator<P, A> {
    /// Creates an empty simulator. Populate the initial node set `V_0` with
    /// [`Simulator::seed_nodes`] before stepping.
    pub fn new(config: SimConfig, adversary: A, factory: NodeFactory<P>) -> Self {
        Simulator {
            config,
            adversary,
            factory,
            nodes: BTreeMap::new(),
            members: BTreeMap::new(),
            in_flight: Vec::new(),
            records: Vec::new(),
            metrics: MetricsHistory::new(),
            budget: ChurnBudget::new(),
            round: 0,
            next_id: 0,
            last_outcome: ChurnOutcome::default(),
        }
    }

    /// Creates `count` initial nodes (the churn-free initial set `V_0`).
    /// Returns their identifiers.
    pub fn seed_nodes(&mut self, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(self.spawn_node(self.round));
        }
        ids
    }

    fn spawn_node(&mut self, round: Round) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let process = (self.factory)(id, round);
        self.nodes.insert(
            id,
            NodeSlot {
                process,
                joined_at: round,
            },
        );
        self.members.insert(id, MemberInfo { joined_at: round });
        id
    }

    /// The current round (the next round to be executed).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Identifiers of all current members, in ascending order.
    pub fn member_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// The round a current member joined, if it exists.
    pub fn joined_at(&self, id: NodeId) -> Option<Round> {
        self.members.get(&id).map(|m| m.joined_at)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(&id).map(|s| &s.process)
    }

    /// Mutable access to a node's protocol state (tests and harnesses only).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(&id).map(|s| &mut s.process)
    }

    /// Iterates over `(id, protocol state)` pairs of all current members.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes.iter().map(|(id, s)| (*id, &s.process))
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &MetricsHistory {
        &self.metrics
    }

    /// Archived round records (communication graphs and digests).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The communication graph of `round`, if still archived.
    pub fn comm_graph_at(&self, round: Round) -> Option<&CommGraph> {
        self.records
            .iter()
            .find(|r| r.graph.round == round)
            .map(|r| &r.graph)
    }

    /// The churn outcome of the most recently executed round.
    pub fn last_churn_outcome(&self) -> &ChurnOutcome {
        &self.last_outcome
    }

    /// Number of messages currently in flight (sent last round, not yet
    /// delivered).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes a single round.
    pub fn step(&mut self) {
        let t = self.round;
        let mut mb = RoundMetricsBuilder::new(t);

        // Phase 1: adversarial churn (suppressed during the bootstrap phase).
        let outcome = if t < self.config.churn_rules.bootstrap_rounds {
            ChurnOutcome::default()
        } else {
            let remaining = self.budget.remaining(t, &self.config.churn_rules);
            let plan = {
                let view = KnowledgeView::new(
                    t,
                    self.config.lateness,
                    &self.records,
                    &self.members,
                    remaining,
                    self.config.churn_rules.min_bootstrap_age,
                );
                self.adversary.plan(t, &view)
            };
            self.apply_plan(t, plan)
        };
        mb.record_churn(outcome.departed.len(), outcome.joined.len());

        // Phase 2: deliver messages sent in round t-1 to surviving receivers.
        let mut inboxes: HashMap<NodeId, Vec<Envelope<P::Msg>>> = HashMap::new();
        let mut dropped = 0usize;
        for env in self.in_flight.drain(..) {
            if self.nodes.contains_key(&env.to) {
                inboxes.entry(env.to).or_default().push(env);
            } else {
                dropped += 1;
            }
        }
        mb.record_dropped(dropped);

        // Sponsored joiners, grouped by bootstrap node.
        let mut sponsored: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (new_id, bootstrap) in &outcome.joined {
            sponsored.entry(*bootstrap).or_default().push(*new_id);
        }
        let empty_sponsored: Vec<NodeId> = Vec::new();
        let empty_inbox: Vec<Envelope<P::Msg>> = Vec::new();

        mb.record_node_count(self.nodes.len());

        // Phase 3: compute. Every node steps exactly once; its RNG stream
        // depends only on (seed, id, round), so parallel and sequential
        // execution produce identical results.
        let seed = self.config.seed;
        let hash_seed = self.config.hash_seed;
        let record_digests = self.config.record_digests;

        let mut work: Vec<(NodeId, Round, &mut P)> = self
            .nodes
            .iter_mut()
            .map(|(id, slot)| (*id, slot.joined_at, &mut slot.process))
            .collect();

        let step_one = |(id, joined_at, process): &mut (NodeId, Round, &mut P)| {
            let inbox = inboxes.get(id).unwrap_or(&empty_inbox);
            let spons = sponsored.get(id).unwrap_or(&empty_sponsored);
            let mut ctx: Ctx<'_, P::Msg> = Ctx::new(*id, t, *joined_at, spons, seed, hash_seed);
            process.on_round(&mut ctx, inbox);
            let digest = if record_digests {
                process.state_digest()
            } else {
                0
            };
            let out = ctx.into_outbox().into_inner();
            (*id, out, digest, inbox.len())
        };

        // (node, outbox, state digest, messages received) of one stepped node.
        type StepResult<M> = (NodeId, Vec<(NodeId, M)>, u64, usize);
        let results: Vec<StepResult<P::Msg>> = if self.config.parallel {
            work.par_iter_mut().map(step_one).collect()
        } else {
            work.iter_mut().map(step_one).collect()
        };
        drop(work);

        // Phase 4: collect outboxes into next round's in-flight set, record the
        // communication graph and per-node metrics.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut digests: Vec<(NodeId, u64)> = Vec::new();
        for (id, out, digest, received) in results {
            mb.record_received(id, received);
            let mut distinct: Vec<NodeId> = out.iter().map(|(to, _)| *to).collect();
            distinct.sort_unstable();
            distinct.dedup();
            mb.record_sent(id, out.len(), distinct.len());
            for to in &distinct {
                edges.push((id, *to));
            }
            if record_digests {
                digests.push((id, digest));
            }
            for (to, payload) in out {
                self.in_flight.push(Envelope::new(id, to, t, payload));
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let graph = CommGraph {
            round: t,
            edges,
            members: self.nodes.keys().copied().collect(),
        };
        self.records.push(RoundRecord { graph, digests });
        if let Some(window) = self.config.history_window {
            if self.records.len() > window {
                let excess = self.records.len() - window;
                self.records.drain(..excess);
            }
        }

        self.metrics.push(mb.finish());
        self.last_outcome = outcome;
        self.round += 1;
    }

    /// Validates and applies a churn plan, honouring budget and join rules.
    fn apply_plan(&mut self, t: Round, plan: ChurnPlan) -> ChurnOutcome {
        let rules = self.config.churn_rules;
        let mut outcome = ChurnOutcome::default();
        let mut remaining = self.budget.remaining(t, &rules);

        // Departures first (the paper's O_t).
        let mut seen: Vec<NodeId> = Vec::new();
        for id in plan.departures {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            if remaining == 0 || !self.nodes.contains_key(&id) {
                outcome.rejected_departures.push(id);
                continue;
            }
            self.nodes.remove(&id);
            self.members.remove(&id);
            outcome.departed.push(id);
            remaining = remaining.saturating_sub(1);
        }

        // Joins (the paper's J_t), each via an eligible bootstrap node.
        let mut per_bootstrap: HashMap<NodeId, usize> = HashMap::new();
        for join in plan.joins {
            let eligible = self
                .members
                .get(&join.bootstrap)
                .map(|m| m.joined_at + rules.min_bootstrap_age <= t)
                .unwrap_or(false);
            let fanin = per_bootstrap.entry(join.bootstrap).or_insert(0);
            if remaining == 0 || !eligible || *fanin >= rules.max_joins_per_bootstrap {
                outcome.rejected_joins.push(join);
                continue;
            }
            *fanin += 1;
            let id = self.spawn_node(t);
            outcome.joined.push((id, join.bootstrap));
            remaining = remaining.saturating_sub(1);
        }

        self.budget.record(t, outcome.events());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::churn::{ChurnRules, JoinPlan};
    use crate::knowledge::Lateness;

    /// A protocol where every node floods a counter to the two numerically
    /// adjacent identifiers each round.
    #[derive(Default)]
    struct Ping {
        heard: Vec<u64>,
    }

    impl Process for Ping {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.heard.push(env.payload);
            }
            let me = ctx.id().raw();
            let round = ctx.round();
            ctx.send(NodeId(me.wrapping_add(1)), round);
            if me > 0 {
                ctx.send(NodeId(me - 1), round);
            }
        }
        fn state_digest(&self) -> u64 {
            self.heard.len() as u64
        }
    }

    fn sim(parallel: bool) -> Simulator<Ping, NullAdversary> {
        let config = SimConfig::default().with_seed(1).with_parallel(parallel);
        Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()))
    }

    #[test]
    fn messages_take_exactly_one_round() {
        let mut s = sim(false);
        s.seed_nodes(4);
        s.step();
        // Round 0: everyone sent, nobody received yet.
        assert_eq!(s.metrics().rounds()[0].messages_delivered, 0);
        assert!(s.in_flight_count() > 0);
        s.step();
        assert!(s.metrics().rounds()[1].messages_delivered > 0);
        // Node 1 heard from node 0 and node 2.
        assert_eq!(s.node(NodeId(1)).unwrap().heard.len(), 2);
    }

    #[test]
    fn sequential_and_parallel_runs_are_identical() {
        let mut a = sim(false);
        let mut b = sim(true);
        a.seed_nodes(16);
        b.seed_nodes(16);
        a.run(6);
        b.run(6);
        for id in a.member_ids() {
            assert_eq!(
                a.node(id).unwrap().heard,
                b.node(id).unwrap().heard,
                "divergence at {id}"
            );
        }
        assert_eq!(a.metrics().total_messages(), b.metrics().total_messages());
    }

    #[test]
    fn comm_graph_records_edges() {
        let mut s = sim(false);
        s.seed_nodes(3);
        s.step();
        let g = s.comm_graph_at(0).unwrap();
        assert!(g.edges.contains(&(NodeId(0), NodeId(1))));
        assert!(g.edges.contains(&(NodeId(1), NodeId(0))));
        assert_eq!(g.members.len(), 3);
    }

    struct OneShotChurn;
    impl Adversary for OneShotChurn {
        fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
            if round == 2 {
                // Pick a bootstrap node that is not the one we churn out.
                let bootstrap = *view.eligible_bootstraps().last().unwrap();
                ChurnPlan {
                    departures: vec![NodeId(0)],
                    joins: vec![JoinPlan { bootstrap }],
                }
            } else {
                ChurnPlan::none()
            }
        }
    }

    #[test]
    fn churn_removes_and_adds_nodes() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(4);
        s.run(3);
        assert!(!s.member_ids().contains(&NodeId(0)), "node 0 departed");
        assert_eq!(s.node_count(), 4, "one left, one joined");
        let outcome = s.last_churn_outcome();
        assert_eq!(outcome.departed, vec![NodeId(0)]);
        assert_eq!(outcome.joined.len(), 1);
        assert!(s.joined_at(outcome.joined[0].0) == Some(2));
    }

    #[test]
    fn departed_nodes_do_not_receive_messages() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(4);
        s.run(4);
        // Messages addressed to node 0 in round 1 were dropped in round 2.
        assert!(s.metrics().rounds()[2].messages_dropped > 0);
    }

    struct GreedyChurn;
    impl Adversary for GreedyChurn {
        fn plan(&mut self, _round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
            // Try to delete every node, every round.
            ChurnPlan {
                departures: view.members().map(|(id, _)| id).collect(),
                joins: Vec::new(),
            }
        }
    }

    #[test]
    fn engine_enforces_churn_budget() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(2),
            window: 100,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, GreedyChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(10);
        s.run(5);
        assert_eq!(s.node_count(), 8, "only 2 departures fit the budget");
        assert!(s.last_churn_outcome().had_rejections());
    }

    struct FreshBootstrapChurn;
    impl Adversary for FreshBootstrapChurn {
        fn plan(&mut self, round: Round, _view: &KnowledgeView<'_>) -> ChurnPlan {
            if round == 1 {
                // Node 0 joined at round 0, so at round 1 it is too fresh to
                // bootstrap anyone (min age 2).
                ChurnPlan {
                    departures: vec![],
                    joins: vec![JoinPlan {
                        bootstrap: NodeId(0),
                    }],
                }
            } else {
                ChurnPlan::none()
            }
        }
    }

    #[test]
    fn engine_enforces_bootstrap_age() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(100),
            window: 10,
            min_bootstrap_age: 2,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(
            config,
            FreshBootstrapChurn,
            Box::new(|_, _| Ping::default()),
        );
        s.seed_nodes(2);
        s.run(2);
        assert_eq!(s.node_count(), 2, "join via too-fresh bootstrap rejected");
        assert_eq!(s.last_churn_outcome().rejected_joins.len(), 1);
    }

    #[test]
    fn bootstrap_phase_suppresses_churn() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(100),
            window: 10,
            bootstrap_rounds: 3,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, GreedyChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(5);
        s.run(3);
        assert_eq!(s.node_count(), 5, "no churn during the bootstrap phase");
        s.step();
        assert!(
            s.node_count() < 5,
            "churn resumes after the bootstrap phase"
        );
    }

    #[test]
    fn history_window_trims_records() {
        let config = SimConfig::default().with_history_window(3);
        let mut s = Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
        s.seed_nodes(2);
        s.run(10);
        assert_eq!(s.records().len(), 3);
        assert_eq!(s.records()[0].graph.round, 7);
    }

    #[test]
    fn sponsored_nodes_are_visible_to_their_bootstrap() {
        // Protocol that records sponsorships.
        #[derive(Default)]
        struct Sponsor {
            sponsored: Vec<NodeId>,
        }
        impl Process for Sponsor {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
                self.sponsored.extend_from_slice(ctx.sponsored());
            }
        }
        struct JoinOnce;
        impl Adversary for JoinOnce {
            fn plan(&mut self, round: Round, _v: &KnowledgeView<'_>) -> ChurnPlan {
                if round == 3 {
                    ChurnPlan {
                        departures: vec![],
                        joins: vec![JoinPlan {
                            bootstrap: NodeId(0),
                        }],
                    }
                } else {
                    ChurnPlan::none()
                }
            }
        }
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 10,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, JoinOnce, Box::new(|_, _| Sponsor::default()));
        s.seed_nodes(2);
        s.run(4);
        assert_eq!(s.node(NodeId(0)).unwrap().sponsored.len(), 1);
        assert!(s.node(NodeId(1)).unwrap().sponsored.is_empty());
    }

    #[test]
    fn lateness_config_is_respected_end_to_end() {
        // An adversary that asserts it cannot see the most recent topology.
        struct Checker;
        impl Adversary for Checker {
            fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
                if round >= 3 {
                    assert!(view.topology_at(round - 1).is_none());
                    assert!(view.topology_at(round - 2).is_some());
                }
                ChurnPlan::none()
            }
        }
        let config = SimConfig::default().with_lateness(Lateness {
            topology: 2,
            state: 50,
        });
        let mut s = Simulator::new(config, Checker, Box::new(|_, _| Ping::default()));
        s.seed_nodes(3);
        s.run(6);
    }
}
