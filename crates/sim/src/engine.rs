//! The round-synchronous simulation engine.
//!
//! The engine realizes the model of Section 1.1 exactly:
//!
//! * time proceeds in synchronous rounds;
//! * at the beginning of round `t` the adversary removes `O_t ⊂ V_{t-1}` (those
//!   nodes receive none of this round's messages) and proposes joins `J_t`,
//!   each via a bootstrap node that has been in the network for at least
//!   `min_bootstrap_age` rounds;
//! * every surviving node then receives all messages addressed to it that were
//!   sent in round `t - 1`, computes, and sends messages that arrive in `t+1`;
//! * the communication graph `G_t` (who messaged whom) is archived and exposed
//!   to the adversary with lateness `a`, node-state digests with lateness `b`.
//!
//! # Hot-path design
//!
//! The round loop is engineered to perform **no steady-state heap
//! allocation** and to run its compute phase **in parallel** without changing
//! a single output bit (see the "Performance model" chapter of DESIGN.md):
//!
//! * node slots live in a `Vec` sorted by identifier (identifiers are
//!   assigned monotonically, so joins append in order and the sort is free);
//! * message delivery groups the in-flight buffer by receiver with a stable
//!   counting scatter (count → prefix-sum → move into the second buffer) and
//!   hands every node a contiguous *slice* of it — no per-node inbox vectors
//!   and no sort scratch;
//! * every node owns a reusable outbox buffer that is re-wrapped via
//!   [`Outbox::from_vec`](crate::Outbox::from_vec) each round; departing
//!   nodes donate their buffers to a spare pool that joining nodes draw from;
//! * the in-flight queue is double-buffered: next-round messages are drained
//!   into the second buffer and the two are swapped;
//! * round records (communication graphs, digests) trimmed out of a bounded
//!   history window are recycled as the scratch for new rounds;
//! * the compute phase runs on [`rayon::for_each_index_mut`], a work-stealing
//!   loop at node granularity whose worker count follows the
//!   `TSA_THREADS` / [`rayon::with_thread_cap`] budget, so sweep workers and
//!   the simulator never multiply into `workers × cores` threads. Per-node
//!   RNG streams depend only on `(seed, node, round)`, which makes parallel
//!   and sequential execution bit-for-bit identical.

use std::collections::BTreeMap;

use tsa_obs::ObsHandle;

use crate::adversary::Adversary;
use crate::churn::{apply_churn_plan, ChurnBudget, ChurnOutcome, ChurnPlan, PlanScratch};
use crate::config::SimConfig;
use crate::ids::{NodeId, Round};
use crate::knowledge::{CommGraph, KnowledgeView, MemberInfo, RoundRecord};
use crate::message::Envelope;
use crate::metrics::{
    record_round_obs, MetricsHistory, MetricsMode, MetricsSummary, RoundMetrics,
    RoundMetricsBuilder, StreamingMetrics,
};
use crate::node::{run_activation, ProtocolStep};

/// A node in the engine: its protocol state plus per-round scratch that is
/// reused across rounds (outbox buffer, inbox/sponsorship ranges, digest).
struct NodeSlot<P: ProtocolStep> {
    id: NodeId,
    joined_at: Round,
    process: P,
    /// Reusable outbox buffer; drained into the in-flight queue each round.
    out: Vec<(NodeId, P::Msg)>,
    /// State digest captured at the end of the last compute phase.
    digest: u64,
    /// This round's inbox: `in_flight[inbox_start..inbox_start + inbox_len]`.
    inbox_start: usize,
    inbox_len: usize,
    /// This round's sponsorships: a range of `sponsored_ids`.
    sponsored_start: usize,
    sponsored_len: usize,
}

/// Creates the protocol state for a node that joins the network.
///
/// The factory receives the new node's identifier and the round it joins in.
/// It must not embed any knowledge of other nodes (a joining node knows
/// nothing until somebody messages it); protocol-level configuration is fine.
pub type NodeFactory<P> = Box<dyn Fn(NodeId, Round) -> P + Send>;

/// The round-synchronous simulator.
///
/// The simulator is one of two *scheduler policies* over the same
/// transport-agnostic node logic (any [`ProtocolStep`]): it activates every
/// node once per round with the messages sent to it one round earlier. The
/// virtual-time event engine of `tsa-event` schedules the identical protocol
/// step under per-message latency instead.
pub struct Simulator<P: ProtocolStep, A: Adversary> {
    config: SimConfig,
    adversary: A,
    factory: NodeFactory<P>,
    /// Node slots, sorted by identifier (the append-only id sequence keeps
    /// joins in order; departures preserve order).
    slots: Vec<NodeSlot<P>>,
    members: BTreeMap<NodeId, MemberInfo>,
    /// Messages sent last round, not yet delivered (sorted by receiver during
    /// the delivery phase of the next step).
    in_flight: Vec<Envelope<P::Msg>>,
    /// Double buffer: next round's in-flight set is drained into this vector
    /// and the two buffers are swapped at the end of the step.
    next_in_flight: Vec<Envelope<P::Msg>>,
    /// Scratch: `(bootstrap, joiner)` pairs of the current round, sorted by
    /// bootstrap node.
    sponsored_pairs: Vec<(NodeId, NodeId)>,
    /// Scratch: joiner ids grouped contiguously per bootstrap node; slots
    /// reference ranges of this vector.
    sponsored_ids: Vec<NodeId>,
    /// Outbox buffers donated by departed nodes, reused by joining nodes.
    spare_outboxes: Vec<Vec<(NodeId, P::Msg)>>,
    /// Scratch: each in-flight envelope's receiver slot index (or the drop
    /// sentinel), computed during the delivery scatter.
    route_slots: Vec<usize>,
    /// Scratch: per-slot write cursors of the delivery scatter.
    route_cursors: Vec<usize>,
    /// Scratch for per-node distinct-receiver computation.
    dedup_scratch: Vec<NodeId>,
    /// Scratch for churn-plan validation (departure dedup, join fan-in).
    plan_scratch: PlanScratch,
    /// Round records trimmed out of the history window, recycled as scratch.
    spare_records: Vec<RoundRecord>,
    records: Vec<RoundRecord>,
    metrics: MetricsHistory,
    /// When set, finished rounds fold into these O(1) accumulators instead
    /// of growing the history ([`MetricsMode::Streaming`]).
    streaming: Option<StreamingMetrics>,
    /// Observability sink; [`ObsHandle::off`] by default, so the round loop
    /// pays one branch per probe and nothing else.
    obs: ObsHandle,
    budget: ChurnBudget,
    round: Round,
    next_id: u64,
    last_outcome: ChurnOutcome,
}

impl<P: ProtocolStep, A: Adversary> Simulator<P, A> {
    /// Creates an empty simulator. Populate the initial node set `V_0` with
    /// [`Simulator::seed_nodes`] before stepping.
    pub fn new(config: SimConfig, adversary: A, factory: NodeFactory<P>) -> Self {
        Simulator {
            config,
            adversary,
            factory,
            slots: Vec::new(),
            members: BTreeMap::new(),
            in_flight: Vec::new(),
            next_in_flight: Vec::new(),
            sponsored_pairs: Vec::new(),
            sponsored_ids: Vec::new(),
            spare_outboxes: Vec::new(),
            route_slots: Vec::new(),
            route_cursors: Vec::new(),
            dedup_scratch: Vec::new(),
            plan_scratch: PlanScratch::default(),
            spare_records: Vec::new(),
            records: Vec::new(),
            metrics: MetricsHistory::new(),
            streaming: None,
            obs: ObsHandle::off(),
            budget: ChurnBudget::new(),
            round: 0,
            next_id: 0,
            last_outcome: ChurnOutcome::default(),
        }
    }

    /// Creates `count` initial nodes (the churn-free initial set `V_0`).
    /// Returns their identifiers.
    pub fn seed_nodes(&mut self, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        self.slots.reserve(count);
        for _ in 0..count {
            ids.push(self.spawn_node(self.round));
        }
        ids
    }

    fn spawn_node(&mut self, round: Round) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.members.insert(id, MemberInfo { joined_at: round });
        self.spawn_slot(id, round);
        id
    }

    /// Materializes the engine-side slot (process + scratch) for a node that
    /// is already a member — the engine half of a join applied by
    /// [`apply_churn_plan`].
    fn spawn_slot(&mut self, id: NodeId, round: Round) {
        let process = (self.factory)(id, round);
        let out = self.spare_outboxes.pop().unwrap_or_default();
        self.slots.push(NodeSlot {
            id,
            joined_at: round,
            process,
            out,
            digest: 0,
            inbox_start: 0,
            inbox_len: 0,
            sponsored_start: 0,
            sponsored_len: 0,
        });
    }

    /// The slot index of `id`, if it is a current member.
    fn slot_index(&self, id: NodeId) -> Option<usize> {
        self.slots.binary_search_by_key(&id, |s| s.id).ok()
    }

    /// The current round (the next round to be executed).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Identifiers of all current members, in ascending order.
    pub fn member_ids(&self) -> Vec<NodeId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// The round a current member joined, if it exists.
    pub fn joined_at(&self, id: NodeId) -> Option<Round> {
        self.members.get(&id).map(|m| m.joined_at)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slot_index(id).map(|i| &self.slots[i].process)
    }

    /// Mutable access to a node's protocol state (tests and harnesses only).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.slot_index(id).map(|i| &mut self.slots[i].process)
    }

    /// Iterates over `(id, protocol state)` pairs of all current members.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.slots.iter().map(|s| (s.id, &s.process))
    }

    /// Metrics collected so far. Empty under [`MetricsMode::Streaming`] —
    /// use [`metrics_summary`](Self::metrics_summary) /
    /// [`last_metrics`](Self::last_metrics) for mode-independent access.
    pub fn metrics(&self) -> &MetricsHistory {
        &self.metrics
    }

    /// Attaches an observability sink (or detaches it with
    /// [`ObsHandle::off`]). Safe to call at any point; recording starts with
    /// the next round.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Selects how finished rounds are retained. Call before running:
    /// switching to `Streaming` starts fresh accumulators and leaves any
    /// already-recorded history rows where they are.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.streaming = match mode {
            MetricsMode::Full => None,
            MetricsMode::Streaming => Some(StreamingMetrics::new()),
        };
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        match &self.streaming {
            Some(s) => s.summary(),
            None => self.metrics.summary(),
        }
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        match &self.streaming {
            Some(s) => s.last(),
            None => self.metrics.last(),
        }
    }

    /// The streaming accumulators, when running under
    /// [`MetricsMode::Streaming`].
    pub fn streaming_metrics(&self) -> Option<&StreamingMetrics> {
        self.streaming.as_ref()
    }

    /// Archived round records (communication graphs and digests).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The communication graph of `round`, if still archived.
    pub fn comm_graph_at(&self, round: Round) -> Option<&CommGraph> {
        self.records
            .iter()
            .find(|r| r.graph.round == round)
            .map(|r| &r.graph)
    }

    /// The churn outcome of the most recently executed round.
    pub fn last_churn_outcome(&self) -> &ChurnOutcome {
        &self.last_outcome
    }

    /// Number of messages currently in flight (sent last round, not yet
    /// delivered).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        if self.streaming.is_none() {
            self.metrics.reserve(rounds as usize);
        }
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes a single round.
    pub fn step(&mut self) {
        let t = self.round;
        let mut mb = RoundMetricsBuilder::new(t);

        // Phase 1: adversarial churn (suppressed during the bootstrap phase).
        // The previous round's outcome buffers are recycled.
        let span = self.obs.span_start();
        let mut outcome = std::mem::take(&mut self.last_outcome);
        outcome.departed.clear();
        outcome.joined.clear();
        outcome.rejected_departures.clear();
        outcome.rejected_joins.clear();
        if t >= self.config.churn_rules.bootstrap_rounds {
            let remaining = self.budget.remaining(t, &self.config.churn_rules);
            let plan = {
                let view = KnowledgeView::new(
                    t,
                    self.config.lateness,
                    &self.records,
                    &self.members,
                    remaining,
                    self.config.churn_rules.min_bootstrap_age,
                );
                self.adversary.plan(t, &view)
            };
            self.apply_plan(t, plan, &mut outcome);
        }
        mb.record_churn(outcome.departed.len(), outcome.joined.len());
        self.obs.span_end("sim.churn", span);

        // Phase 2: deliver messages sent in round t-1 to surviving receivers,
        // as a stable counting scatter: locate each envelope's receiver slot
        // (binary search), prefix-sum the counts into per-slot ranges, then
        // move every delivered envelope into its range in the second buffer
        // and swap. Each node's inbox is then one contiguous slice, grouped
        // in slot (= id) order with sender order preserved within each group
        // — exactly what a stable sort by receiver would produce, but with
        // no sort scratch: a `sort_by_key` here would heap-allocate its
        // merge buffer every round.
        let span = self.obs.span_start();
        for slot in self.slots.iter_mut() {
            slot.inbox_start = 0;
            slot.inbox_len = 0;
            slot.sponsored_start = 0;
            slot.sponsored_len = 0;
        }
        let mut dropped = 0usize;
        const DROP: usize = usize::MAX;
        self.route_slots.clear();
        for env in self.in_flight.iter() {
            match self.slots.binary_search_by_key(&env.to, |s| s.id) {
                Ok(idx) => {
                    self.slots[idx].inbox_len += 1;
                    self.route_slots.push(idx);
                }
                Err(_) => {
                    dropped += 1;
                    self.route_slots.push(DROP);
                }
            }
        }
        let mut delivered = 0usize;
        self.route_cursors.clear();
        for slot in self.slots.iter_mut() {
            slot.inbox_start = delivered;
            self.route_cursors.push(delivered);
            delivered += slot.inbox_len;
        }
        self.next_in_flight.clear();
        self.next_in_flight.reserve(delivered);
        {
            let spare = self.next_in_flight.spare_capacity_mut();
            for (env, &slot_idx) in self.in_flight.drain(..).zip(self.route_slots.iter()) {
                if slot_idx == DROP {
                    continue; // receiver departed before delivery
                }
                let cursor = &mut self.route_cursors[slot_idx];
                spare[*cursor].write(env);
                *cursor += 1;
            }
        }
        // SAFETY: the prefix sums partition 0..delivered into disjoint
        // per-slot ranges; every non-dropped envelope was written through
        // exactly one cursor, and each cursor advanced exactly `inbox_len`
        // times within its slot's range — so all `delivered` spare elements
        // are initialized.
        unsafe {
            self.next_in_flight.set_len(delivered);
        }
        std::mem::swap(&mut self.in_flight, &mut self.next_in_flight);
        mb.record_dropped(dropped);

        // Sponsored joiners, grouped contiguously by bootstrap node (the
        // stable sort keeps joiners in join order within each bootstrap).
        self.sponsored_pairs.clear();
        self.sponsored_pairs.extend(
            outcome
                .joined
                .iter()
                .map(|&(joiner, bootstrap)| (bootstrap, joiner)),
        );
        self.sponsored_pairs
            .sort_by_key(|&(bootstrap, _)| bootstrap);
        self.sponsored_ids.clear();
        self.sponsored_ids
            .extend(self.sponsored_pairs.iter().map(|&(_, joiner)| joiner));
        {
            let mut s = 0usize;
            let mut k = 0usize;
            while k < self.sponsored_pairs.len() {
                let bootstrap = self.sponsored_pairs[k].0;
                let run_start = k;
                while k < self.sponsored_pairs.len() && self.sponsored_pairs[k].0 == bootstrap {
                    k += 1;
                }
                while s < self.slots.len() && self.slots[s].id < bootstrap {
                    s += 1;
                }
                if s < self.slots.len() && self.slots[s].id == bootstrap {
                    self.slots[s].sponsored_start = run_start;
                    self.slots[s].sponsored_len = k - run_start;
                }
            }
        }

        mb.record_node_count(self.slots.len());
        self.obs.span_end("sim.deliver", span);

        // Phase 3: compute. Every node steps exactly once; its RNG stream
        // depends only on (seed, id, round), so parallel and sequential
        // execution produce identical results. Work is stolen at node
        // granularity; the worker count honours the TSA_THREADS /
        // with_thread_cap budget so nested parallelism (e.g. under a sweep
        // worker) stays within the machine. Tiny rounds run serially no
        // matter the budget: the scoped workers cost tens of microseconds to
        // spawn and join, which would dominate a round with little to do
        // (the budget can change wall-clock only, never an output bit, so
        // this gate is free to be a heuristic).
        const PARALLEL_WORK_THRESHOLD: usize = 2048;
        let seed = self.config.seed;
        let hash_seed = self.config.hash_seed;
        let record_digests = self.config.record_digests;
        let work_items = self.slots.len().max(self.in_flight.len());
        let threads = if self.config.parallel && work_items >= PARALLEL_WORK_THRESHOLD {
            rayon::current_num_threads()
        } else {
            1
        };
        let span = self.obs.span_start();
        {
            let in_flight = &self.in_flight;
            let sponsored_ids = &self.sponsored_ids;
            rayon::for_each_index_mut(&mut self.slots, threads, |_, slot| {
                let inbox = &in_flight[slot.inbox_start..slot.inbox_start + slot.inbox_len];
                let sponsored =
                    &sponsored_ids[slot.sponsored_start..slot.sponsored_start + slot.sponsored_len];
                let (out, digest) = run_activation(
                    &mut slot.process,
                    slot.id,
                    t,
                    slot.joined_at,
                    sponsored,
                    seed,
                    hash_seed,
                    inbox,
                    std::mem::take(&mut slot.out),
                    record_digests,
                );
                slot.out = out;
                slot.digest = digest;
            });
        }
        self.obs.span_end("sim.compute", span);

        // Phase 4: drain outboxes into the next round's in-flight buffer,
        // record the communication graph and per-node metrics. All buffers
        // (double-buffered queue, dedup scratch, recycled round records) are
        // reused, so the steady state allocates nothing.
        let span = self.obs.span_start();
        let mut rec = self.spare_records.pop().unwrap_or_default();
        rec.graph.round = t;
        rec.graph.edges.clear();
        rec.graph.members.clear();
        rec.digests.clear();
        self.next_in_flight.clear();
        {
            let next_in_flight = &mut self.next_in_flight;
            let scratch = &mut self.dedup_scratch;
            let obs = &self.obs;
            let obs_on = obs.is_on();
            for slot in self.slots.iter_mut() {
                mb.record_received(slot.id, slot.inbox_len);
                if obs_on {
                    // Per-node inbox sizes: a deterministic function of the
                    // protocol (delivery is exhaustive in rounds mode).
                    obs.observe("proto.inbox_len", slot.inbox_len as u64);
                }
                scratch.clear();
                scratch.extend(slot.out.iter().map(|(to, _)| *to));
                scratch.sort_unstable();
                scratch.dedup();
                mb.record_sent(slot.id, slot.out.len(), scratch.len());
                for &to in scratch.iter() {
                    rec.graph.edges.push((slot.id, to));
                }
                if record_digests {
                    rec.digests.push((slot.id, slot.digest));
                }
                for (to, payload) in slot.out.drain(..) {
                    next_in_flight.push(Envelope::new(slot.id, to, t, payload));
                }
                rec.graph.members.push(slot.id);
            }
        }
        std::mem::swap(&mut self.in_flight, &mut self.next_in_flight);
        rec.graph.edges.sort_unstable();
        rec.graph.edges.dedup();

        self.records.push(rec);
        if let Some(window) = self.config.history_window {
            while self.records.len() > window {
                let mut old = self.records.remove(0);
                old.graph.edges.clear();
                old.graph.members.clear();
                old.digests.clear();
                self.spare_records.push(old);
            }
        }
        self.obs.span_end("sim.scatter", span);

        let row = mb.finish();
        if self.obs.is_on() {
            record_round_obs(&self.obs, &row);
        }
        match &mut self.streaming {
            Some(s) => s.push(row),
            None => self.metrics.push(row),
        }
        self.last_outcome = outcome;
        self.round += 1;
    }

    /// Applies a churn plan through the shared arbiter
    /// ([`apply_churn_plan`] validates it against budget and join rules and
    /// updates the membership), then materializes the engine half: departed
    /// slots are removed (donating their outbox buffers to the spare pool)
    /// and accepted joiners get fresh slots. Results are accumulated into
    /// `outcome` (a recycled buffer).
    fn apply_plan(&mut self, t: Round, plan: ChurnPlan, outcome: &mut ChurnOutcome) {
        let rules = self.config.churn_rules;
        apply_churn_plan(
            t,
            plan,
            &rules,
            &mut self.budget,
            &mut self.members,
            &mut self.next_id,
            &mut self.plan_scratch,
            outcome,
        );
        for &id in outcome.departed.iter() {
            let slot_idx = self
                .slots
                .binary_search_by_key(&id, |s| s.id)
                .expect("departed node has a slot");
            let slot = self.slots.remove(slot_idx);
            let mut out = slot.out;
            out.clear();
            self.spare_outboxes.push(out);
        }
        for &(id, _bootstrap) in outcome.joined.iter() {
            self.spawn_slot(id, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;
    use crate::churn::{ChurnRules, JoinPlan};
    use crate::knowledge::Lateness;
    use crate::node::{Ctx, Process};

    /// A protocol where every node floods a counter to the two numerically
    /// adjacent identifiers each round.
    #[derive(Default)]
    struct Ping {
        heard: Vec<u64>,
    }

    impl Process for Ping {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.heard.push(env.payload);
            }
            let me = ctx.id().raw();
            let round = ctx.round();
            ctx.send(NodeId(me.wrapping_add(1)), round);
            if me > 0 {
                ctx.send(NodeId(me - 1), round);
            }
        }
        fn state_digest(&self) -> u64 {
            self.heard.len() as u64
        }
    }

    fn sim(parallel: bool) -> Simulator<Ping, NullAdversary> {
        let config = SimConfig::default().with_seed(1).with_parallel(parallel);
        Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()))
    }

    #[test]
    fn messages_take_exactly_one_round() {
        let mut s = sim(false);
        s.seed_nodes(4);
        s.step();
        // Round 0: everyone sent, nobody received yet.
        assert_eq!(s.metrics().rounds()[0].messages_delivered, 0);
        assert!(s.in_flight_count() > 0);
        s.step();
        assert!(s.metrics().rounds()[1].messages_delivered > 0);
        // Node 1 heard from node 0 and node 2.
        assert_eq!(s.node(NodeId(1)).unwrap().heard.len(), 2);
    }

    #[test]
    fn sequential_and_parallel_runs_are_identical() {
        let mut a = sim(false);
        let mut b = sim(true);
        a.seed_nodes(16);
        b.seed_nodes(16);
        a.run(6);
        b.run(6);
        for id in a.member_ids() {
            assert_eq!(
                a.node(id).unwrap().heard,
                b.node(id).unwrap().heard,
                "divergence at {id}"
            );
        }
        assert_eq!(a.metrics().total_messages(), b.metrics().total_messages());
    }

    #[test]
    fn parallel_runs_are_identical_across_thread_budgets() {
        // The determinism contract of the parallel compute phase: with the
        // thread budget pinned at 1, 2 and 4 workers, a fixed-seed run is
        // bit-for-bit identical (inboxes, metrics, comm graphs, digests).
        let run_with_cap = |cap: usize| {
            rayon::with_thread_cap(cap, || {
                let config = SimConfig::default().with_seed(9).with_parallel(true);
                let mut s = Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
                // Enough nodes that the in-flight volume crosses the
                // parallel work threshold, so capped workers really run.
                s.seed_nodes(1200);
                s.run(6);
                let heard: Vec<Vec<u64>> = s
                    .member_ids()
                    .iter()
                    .map(|&id| s.node(id).unwrap().heard.clone())
                    .collect();
                let edges = s.records().last().unwrap().graph.edges.clone();
                (heard, edges, s.metrics().total_messages())
            })
        };
        let baseline = run_with_cap(1);
        for cap in [2usize, 4] {
            assert_eq!(run_with_cap(cap), baseline, "divergence at {cap} threads");
        }
    }

    #[test]
    fn steady_state_rounds_do_not_grow_scratch_buffers() {
        // After a warm-up round at a fixed node count, the reusable buffers
        // must have reached their steady-state capacities: further rounds
        // reuse them instead of growing them.
        let config = SimConfig::default()
            .with_seed(3)
            .with_history_window(4)
            .with_parallel(false);
        let mut s = Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
        s.seed_nodes(32);
        s.run(3);
        let caps = |s: &Simulator<Ping, NullAdversary>| {
            (
                s.in_flight.capacity(),
                s.next_in_flight.capacity(),
                s.dedup_scratch.capacity(),
                s.slots
                    .iter()
                    .map(|slot| slot.out.capacity())
                    .sum::<usize>(),
            )
        };
        let warm = caps(&s);
        s.run(20);
        assert_eq!(caps(&s), warm, "steady-state rounds must not reallocate");
        assert_eq!(s.records().len(), 4, "window bounds the archive");
    }

    #[test]
    fn comm_graph_records_edges() {
        let mut s = sim(false);
        s.seed_nodes(3);
        s.step();
        let g = s.comm_graph_at(0).unwrap();
        assert!(g.edges.contains(&(NodeId(0), NodeId(1))));
        assert!(g.edges.contains(&(NodeId(1), NodeId(0))));
        assert_eq!(g.members.len(), 3);
    }

    struct OneShotChurn;
    impl Adversary for OneShotChurn {
        fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
            if round == 2 {
                // Pick a bootstrap node that is not the one we churn out.
                let bootstrap = *view.eligible_bootstraps().last().unwrap();
                ChurnPlan {
                    departures: vec![NodeId(0)],
                    joins: vec![JoinPlan { bootstrap }],
                }
            } else {
                ChurnPlan::none()
            }
        }
    }

    #[test]
    fn churn_removes_and_adds_nodes() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(4);
        s.run(3);
        assert!(!s.member_ids().contains(&NodeId(0)), "node 0 departed");
        assert_eq!(s.node_count(), 4, "one left, one joined");
        let outcome = s.last_churn_outcome();
        assert_eq!(outcome.departed, vec![NodeId(0)]);
        assert_eq!(outcome.joined.len(), 1);
        assert!(s.joined_at(outcome.joined[0].0) == Some(2));
    }

    #[test]
    fn departed_nodes_do_not_receive_messages() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(4);
        s.run(4);
        // Messages addressed to node 0 in round 1 were dropped in round 2.
        assert!(s.metrics().rounds()[2].messages_dropped > 0);
    }

    struct GreedyChurn;
    impl Adversary for GreedyChurn {
        fn plan(&mut self, _round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
            // Try to delete every node, every round.
            ChurnPlan {
                departures: view.members().map(|(id, _)| id).collect(),
                joins: Vec::new(),
            }
        }
    }

    #[test]
    fn engine_enforces_churn_budget() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(2),
            window: 100,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, GreedyChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(10);
        s.run(5);
        assert_eq!(s.node_count(), 8, "only 2 departures fit the budget");
        assert!(s.last_churn_outcome().had_rejections());
    }

    struct FreshBootstrapChurn;
    impl Adversary for FreshBootstrapChurn {
        fn plan(&mut self, round: Round, _view: &KnowledgeView<'_>) -> ChurnPlan {
            if round == 1 {
                // Node 0 joined at round 0, so at round 1 it is too fresh to
                // bootstrap anyone (min age 2).
                ChurnPlan {
                    departures: vec![],
                    joins: vec![JoinPlan {
                        bootstrap: NodeId(0),
                    }],
                }
            } else {
                ChurnPlan::none()
            }
        }
    }

    #[test]
    fn engine_enforces_bootstrap_age() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(100),
            window: 10,
            min_bootstrap_age: 2,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(
            config,
            FreshBootstrapChurn,
            Box::new(|_, _| Ping::default()),
        );
        s.seed_nodes(2);
        s.run(2);
        assert_eq!(s.node_count(), 2, "join via too-fresh bootstrap rejected");
        assert_eq!(s.last_churn_outcome().rejected_joins.len(), 1);
    }

    #[test]
    fn bootstrap_phase_suppresses_churn() {
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(100),
            window: 10,
            bootstrap_rounds: 3,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, GreedyChurn, Box::new(|_, _| Ping::default()));
        s.seed_nodes(5);
        s.run(3);
        assert_eq!(s.node_count(), 5, "no churn during the bootstrap phase");
        s.step();
        assert!(
            s.node_count() < 5,
            "churn resumes after the bootstrap phase"
        );
    }

    #[test]
    fn history_window_trims_records() {
        let config = SimConfig::default().with_history_window(3);
        let mut s = Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
        s.seed_nodes(2);
        s.run(10);
        assert_eq!(s.records().len(), 3);
        assert_eq!(s.records()[0].graph.round, 7);
    }

    #[test]
    fn sponsored_nodes_are_visible_to_their_bootstrap() {
        // Protocol that records sponsorships.
        #[derive(Default)]
        struct Sponsor {
            sponsored: Vec<NodeId>,
        }
        impl Process for Sponsor {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
                self.sponsored.extend_from_slice(ctx.sponsored());
            }
        }
        struct JoinOnce;
        impl Adversary for JoinOnce {
            fn plan(&mut self, round: Round, _v: &KnowledgeView<'_>) -> ChurnPlan {
                if round == 3 {
                    ChurnPlan {
                        departures: vec![],
                        joins: vec![JoinPlan {
                            bootstrap: NodeId(0),
                        }],
                    }
                } else {
                    ChurnPlan::none()
                }
            }
        }
        let config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 10,
            ..ChurnRules::default()
        });
        let mut s = Simulator::new(config, JoinOnce, Box::new(|_, _| Sponsor::default()));
        s.seed_nodes(2);
        s.run(4);
        assert_eq!(s.node(NodeId(0)).unwrap().sponsored.len(), 1);
        assert!(s.node(NodeId(1)).unwrap().sponsored.is_empty());
    }

    #[test]
    fn lateness_config_is_respected_end_to_end() {
        // An adversary that asserts it cannot see the most recent topology.
        struct Checker;
        impl Adversary for Checker {
            fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
                if round >= 3 {
                    assert!(view.topology_at(round - 1).is_none());
                    assert!(view.topology_at(round - 2).is_some());
                }
                ChurnPlan::none()
            }
        }
        let config = SimConfig::default().with_lateness(Lateness {
            topology: 2,
            state: 50,
        });
        let mut s = Simulator::new(config, Checker, Box::new(|_, _| Ping::default()));
        s.seed_nodes(3);
        s.run(6);
    }
}
