//! The adversary interface.
//!
//! Concrete attack strategies live in the `tsa-adversary` crate; the trait is
//! defined here so the engine does not depend on them. An adversary is invoked
//! at the *beginning* of every round — before messages are delivered — exactly
//! as specified in Section 1.1: it selects a set `O_t` of nodes that leave
//! immediately and a set `J_t` of nodes that join via eligible bootstrap nodes.

use crate::churn::ChurnPlan;
use crate::ids::Round;
use crate::knowledge::KnowledgeView;

/// An adversary strategy.
///
/// Strategies receive only a [`KnowledgeView`], which enforces the `(a,b)`
/// lateness; anything the view does not expose the strategy cannot use.
pub trait Adversary: Send {
    /// Decides the churn for round `round`.
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// An adversary that never churns anything; useful for bootstrap-phase testing
/// and as the control group in experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn plan(&mut self, _round: Round, _view: &KnowledgeView<'_>) -> ChurnPlan {
        ChurnPlan::none()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Boxed adversaries are adversaries too, so harnesses can store heterogeneous
/// strategies.
impl Adversary for Box<dyn Adversary> {
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        (**self).plan(round, view)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::knowledge::{Lateness, MemberInfo};
    use std::collections::BTreeMap;

    #[test]
    fn null_adversary_does_nothing() {
        let mut adv = NullAdversary;
        let members: BTreeMap<NodeId, MemberInfo> = BTreeMap::new();
        let records = Vec::new();
        let view = KnowledgeView::new(3, Lateness::paper(4), &records, &members, 10, 2);
        let plan = adv.plan(3, &view);
        assert!(plan.is_empty());
        assert_eq!(adv.name(), "none");
    }

    #[test]
    fn boxed_adversary_delegates() {
        let mut adv: Box<dyn Adversary> = Box::new(NullAdversary);
        let members: BTreeMap<NodeId, MemberInfo> = BTreeMap::new();
        let records = Vec::new();
        let view = KnowledgeView::new(0, Lateness::oblivious(), &records, &members, 0, 2);
        assert!(adv.plan(0, &view).is_empty());
        assert_eq!(adv.name(), "none");
    }
}
