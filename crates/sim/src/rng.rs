//! Deterministic randomness for the simulator.
//!
//! Every randomized decision made by a node in round `t` is drawn from a stream
//! that is derived *only* from `(master seed, node id, round)`. This has two
//! important consequences:
//!
//! 1. **Reproducibility** — a run is a pure function of the master seed and the
//!    adversary strategy, which makes every experiment in `EXPERIMENTS.md`
//!    exactly reproducible.
//! 2. **Order independence** — per-node streams do not depend on the order in
//!    which nodes are stepped, so the engine may execute the compute phase of a
//!    round in parallel (the engine's `par_iter_mut` pass) without changing
//!    results.
//!
//! The paper additionally assumes a uniform hash function `h : V × N → [0,1)`
//! that is known to every node but opaque to the adversary (a random oracle).
//! [`position_hash`] realizes it with the same SplitMix64 mixing.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ids::{NodeId, Round};

/// SplitMix64 finalizer; a fast, well-mixed 64-bit permutation.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines several 64-bit words into one well-mixed word.
#[inline]
pub fn mix(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fractional bits
    for &w in words {
        acc = splitmix64(acc ^ splitmix64(w));
    }
    acc
}

/// Returns the deterministic RNG stream for `(seed, node, round)`.
///
/// The stream is a ChaCha8 generator seeded by a SplitMix64 mix of its inputs;
/// ChaCha8 is more than strong enough for simulation purposes and is cheap to
/// construct.
pub fn node_round_rng(seed: u64, node: NodeId, round: Round) -> ChaCha8Rng {
    let s = mix(&[seed, node.raw(), round, 0x5157_4F52_4C44_u64]);
    ChaCha8Rng::seed_from_u64(s)
}

/// Returns a deterministic RNG stream for an engine-level purpose (e.g. the
/// adversary's own coin flips), namespaced by `label`.
pub fn labeled_rng(seed: u64, label: &str, round: Round) -> ChaCha8Rng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(mix(&[seed, h, round]))
}

/// The shared uniform hash `h(v, e) ∈ [0,1)` from Section 5 of the paper.
///
/// Every node can evaluate it for any identifier it knows, which is how the
/// maintenance protocol lets mature nodes compute the future positions of the
/// fresh nodes they sponsor. The adversary never evaluates it (random-oracle
/// assumption), which the engine enforces simply by not exposing the seed
/// through [`crate::knowledge::KnowledgeView`].
#[inline]
pub fn position_hash(seed: u64, node: NodeId, epoch: u64) -> f64 {
    let z = mix(&[seed, node.raw(), epoch, 0x504F_5349_5449_4F4E]);
    // Take the top 53 bits to build a double in [0, 1).
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn node_round_streams_are_reproducible() {
        let mut a = node_round_rng(7, NodeId(3), 11);
        let mut b = node_round_rng(7, NodeId(3), 11);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn node_round_streams_differ_across_inputs() {
        let mut a = node_round_rng(7, NodeId(3), 11);
        let mut b = node_round_rng(7, NodeId(4), 11);
        let mut c = node_round_rng(7, NodeId(3), 12);
        let mut d = node_round_rng(8, NodeId(3), 11);
        let xa: u64 = a.gen();
        assert_ne!(xa, b.gen::<u64>());
        assert_ne!(xa, c.gen::<u64>());
        assert_ne!(xa, d.gen::<u64>());
    }

    #[test]
    fn position_hash_is_in_unit_interval_and_uniform_ish() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let p = position_hash(42, NodeId(i), 3);
            assert!((0.0..1.0).contains(&p), "position {p} out of range");
            sum += p;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn position_hash_changes_with_epoch() {
        let a = position_hash(42, NodeId(1), 1);
        let b = position_hash(42, NodeId(1), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn labeled_rng_distinguishes_labels() {
        let mut a = labeled_rng(1, "adversary", 0);
        let mut b = labeled_rng(1, "engine", 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
