//! Message envelopes and per-node outboxes.
//!
//! A message sent in round `t` is received at the beginning of round `t + 1`
//! (Section 1.1). Sending a message implicitly creates a directed edge of the
//! communication graph `G_t`, which is exactly the information the
//! `(a,b)`-late adversary observes with lateness `a`.

use crate::ids::{NodeId, Round};

/// A message in flight, together with its routing metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// The sender.
    pub from: NodeId,
    /// The receiver.
    pub to: NodeId,
    /// The round in which the message was sent; it is delivered in `sent_at + 1`.
    pub sent_at: Round,
    /// The protocol-level payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates a new envelope.
    pub fn new(from: NodeId, to: NodeId, sent_at: Round, payload: M) -> Self {
        Envelope {
            from,
            to,
            sent_at,
            payload,
        }
    }
}

/// The set of messages a node emits during the send phase of a round.
///
/// The outbox also doubles as the place where per-round per-node send counters
/// are accumulated for the congestion metrics of Lemma 24.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(NodeId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an outbox with pre-reserved capacity, useful on hot paths to
    /// avoid repeated reallocation (see the performance notes in DESIGN.md).
    pub fn with_capacity(cap: usize) -> Self {
        Outbox {
            msgs: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer (cleared first) so its capacity is reused.
    ///
    /// This is how the engine keeps the steady-state round loop
    /// allocation-free: every node's outbox buffer survives from round to
    /// round and is re-wrapped here instead of being reallocated.
    pub fn from_vec(mut buf: Vec<(NodeId, M)>) -> Self {
        buf.clear();
        Outbox { msgs: buf }
    }

    /// Queues `payload` for delivery to `to` at the beginning of the next round.
    #[inline]
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.msgs.push((to, payload));
    }

    /// Queues the same payload for every receiver in `targets`.
    pub fn broadcast<I>(&mut self, targets: I, payload: M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        for t in targets {
            self.msgs.push((t, payload.clone()));
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox and returns the queued `(receiver, payload)` pairs.
    pub fn into_inner(self) -> Vec<(NodeId, M)> {
        self.msgs
    }

    /// Mutable access to the queued `(receiver, payload)` pairs — the hook a
    /// byzantine node uses to rewrite what its honest machinery queued.
    pub fn queued_mut(&mut self) -> &mut Vec<(NodeId, M)> {
        &mut self.msgs
    }

    /// Iterates over the queued destinations (used by degree metrics).
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.msgs.iter().map(|(to, _)| *to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_messages_in_order() {
        let mut ob: Outbox<&'static str> = Outbox::new();
        ob.send(NodeId(1), "a");
        ob.send(NodeId(2), "b");
        assert_eq!(ob.len(), 2);
        assert!(!ob.is_empty());
        let inner = ob.into_inner();
        assert_eq!(inner, vec![(NodeId(1), "a"), (NodeId(2), "b")]);
    }

    #[test]
    fn broadcast_clones_payload_to_all_targets() {
        let mut ob: Outbox<u32> = Outbox::with_capacity(4);
        ob.broadcast([NodeId(1), NodeId(2), NodeId(3)], 9);
        assert_eq!(ob.len(), 3);
        let dests: Vec<NodeId> = ob.destinations().collect();
        assert_eq!(dests, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn envelope_carries_metadata() {
        let e = Envelope::new(NodeId(5), NodeId(6), 12, 99u8);
        assert_eq!(e.from, NodeId(5));
        assert_eq!(e.to, NodeId(6));
        assert_eq!(e.sent_at, 12);
        assert_eq!(e.payload, 99);
    }

    #[test]
    fn from_vec_reuses_capacity_and_clears_contents() {
        let mut buf: Vec<(NodeId, u8)> = Vec::with_capacity(64);
        buf.push((NodeId(1), 1));
        let cap = buf.capacity();
        let mut ob = Outbox::from_vec(buf);
        assert!(ob.is_empty(), "stale contents are cleared");
        ob.send(NodeId(2), 2);
        let inner = ob.into_inner();
        assert_eq!(inner, vec![(NodeId(2), 2)]);
        assert_eq!(inner.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn empty_outbox_reports_empty() {
        let ob: Outbox<u8> = Outbox::default();
        assert!(ob.is_empty());
        assert_eq!(ob.len(), 0);
    }
}
