//! Per-round metrics: message counts, congestion, degrees, churn.
//!
//! Lemma 24 bounds the maintenance protocol's congestion by `O(log^3 n)`
//! messages per node and round; experiment E11 measures exactly the quantities
//! collected here.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::ids::{NodeId, Round};

/// Metrics of a single round.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct RoundMetrics {
    /// The round these metrics describe.
    pub round: Round,
    /// Number of nodes that executed this round.
    pub node_count: usize,
    /// Total messages sent this round.
    pub messages_sent: usize,
    /// Total messages delivered this round (sent last round to survivors).
    pub messages_delivered: usize,
    /// Messages dropped because the receiver left before delivery.
    pub messages_dropped: usize,
    /// Maximum messages sent by a single node.
    pub max_sent_per_node: usize,
    /// Maximum messages received by a single node (the congestion of Lemma 24).
    pub max_received_per_node: usize,
    /// Mean messages sent per node.
    pub mean_sent_per_node: f64,
    /// Mean messages received per node.
    pub mean_received_per_node: f64,
    /// Maximum number of *distinct* receivers contacted by one node (its
    /// out-degree in `G_t`; the model allows `O(log n)` new edges per round).
    pub max_out_degree: usize,
    /// Nodes that departed at the start of this round.
    pub departures: usize,
    /// Nodes that joined at the start of this round.
    pub joins: usize,
}

/// Accumulates per-node counters during a round and finalizes them into a
/// [`RoundMetrics`].
///
/// The builder holds only running totals and maxima — no per-node tables —
/// so recording a round's metrics performs no heap allocation (part of the
/// engine's zero-allocation round loop; see the "Performance model" chapter
/// of DESIGN.md). The engine steps every node exactly once per round, so
/// [`record_sent`](Self::record_sent) and
/// [`record_received`](Self::record_received) must be called **at most once
/// per node per round**: the `count` of a call is the node's whole-round
/// total, which feeds both the sum and the per-node maximum.
#[derive(Debug, Default)]
pub struct RoundMetricsBuilder {
    round: Round,
    total_sent: usize,
    total_received: usize,
    max_sent: usize,
    max_received: usize,
    max_out_degree: usize,
    node_count: usize,
    dropped: usize,
    departures: usize,
    joins: usize,
}

impl RoundMetricsBuilder {
    /// Starts collecting metrics for `round`.
    pub fn new(round: Round) -> Self {
        RoundMetricsBuilder {
            round,
            ..Default::default()
        }
    }

    /// Records churn applied at the start of the round.
    pub fn record_churn(&mut self, departures: usize, joins: usize) {
        self.departures = departures;
        self.joins = joins;
    }

    /// Records the number of nodes stepping this round.
    pub fn record_node_count(&mut self, n: usize) {
        self.node_count = n;
    }

    /// Records that one node received `count` messages this round (one call
    /// per node per round).
    pub fn record_received(&mut self, _node: NodeId, count: usize) {
        self.total_received += count;
        self.max_received = self.max_received.max(count);
    }

    /// Records a dropped message (receiver no longer exists).
    pub fn record_dropped(&mut self, count: usize) {
        self.dropped += count;
    }

    /// Records that one node sent `count` messages to `distinct` distinct
    /// peers this round (one call per node per round).
    pub fn record_sent(&mut self, _node: NodeId, count: usize, distinct: usize) {
        self.total_sent += count;
        self.max_sent = self.max_sent.max(count);
        self.max_out_degree = self.max_out_degree.max(distinct);
    }

    /// Finalizes the round's metrics.
    pub fn finish(self) -> RoundMetrics {
        let n = self.node_count.max(1);
        RoundMetrics {
            round: self.round,
            node_count: self.node_count,
            messages_sent: self.total_sent,
            messages_delivered: self.total_received,
            messages_dropped: self.dropped,
            max_sent_per_node: self.max_sent,
            max_received_per_node: self.max_received,
            mean_sent_per_node: self.total_sent as f64 / n as f64,
            mean_received_per_node: self.total_received as f64 / n as f64,
            max_out_degree: self.max_out_degree,
            departures: self.departures,
            joins: self.joins,
        }
    }
}

/// A compact whole-run digest of a [`MetricsHistory`]: totals and peaks only,
/// no per-round rows. This is what `BENCH_*.json` stores by default (the raw
/// history stays available behind `--full`), shrinking maintained-run
/// artifacts by two orders of magnitude.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSummary {
    /// Rounds recorded.
    pub rounds: usize,
    /// Total messages sent over the run.
    pub total_messages_sent: usize,
    /// Total messages delivered over the run.
    pub total_messages_delivered: usize,
    /// Total messages dropped (receiver departed before delivery).
    pub total_messages_dropped: usize,
    /// Largest per-node receive count of any round (the Lemma 24 congestion).
    pub peak_congestion: usize,
    /// Largest per-node send count of any round.
    pub peak_send_rate: usize,
    /// Largest single-round out-degree of any node.
    pub peak_out_degree: usize,
    /// Mean messages sent per node per round.
    pub mean_messages_per_node_round: f64,
    /// Total departures over the run.
    pub total_departures: usize,
    /// Total joins over the run.
    pub total_joins: usize,
}

/// The full metrics history of a run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsHistory {
    rounds: Vec<RoundMetrics>,
}

impl MetricsHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty history with room for `rounds` rows preallocated.
    pub fn with_capacity(rounds: usize) -> Self {
        MetricsHistory {
            rounds: Vec::with_capacity(rounds),
        }
    }

    /// Ensures room for `additional` more rows, so a run of known length
    /// records every round into preallocated storage.
    pub fn reserve(&mut self, additional: usize) {
        self.rounds.reserve(additional);
    }

    /// Appends one round's metrics.
    pub fn push(&mut self, m: RoundMetrics) {
        self.rounds.push(m);
    }

    /// All recorded rounds, oldest first.
    pub fn rounds(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// The most recent round's metrics, if any.
    pub fn last(&self) -> Option<&RoundMetrics> {
        self.rounds.last()
    }

    /// The maximum per-node congestion (messages received by one node in one
    /// round) observed over the whole run — the quantity bounded by Lemma 24.
    pub fn peak_congestion(&self) -> usize {
        self.rounds
            .iter()
            .map(|m| m.max_received_per_node)
            .max()
            .unwrap_or(0)
    }

    /// The maximum per-node send rate observed over the whole run.
    pub fn peak_send_rate(&self) -> usize {
        self.rounds
            .iter()
            .map(|m| m.max_sent_per_node)
            .max()
            .unwrap_or(0)
    }

    /// Mean messages per node per round over the whole run.
    pub fn mean_messages_per_node_round(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.rounds.iter().map(|m| m.mean_sent_per_node).sum();
        sum / self.rounds.len() as f64
    }

    /// Total messages sent over the whole run.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|m| m.messages_sent).sum()
    }

    /// Folds the whole history into its compact [`MetricsSummary`] digest.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            rounds: self.rounds.len(),
            total_messages_sent: self.total_messages(),
            total_messages_delivered: self.rounds.iter().map(|m| m.messages_delivered).sum(),
            total_messages_dropped: self.rounds.iter().map(|m| m.messages_dropped).sum(),
            peak_congestion: self.peak_congestion(),
            peak_send_rate: self.peak_send_rate(),
            peak_out_degree: self
                .rounds
                .iter()
                .map(|m| m.max_out_degree)
                .max()
                .unwrap_or(0),
            mean_messages_per_node_round: self.mean_messages_per_node_round(),
            total_departures: self.rounds.iter().map(|m| m.departures).sum(),
            total_joins: self.rounds.iter().map(|m| m.joins).sum(),
        }
    }
}

/// Folds one finished round's row into the scheduler-independent `proto.*`
/// observability names. Every scheduler policy calls this with its own
/// per-round rows, so a round-engine run and a (fully delivering) event- or
/// net-engine run of the same protocol produce byte-identical `proto.*`
/// counters — the cross-engine comparison `exp_profile` byte-checks.
pub fn record_round_obs(obs: &tsa_obs::ObsHandle, row: &RoundMetrics) {
    obs.add("proto.rounds", 1);
    obs.add("proto.sent", row.messages_sent as u64);
    obs.add("proto.delivered", row.messages_delivered as u64);
    obs.add("proto.dropped", row.messages_dropped as u64);
    obs.add("proto.departures", row.departures as u64);
    obs.add("proto.joins", row.joins as u64);
    obs.observe("proto.round_sent", row.messages_sent as u64);
    obs.observe("proto.node_count", row.node_count as u64);
    // Close the round in the deterministic stream: flight recorders use the
    // boundary for per-round attribution; aggregate recorders ignore it.
    obs.round_mark(row.round);
}

/// How an engine retains the metrics it collects.
///
/// `Full` keeps every per-round [`RoundMetrics`] row in a
/// [`MetricsHistory`] — O(rounds) memory, required for `--full` artifacts
/// and per-round plots. `Streaming` replaces the history with O(1) running
/// accumulators plus a small reservoir-sampled congestion distribution
/// ([`StreamingMetrics`]), pinned by test to fold to the byte-identical
/// [`MetricsSummary`] digest. Streaming is what makes observability stop
/// costing O(messages) on very large grids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricsMode {
    /// Keep the full per-round history (the default, and the only mode that
    /// can serve `--full` artifacts).
    #[default]
    Full,
    /// Keep O(1) running accumulators and a sampled distribution only.
    Streaming,
}

impl MetricsMode {
    /// Whether this is the default `Full` mode (the serde skip predicate
    /// that keeps pre-existing scenario specs byte-stable).
    pub fn is_full(&self) -> bool {
        matches!(self, MetricsMode::Full)
    }
}

/// Capacity of the streaming congestion reservoir.
pub const RESERVOIR_CAPACITY: usize = 32;

/// The reservoir's fixed RNG seed: sampling depends only on the pushed
/// sequence, never on ambient randomness, so streaming runs stay
/// reproducible.
const RESERVOIR_SEED: u64 = 0x0b5e_c0de;

/// Uniform reservoir sampling (algorithm R) over a stream of values, with a
/// fixed-seed RNG: the retained sample is a deterministic function of the
/// pushed sequence.
#[derive(Clone, Debug)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<u64>,
    rng: ChaCha8Rng,
}

impl Reservoir {
    /// An empty reservoir retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity),
            rng: ChaCha8Rng::seed_from_u64(RESERVOIR_SEED),
        }
    }

    /// Offers one value to the reservoir.
    pub fn push(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = value;
            }
        }
    }

    /// The retained samples (unordered beyond insertion/replacement order).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// O(1) streaming replacement for a [`MetricsHistory`]: the running
/// accumulators needed to reproduce the exact [`MetricsSummary`] digest,
/// the most recent round's row (harness reports read `last()`), and a
/// reservoir-sampled distribution of per-round congestion.
///
/// The mean accumulates `mean_sent_per_node` left-to-right exactly as the
/// history's iterator fold does, so `summary()` is bit-identical to
/// `MetricsHistory::summary()` over the same rows — pinned by test.
#[derive(Clone, Debug)]
pub struct StreamingMetrics {
    rounds: usize,
    total_sent: usize,
    total_delivered: usize,
    total_dropped: usize,
    peak_congestion: usize,
    peak_send_rate: usize,
    peak_out_degree: usize,
    mean_sum: f64,
    total_departures: usize,
    total_joins: usize,
    last: Option<RoundMetrics>,
    congestion: Reservoir,
}

impl Default for StreamingMetrics {
    fn default() -> Self {
        StreamingMetrics {
            rounds: 0,
            total_sent: 0,
            total_delivered: 0,
            total_dropped: 0,
            peak_congestion: 0,
            peak_send_rate: 0,
            peak_out_degree: 0,
            mean_sum: 0.0,
            total_departures: 0,
            total_joins: 0,
            last: None,
            congestion: Reservoir::new(RESERVOIR_CAPACITY),
        }
    }
}

impl StreamingMetrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished round in (the streaming analogue of
    /// [`MetricsHistory::push`]).
    pub fn push(&mut self, m: RoundMetrics) {
        self.rounds += 1;
        self.total_sent += m.messages_sent;
        self.total_delivered += m.messages_delivered;
        self.total_dropped += m.messages_dropped;
        self.peak_congestion = self.peak_congestion.max(m.max_received_per_node);
        self.peak_send_rate = self.peak_send_rate.max(m.max_sent_per_node);
        self.peak_out_degree = self.peak_out_degree.max(m.max_out_degree);
        self.mean_sum += m.mean_sent_per_node;
        self.total_departures += m.departures;
        self.total_joins += m.joins;
        self.congestion.push(m.max_received_per_node as u64);
        self.last = Some(m);
    }

    /// Rounds folded so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The most recent round's metrics, if any.
    pub fn last(&self) -> Option<&RoundMetrics> {
        self.last.as_ref()
    }

    /// The reservoir-sampled per-round congestion values.
    pub fn congestion_samples(&self) -> &[u64] {
        self.congestion.samples()
    }

    /// The digest — bit-identical to `MetricsHistory::summary()` over the
    /// same rows.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            rounds: self.rounds,
            total_messages_sent: self.total_sent,
            total_messages_delivered: self.total_delivered,
            total_messages_dropped: self.total_dropped,
            peak_congestion: self.peak_congestion,
            peak_send_rate: self.peak_send_rate,
            peak_out_degree: self.peak_out_degree,
            mean_messages_per_node_round: if self.rounds == 0 {
                0.0
            } else {
                self.mean_sum / self.rounds as f64
            },
            total_departures: self.total_departures,
            total_joins: self.total_joins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_aggregates_counters() {
        let mut b = RoundMetricsBuilder::new(3);
        b.record_node_count(2);
        b.record_churn(1, 2);
        b.record_sent(NodeId(1), 5, 3);
        b.record_sent(NodeId(2), 1, 1);
        b.record_received(NodeId(1), 4);
        b.record_received(NodeId(2), 2);
        b.record_dropped(7);
        let m = b.finish();
        assert_eq!(m.round, 3);
        assert_eq!(m.messages_sent, 6);
        assert_eq!(m.messages_delivered, 6);
        assert_eq!(m.messages_dropped, 7);
        assert_eq!(m.max_sent_per_node, 5);
        assert_eq!(m.max_received_per_node, 4);
        assert_eq!(m.max_out_degree, 3);
        assert_eq!(m.departures, 1);
        assert_eq!(m.joins, 2);
        assert!((m.mean_sent_per_node - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_builder_finishes_to_zeros() {
        let m = RoundMetricsBuilder::new(0).finish();
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.max_received_per_node, 0);
        assert_eq!(m.mean_sent_per_node, 0.0);
    }

    #[test]
    fn history_summaries() {
        let mut h = MetricsHistory::new();
        for (r, recv) in [(0u64, 3usize), (1, 9), (2, 5)] {
            let mut b = RoundMetricsBuilder::new(r);
            b.record_node_count(4);
            b.record_received(NodeId(1), recv);
            b.record_sent(NodeId(1), recv, recv);
            h.push(b.finish());
        }
        assert_eq!(h.rounds().len(), 3);
        assert_eq!(h.peak_congestion(), 9);
        assert_eq!(h.peak_send_rate(), 9);
        assert_eq!(h.total_messages(), 17);
        assert_eq!(h.last().unwrap().round, 2);
        assert!(h.mean_messages_per_node_round() > 0.0);
    }

    #[test]
    fn summary_folds_totals_and_peaks() {
        let mut h = MetricsHistory::new();
        for (r, recv) in [(0u64, 3usize), (1, 9), (2, 5)] {
            let mut b = RoundMetricsBuilder::new(r);
            b.record_node_count(4);
            b.record_churn(1, 2);
            b.record_received(NodeId(1), recv);
            b.record_sent(NodeId(1), recv, recv);
            b.record_dropped(1);
            h.push(b.finish());
        }
        let s = h.summary();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.total_messages_sent, 17);
        assert_eq!(s.total_messages_delivered, 17);
        assert_eq!(s.total_messages_dropped, 3);
        assert_eq!(s.peak_congestion, 9);
        assert_eq!(s.peak_send_rate, 9);
        assert_eq!(s.peak_out_degree, 9);
        assert_eq!(s.total_departures, 3);
        assert_eq!(s.total_joins, 6);
        assert_eq!(MetricsHistory::new().summary(), MetricsSummary::default());
    }

    #[test]
    fn empty_history_is_safe() {
        let h = MetricsHistory::new();
        assert_eq!(h.peak_congestion(), 0);
        assert_eq!(h.mean_messages_per_node_round(), 0.0);
        assert!(h.last().is_none());
    }

    fn varied_rows(rounds: usize) -> Vec<RoundMetrics> {
        (0..rounds)
            .map(|r| {
                let mut b = RoundMetricsBuilder::new(r as u64);
                b.record_node_count(3 + r % 5);
                b.record_churn(r % 2, r % 3);
                b.record_received(NodeId(1), (r * 7) % 11);
                b.record_sent(NodeId(1), (r * 5) % 13, (r * 3) % 7);
                b.record_dropped(r % 4);
                b.finish()
            })
            .collect()
    }

    #[test]
    fn streaming_digest_is_bit_identical_to_full() {
        for rounds in [0usize, 1, 3, 50, 200] {
            let mut h = MetricsHistory::new();
            let mut s = StreamingMetrics::new();
            for row in varied_rows(rounds) {
                h.push(row.clone());
                s.push(row);
            }
            let (full, streaming) = (h.summary(), s.summary());
            assert_eq!(full, streaming, "digest diverged at {rounds} rounds");
            // Bit-identical, not just PartialEq: the serialized artifact
            // bytes are the contract.
            assert_eq!(
                full.mean_messages_per_node_round.to_bits(),
                streaming.mean_messages_per_node_round.to_bits()
            );
            assert_eq!(s.rounds(), rounds);
            assert_eq!(
                s.last().map(|m| m.round),
                h.last().map(|m| m.round),
                "streaming keeps the last row for harness reports"
            );
        }
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let mut a = Reservoir::new(4);
        let mut b = Reservoir::new(4);
        for v in 0..1000u64 {
            a.push(v);
            b.push(v);
        }
        assert_eq!(a.samples(), b.samples(), "fixed seed, fixed sequence");
        assert_eq!(a.samples().len(), 4);
        assert_eq!(a.seen(), 1000);
        // Replacement actually happens: after 1000 offers the reservoir is
        // overwhelmingly unlikely to still hold the first four values.
        assert_ne!(a.samples(), &[0, 1, 2, 3]);
        // All retained values came from the stream.
        assert!(a.samples().iter().all(|&v| v < 1000));
    }

    #[test]
    fn metrics_mode_default_and_predicate() {
        assert_eq!(MetricsMode::default(), MetricsMode::Full);
        assert!(MetricsMode::Full.is_full());
        assert!(!MetricsMode::Streaming.is_full());
    }
}
