//! Identifiers and round numbers used throughout the simulator.
//!
//! The paper assumes every node has a *unique and immutable* identifier of size
//! `O(log n)` (think of an IP address). We model this as a `u64`. Knowing a
//! [`NodeId`] is the only prerequisite for sending a message to that node.

use std::fmt;

/// A unique, immutable node identifier.
///
/// Node identifiers are handed out by the [`Simulator`](crate::engine::Simulator)
/// when the adversary churns a node in; they are never reused within a run.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw integer value of this identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// A synchronous round number.
///
/// Time proceeds in synchronous rounds (Section 1.1 of the paper): in round `t`
/// a node first receives every message sent in round `t - 1`, then computes,
/// then sends messages which will be received in round `t + 1`.
pub type Round = u64;

/// Distinguishes the even ("forwarding") and odd ("handover") half of an
/// overlay epoch (Section 5 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundParity {
    /// An even round `2t`: the overlay `D_t` is in place and performs the
    /// forwarding step of `A_ROUTING`.
    Even,
    /// An odd round `2t + 1`: the helper graph `H_t` performs the handover
    /// from `D_t` to `D_{t+1}`.
    Odd,
}

/// Returns the parity of a round.
#[inline]
pub fn parity(round: Round) -> RoundParity {
    if round.is_multiple_of(2) {
        RoundParity::Even
    } else {
        RoundParity::Odd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_raw_value() {
        let id = NodeId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn node_ids_order_by_raw_value() {
        let mut ids = vec![NodeId(3), NodeId(1), NodeId(2)];
        ids.sort();
        assert_eq!(ids, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn parity_alternates() {
        assert_eq!(parity(0), RoundParity::Even);
        assert_eq!(parity(1), RoundParity::Odd);
        assert_eq!(parity(2), RoundParity::Even);
        assert_eq!(parity(1001), RoundParity::Odd);
    }
}
