//! Churn plans, the rules that constrain them, and budget accounting.
//!
//! The paper's model (Section 1.1) restricts the adversary in three ways:
//!
//! 1. **Churn rate** `(C, T)`: at most `C` joins/leaves within any window of
//!    `T` consecutive rounds (the paper uses `C = αn`, `T ∈ O(log n)`).
//! 2. **Join rule**: a node may only join via a bootstrap node that has been in
//!    the network for at least 2 rounds (`w ∈ V_t ∩ V_{t-2}`); Section 2 shows
//!    this is necessary.
//! 3. **Join fan-in**: only a constant number of nodes may join via the same
//!    bootstrap node in one round.
//!
//! The engine enforces all three and reports any part of a plan it had to
//! reject, so adversary implementations cannot cheat even accidentally.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::{NodeId, Round};
use crate::knowledge::MemberInfo;

/// A join proposed by the adversary: the engine assigns the new node identifier,
/// the adversary only picks the bootstrap node that will learn about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// The bootstrap node `w ∈ V_t ∩ V_{t-2}` that receives a reference to the
    /// newly joined node.
    pub bootstrap: NodeId,
}

/// The adversary's decision for one round: which nodes leave and which join.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// Nodes that leave immediately at the beginning of the round, without
    /// receiving this round's messages.
    pub departures: Vec<NodeId>,
    /// Nodes that join this round.
    pub joins: Vec<JoinPlan>,
}

impl ChurnPlan {
    /// A plan with no churn at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Total number of churn events (joins plus leaves) in this plan.
    pub fn events(&self) -> usize {
        self.departures.len() + self.joins.len()
    }

    /// `true` if the plan performs no churn.
    pub fn is_empty(&self) -> bool {
        self.departures.is_empty() && self.joins.is_empty()
    }
}

/// Static churn rules enforced by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChurnRules {
    /// Maximum number of churn events (`C`) within any `window` rounds, or
    /// `None` for an unconstrained adversary (used by the impossibility
    /// experiments).
    pub max_events: Option<usize>,
    /// The window length `T` for the churn-rate constraint.
    pub window: Round,
    /// Minimum age (in rounds) of a bootstrap node; the paper requires 2.
    pub min_bootstrap_age: Round,
    /// Maximum number of joins via the same bootstrap node in one round.
    pub max_joins_per_bootstrap: usize,
    /// Length of the churn-free bootstrap phase `B ∈ O(log n)`.
    pub bootstrap_rounds: Round,
}

impl Default for ChurnRules {
    fn default() -> Self {
        ChurnRules {
            max_events: None,
            window: 1,
            min_bootstrap_age: 2,
            max_joins_per_bootstrap: 2,
            bootstrap_rounds: 0,
        }
    }
}

impl ChurnRules {
    /// The paper's headline parameters: churn rate `(αn, T)` with `α = 1/16`,
    /// bootstrap-age 2 and a constant join fan-in.
    pub fn paper(n: usize, window: Round, bootstrap_rounds: Round) -> Self {
        ChurnRules {
            max_events: Some(n / 16),
            window,
            min_bootstrap_age: 2,
            max_joins_per_bootstrap: 2,
            bootstrap_rounds,
        }
    }

    /// Rules with the join restriction weakened so nodes may join via fresh
    /// bootstrap nodes — used to reproduce the Lemma 4 impossibility.
    pub fn with_weak_join_rule(mut self) -> Self {
        self.min_bootstrap_age = 1;
        self
    }
}

/// Sliding-window accounting of how much churn the adversary has already spent.
#[derive(Clone, Debug, Default)]
pub struct ChurnBudget {
    history: VecDeque<(Round, usize)>,
    total_in_window: usize,
}

impl ChurnBudget {
    /// Creates an empty budget tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops events that have fallen out of the `window` ending at `round`.
    pub fn roll(&mut self, round: Round, window: Round) {
        while let Some(&(r, n)) = self.history.front() {
            if r + window <= round {
                self.history.pop_front();
                self.total_in_window -= n;
            } else {
                break;
            }
        }
    }

    /// Records `events` churn events at `round`.
    pub fn record(&mut self, round: Round, events: usize) {
        if events == 0 {
            return;
        }
        self.history.push_back((round, events));
        self.total_in_window += events;
    }

    /// Churn events currently inside the window.
    pub fn used(&self) -> usize {
        self.total_in_window
    }

    /// How many more events fit under `rules` at `round`.
    pub fn remaining(&mut self, round: Round, rules: &ChurnRules) -> usize {
        self.roll(round, rules.window);
        match rules.max_events {
            None => usize::MAX,
            Some(cap) => cap.saturating_sub(self.total_in_window),
        }
    }
}

/// Reusable scratch buffers for [`apply_churn_plan`] (departure deduplication
/// and per-bootstrap join fan-in accounting), so validating a plan performs
/// no steady-state heap allocation.
#[derive(Clone, Debug, Default)]
pub struct PlanScratch {
    seen: Vec<NodeId>,
    fanin: Vec<(NodeId, usize)>,
}

/// Validates and applies a churn plan against the shared membership state —
/// the single churn arbiter used by every execution engine (the
/// round-synchronous [`Simulator`](crate::Simulator) and the virtual-time
/// event engine of `tsa-event`), so the budget, bootstrap-age and fan-in
/// rules can never drift between scheduler policies.
///
/// Departures are processed first (the paper's `O_t`): deduplicated, checked
/// against the remaining budget, and removed from `members`. Joins (`J_t`)
/// are then checked against the bootstrap-age and per-bootstrap fan-in rules;
/// each accepted joiner is assigned the next identifier from `next_id` and
/// inserted into `members` with join round `t`. Everything applied or
/// rejected is accumulated into `outcome` (a recycled buffer the caller has
/// cleared), and the events actually spent are recorded against `budget`.
///
/// The caller remains responsible for materializing engine-side node state
/// (slots, processes, pending messages) from `outcome.departed` /
/// `outcome.joined` afterwards.
#[allow(clippy::too_many_arguments)]
pub fn apply_churn_plan(
    t: Round,
    plan: ChurnPlan,
    rules: &ChurnRules,
    budget: &mut ChurnBudget,
    members: &mut BTreeMap<NodeId, MemberInfo>,
    next_id: &mut u64,
    scratch: &mut PlanScratch,
    outcome: &mut ChurnOutcome,
) {
    let mut remaining = budget.remaining(t, rules);

    // Departures first (the paper's O_t).
    scratch.seen.clear();
    for id in plan.departures {
        if scratch.seen.contains(&id) {
            continue;
        }
        scratch.seen.push(id);
        if remaining == 0 || members.remove(&id).is_none() {
            outcome.rejected_departures.push(id);
            continue;
        }
        outcome.departed.push(id);
        remaining = remaining.saturating_sub(1);
    }

    // Joins (the paper's J_t), each via an eligible bootstrap node.
    scratch.fanin.clear();
    for join in plan.joins {
        let eligible = members
            .get(&join.bootstrap)
            .map(|m| m.joined_at + rules.min_bootstrap_age <= t)
            .unwrap_or(false);
        let fanin_idx = match scratch
            .fanin
            .iter()
            .position(|(id, _)| *id == join.bootstrap)
        {
            Some(i) => i,
            None => {
                scratch.fanin.push((join.bootstrap, 0));
                scratch.fanin.len() - 1
            }
        };
        let fanin = &mut scratch.fanin[fanin_idx].1;
        if remaining == 0 || !eligible || *fanin >= rules.max_joins_per_bootstrap {
            outcome.rejected_joins.push(join);
            continue;
        }
        *fanin += 1;
        let id = NodeId(*next_id);
        *next_id += 1;
        members.insert(id, MemberInfo { joined_at: t });
        outcome.joined.push((id, join.bootstrap));
        remaining = remaining.saturating_sub(1);
    }

    budget.record(t, outcome.events());
}

/// What the engine actually applied of a [`ChurnPlan`], plus anything rejected.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnOutcome {
    /// Nodes removed this round.
    pub departed: Vec<NodeId>,
    /// Newly created nodes with their bootstrap node.
    pub joined: Vec<(NodeId, NodeId)>,
    /// Departures rejected (unknown node, or budget exhausted).
    pub rejected_departures: Vec<NodeId>,
    /// Joins rejected (ineligible bootstrap, fan-in, or budget exhausted).
    pub rejected_joins: Vec<JoinPlan>,
}

impl ChurnOutcome {
    /// Total churn events that actually happened.
    pub fn events(&self) -> usize {
        self.departed.len() + self.joined.len()
    }

    /// `true` if the engine had to reject part of the plan.
    pub fn had_rejections(&self) -> bool {
        !self.rejected_departures.is_empty() || !self.rejected_joins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_events() {
        let p = ChurnPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.events(), 0);
    }

    #[test]
    fn plan_counts_joins_and_departures() {
        let p = ChurnPlan {
            departures: vec![NodeId(1), NodeId(2)],
            joins: vec![JoinPlan {
                bootstrap: NodeId(3),
            }],
        };
        assert_eq!(p.events(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn budget_rolls_old_events_out_of_the_window() {
        let rules = ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        };
        let mut b = ChurnBudget::new();
        b.record(0, 6);
        assert_eq!(b.remaining(1, &rules), 4);
        b.record(1, 4);
        assert_eq!(b.remaining(2, &rules), 0);
        // Round 4: events from round 0 leave the window (0 + 4 <= 4).
        assert_eq!(b.remaining(4, &rules), 6);
        // Round 5: events from round 1 leave as well.
        assert_eq!(b.remaining(5, &rules), 10);
    }

    #[test]
    fn unlimited_budget_reports_max() {
        let rules = ChurnRules::default();
        let mut b = ChurnBudget::new();
        b.record(0, 1000);
        assert_eq!(b.remaining(0, &rules), usize::MAX);
    }

    #[test]
    fn paper_rules_match_the_model() {
        let r = ChurnRules::paper(1600, 40, 20);
        assert_eq!(r.max_events, Some(100));
        assert_eq!(r.window, 40);
        assert_eq!(r.min_bootstrap_age, 2);
        assert_eq!(r.bootstrap_rounds, 20);
    }

    #[test]
    fn weak_join_rule_lowers_bootstrap_age() {
        let r = ChurnRules::default().with_weak_join_rule();
        assert_eq!(r.min_bootstrap_age, 1);
    }

    #[test]
    fn outcome_tracks_rejections() {
        let mut o = ChurnOutcome::default();
        assert!(!o.had_rejections());
        o.rejected_departures.push(NodeId(1));
        assert!(o.had_rejections());
    }
}
