//! Simulator configuration.

use crate::churn::ChurnRules;
use crate::knowledge::Lateness;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; the run is a pure function of this seed, the protocol and
    /// the adversary.
    pub seed: u64,
    /// Seed of the shared position hash `h` (a separate random oracle).
    pub hash_seed: u64,
    /// The adversary's `(a, b)` lateness.
    pub lateness: Lateness,
    /// Churn-rate and join rules enforced by the engine.
    pub churn_rules: ChurnRules,
    /// Execute the compute phase of each round in parallel across nodes.
    ///
    /// Node steps are independent given their inboxes and their RNG streams
    /// depend only on `(seed, node, round)`, so parallel execution is
    /// bit-for-bit identical to sequential execution.
    pub parallel: bool,
    /// Keep only the newest `history_window` round records (communication
    /// graphs and digests); `None` keeps everything. Large long-running
    /// experiments use a window of at least `max(a, b) + 1` so the adversary's
    /// view is unaffected.
    pub history_window: Option<usize>,
    /// Record per-node state digests each round (needed only when an adversary
    /// actually uses the `b`-late state view).
    pub record_digests: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xDEC0DE,
            hash_seed: 0x0BEA7,
            lateness: Lateness::paper(8),
            churn_rules: ChurnRules::default(),
            parallel: false,
            history_window: None,
            record_digests: false,
        }
    }
}

impl SimConfig {
    /// Returns a config with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.hash_seed = seed.rotate_left(17) ^ 0xA5A5_A5A5;
        self
    }

    /// Sets the adversary lateness.
    pub fn with_lateness(mut self, lateness: Lateness) -> Self {
        self.lateness = lateness;
        self
    }

    /// Sets the churn rules.
    pub fn with_churn_rules(mut self, rules: ChurnRules) -> Self {
        self.churn_rules = rules;
        self
    }

    /// Enables or disables parallel round execution.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Bounds the archived history.
    pub fn with_history_window(mut self, window: usize) -> Self {
        self.history_window = Some(window);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = SimConfig::default();
        assert_eq!(c.lateness.topology, 2);
        assert!(!c.parallel);
        assert!(c.history_window.is_none());
    }

    #[test]
    fn builder_methods_compose() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_parallel(true)
            .with_history_window(32)
            .with_lateness(Lateness::oblivious());
        assert_eq!(c.seed, 7);
        assert!(c.parallel);
        assert_eq!(c.history_window, Some(32));
        assert_eq!(c.lateness.topology, u64::MAX);
        assert_ne!(c.hash_seed, SimConfig::default().hash_seed);
    }
}
