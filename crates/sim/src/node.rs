//! The node behaviour trait and the per-round execution context.
//!
//! A protocol (for example the maintenance protocol of Section 5) is a type
//! implementing [`Process`]. In every synchronous round the engine calls
//! [`Process::on_round`] with all messages delivered this round and a
//! [`Ctx`] through which the node can inspect its environment and send
//! messages that will arrive in the next round.

use rand_chacha::ChaCha8Rng;

use crate::ids::{NodeId, Round};
use crate::message::{Envelope, Outbox};
use crate::rng;

/// Everything a node may legally observe and do in a single round.
///
/// The context deliberately exposes *only* information the paper's model grants
/// a node: its own identifier, the current round, the identifiers of nodes that
/// just joined via it (the "bootstrap receives a reference" rule of Section
/// 1.1), a private random stream, and the shared position hash `h`.
pub struct Ctx<'a, M> {
    id: NodeId,
    round: Round,
    joined_at: Round,
    sponsored: &'a [NodeId],
    hash_seed: u64,
    /// Deterministic per-`(seed, node, round)` random stream.
    pub rng: ChaCha8Rng,
    outbox: Outbox<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context for one node and one round. Used by the engine and by
    /// unit tests that drive a `Process` by hand.
    pub fn new(
        id: NodeId,
        round: Round,
        joined_at: Round,
        sponsored: &'a [NodeId],
        seed: u64,
        hash_seed: u64,
    ) -> Self {
        Self::with_outbox(
            id,
            round,
            joined_at,
            sponsored,
            seed,
            hash_seed,
            Outbox::new(),
        )
    }

    /// Like [`Ctx::new`], but sends into a caller-provided outbox — usually
    /// one wrapping a buffer recycled from an earlier round via
    /// [`Outbox::from_vec`], so the steady-state round loop allocates nothing.
    pub fn with_outbox(
        id: NodeId,
        round: Round,
        joined_at: Round,
        sponsored: &'a [NodeId],
        seed: u64,
        hash_seed: u64,
        outbox: Outbox<M>,
    ) -> Self {
        Ctx {
            id,
            round,
            joined_at,
            sponsored,
            hash_seed,
            rng: rng::node_round_rng(seed, id, round),
            outbox,
        }
    }

    /// This node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round `t`.
    #[inline]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The round in which this node joined the network.
    #[inline]
    pub fn joined_at(&self) -> Round {
        self.joined_at
    }

    /// Number of completed rounds this node has been part of the network.
    #[inline]
    pub fn age(&self) -> Round {
        self.round - self.joined_at
    }

    /// `true` if this is the node's very first round (it joined this round and
    /// therefore knows no other identifiers yet unless told by its sponsor).
    #[inline]
    pub fn is_first_round(&self) -> bool {
        self.round == self.joined_at
    }

    /// The nodes that joined the network via this node in the current round.
    ///
    /// Per the model, the bootstrap node "receives a reference" to each joiner;
    /// the joiner itself learns nothing until somebody messages it.
    #[inline]
    pub fn sponsored(&self) -> &[NodeId] {
        self.sponsored
    }

    /// Evaluates the shared uniform hash `h(v, epoch) ∈ [0,1)` of Section 5.
    ///
    /// Any node can evaluate the hash for any identifier it knows; the
    /// adversary cannot evaluate it at all.
    #[inline]
    pub fn position_hash(&self, node: NodeId, epoch: u64) -> f64 {
        rng::position_hash(self.hash_seed, node, epoch)
    }

    /// Sends `payload` to `to`; it will be delivered at the start of round
    /// `t + 1` if `to` is still in the network.
    #[inline]
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.outbox.send(to, payload);
    }

    /// Sends a clone of `payload` to every node in `targets`.
    pub fn broadcast<I>(&mut self, targets: I, payload: M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        self.outbox.broadcast(targets, payload);
    }

    /// Number of messages queued so far this round (congestion self-check).
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }

    /// Mutable access to the queued `(receiver, payload)` pairs — the hook a
    /// byzantine node uses to rewrite what its honest machinery queued.
    pub fn queued_mut(&mut self) -> &mut Vec<(NodeId, M)> {
        self.outbox.queued_mut()
    }

    /// Consumes the context and returns the outbox (engine internal).
    pub fn into_outbox(self) -> Outbox<M> {
        self.outbox
    }
}

/// A node-local protocol executed by the simulator.
///
/// Implementors hold all node-local state. The engine guarantees that
/// `on_round` is called exactly once per round for every node currently in the
/// network, with every message addressed to it that was sent in the previous
/// round by a node that still existed at sending time.
pub trait Process: Send + 'static {
    /// The protocol message type.
    type Msg: Clone + Send + Sync + 'static;

    /// Executes one synchronous round: receive, compute, send.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]);

    /// A compact digest of the node's internal state, made visible to the
    /// adversary only with lateness `b` (Section 1.1). The default of `0`
    /// reveals nothing.
    fn state_digest(&self) -> u64 {
        0
    }
}

/// The transport-agnostic node protocol step that every execution engine
/// schedules.
///
/// One *activation* consumes the messages delivered to the node since it last
/// ran and emits new messages through the [`Ctx`]. Which messages those are —
/// and *when* the activation happens — is a scheduler policy, not protocol
/// logic:
///
/// * the round-synchronous [`Simulator`](crate::Simulator) activates every
///   node exactly once per round with the messages sent to it one round
///   earlier;
/// * `tsa-event`'s virtual-time engine activates nodes at the round boundaries
///   of its virtual clock with whatever messages the latency/jitter/loss
///   models delivered in between.
///
/// Every [`Process`] implements `ProtocolStep` automatically (an activation
/// of a round-synchronous protocol *is* its round), so the same node logic
/// runs unchanged under both engines. Protocols that only ever run under the
/// event engine may implement `ProtocolStep` directly.
pub trait ProtocolStep: Send + 'static {
    /// The protocol message type.
    type Msg: Clone + Send + Sync + 'static;

    /// Executes one activation: receive, compute, send.
    fn on_activation(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]);

    /// A compact digest of the node's internal state, made visible to the
    /// adversary only with lateness `b` (Section 1.1). The default of `0`
    /// reveals nothing.
    fn state_digest(&self) -> u64 {
        0
    }
}

impl<P: Process> ProtocolStep for P {
    type Msg = P::Msg;

    fn on_activation(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]) {
        self.on_round(ctx, inbox);
    }

    fn state_digest(&self) -> u64 {
        Process::state_digest(self)
    }
}

/// Runs one node activation — the single protocol step shared by every
/// execution engine. The round engine's parallel compute phase and the event
/// engine's boundary activations both call exactly this, which is what makes
/// the two engines scheduler policies over the *same* protocol rather than
/// two protocol copies.
///
/// `out` is a recycled buffer (cleared on wrap) that becomes the activation's
/// outbox; the emitted `(receiver, payload)` pairs are returned together with
/// the node's state digest (`0` unless `record_digest`). The activation's RNG
/// stream depends only on `(seed, id, round)`, so *where* and *in which
/// order* activations of a round execute can never change an output bit.
#[allow(clippy::too_many_arguments)]
pub fn run_activation<P: ProtocolStep>(
    process: &mut P,
    id: NodeId,
    round: Round,
    joined_at: Round,
    sponsored: &[NodeId],
    seed: u64,
    hash_seed: u64,
    inbox: &[Envelope<P::Msg>],
    out: Vec<(NodeId, P::Msg)>,
    record_digest: bool,
) -> (Vec<(NodeId, P::Msg)>, u64) {
    let outbox = Outbox::from_vec(out);
    let mut ctx: Ctx<'_, P::Msg> =
        Ctx::with_outbox(id, round, joined_at, sponsored, seed, hash_seed, outbox);
    process.on_activation(&mut ctx, inbox);
    let digest = if record_digest {
        process.state_digest()
    } else {
        0
    };
    (ctx.into_outbox().into_inner(), digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Process for Echo {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Envelope<u32>]) {
            for env in inbox {
                ctx.send(env.from, env.payload + 1);
            }
        }
    }

    #[test]
    fn ctx_reports_identity_and_age() {
        let sponsored = vec![NodeId(9)];
        let ctx: Ctx<'_, u32> = Ctx::new(NodeId(1), 10, 4, &sponsored, 0, 0);
        assert_eq!(ctx.id(), NodeId(1));
        assert_eq!(ctx.round(), 10);
        assert_eq!(ctx.age(), 6);
        assert!(!ctx.is_first_round());
        assert_eq!(ctx.sponsored(), &[NodeId(9)]);
    }

    #[test]
    fn first_round_detection() {
        let ctx: Ctx<'_, u32> = Ctx::new(NodeId(1), 4, 4, &[], 0, 0);
        assert!(ctx.is_first_round());
        assert_eq!(ctx.age(), 0);
    }

    #[test]
    fn echo_process_replies_through_ctx() {
        let mut e = Echo;
        let mut ctx = Ctx::new(NodeId(2), 5, 0, &[], 1, 1);
        let inbox = vec![Envelope::new(NodeId(7), NodeId(2), 4, 41)];
        e.on_round(&mut ctx, &inbox);
        let out = ctx.into_outbox().into_inner();
        assert_eq!(out, vec![(NodeId(7), 42)]);
    }

    #[test]
    fn position_hash_is_consistent_across_ctxs() {
        let a: Ctx<'_, ()> = Ctx::new(NodeId(1), 0, 0, &[], 0, 77);
        let b: Ctx<'_, ()> = Ctx::new(NodeId(2), 9, 0, &[], 5, 77);
        assert_eq!(a.position_hash(NodeId(3), 4), b.position_hash(NodeId(3), 4));
    }
}
