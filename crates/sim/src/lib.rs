//! # tsa-sim — round-synchronous network simulator with an `(a,b)`-late adversary
//!
//! This crate is the substrate on which the reproduction of *"Always be Two
//! Steps Ahead of Your Enemy"* (Götte, Ravindran Vijayalakshmi, Scheideler)
//! runs. It realizes the paper's model from Section 1.1:
//!
//! * a dynamic node set `V_1, V_2, …` controlled by an adversary,
//! * synchronous rounds with receive → compute → send phases and a one-round
//!   message delay,
//! * churn applied at the beginning of each round (departures receive no
//!   messages; joins happen via bootstrap nodes that are at least two rounds
//!   old),
//! * an `(a,b)`-late omniscient adversary that sees the communication graphs
//!   with lateness `a` and node states / message contents with lateness `b`,
//! * per-round message, congestion and degree metrics.
//!
//! Protocols implement [`Process`]; adversary strategies implement
//! [`Adversary`]. The engine ([`Simulator`]) wires them together and enforces
//! both the adversary's knowledge limits and its churn budget.
//!
//! ```
//! use tsa_sim::prelude::*;
//!
//! // A trivial protocol: every node pings node 0 each round.
//! struct Pinger;
//! impl Process for Pinger {
//!     type Msg = ();
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
//!         ctx.send(NodeId(0), ());
//!     }
//! }
//!
//! let mut sim = Simulator::new(
//!     SimConfig::default(),
//!     NullAdversary,
//!     Box::new(|_, _| Pinger),
//! );
//! sim.seed_nodes(8);
//! sim.run(4);
//! assert_eq!(sim.node_count(), 8);
//! assert!(sim.metrics().total_messages() > 0);
//! ```

#![deny(missing_docs)]

pub mod adversary;
pub mod churn;
pub mod config;
pub mod engine;
pub mod ids;
pub mod knowledge;
pub mod message;
pub mod metrics;
pub mod node;
pub mod rng;

pub use adversary::{Adversary, NullAdversary};
pub use churn::{
    apply_churn_plan, ChurnBudget, ChurnOutcome, ChurnPlan, ChurnRules, JoinPlan, PlanScratch,
};
pub use config::SimConfig;
pub use engine::{NodeFactory, Simulator};
pub use ids::{parity, NodeId, Round, RoundParity};
pub use knowledge::{CommGraph, KnowledgeView, Lateness, MemberInfo, RoundRecord};
pub use message::{Envelope, Outbox};
pub use metrics::{
    record_round_obs, MetricsHistory, MetricsMode, MetricsSummary, Reservoir, RoundMetrics,
    RoundMetricsBuilder, StreamingMetrics, RESERVOIR_CAPACITY,
};
pub use node::{run_activation, Ctx, Process, ProtocolStep};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adversary::{Adversary, NullAdversary};
    pub use crate::churn::{ChurnPlan, ChurnRules, JoinPlan};
    pub use crate::config::SimConfig;
    pub use crate::engine::Simulator;
    pub use crate::ids::{NodeId, Round};
    pub use crate::knowledge::{KnowledgeView, Lateness};
    pub use crate::message::Envelope;
    pub use crate::node::{Ctx, Process, ProtocolStep};
}
