//! Experiment F1 — Figure 1 (the LDS neighbourhood sketch), reproduced as
//! measured structure: per-node edge counts towards `S(v)`, `S(v/2)` and
//! `S((v+1)/2)`, swarm-size statistics and an exhaustive swarm-property check.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use tsa_analysis::{fmt_f, Summary, Table};
use tsa_bench::{write_bench_json_at, ExpArgs};
use tsa_overlay::{Lds, OverlayParams, Position};
use tsa_sim::NodeId;

/// One measured row of the Figure-1 reproduction.
#[derive(Serialize)]
struct Fig1Row {
    n: usize,
    lambda: u32,
    swarm_size_mean: f64,
    swarm_size_min: f64,
    list_edges_per_node: f64,
    long_distance_edges_per_node: f64,
    total_degree: f64,
    swarm_property_violations: usize,
    swarm_property_checks: usize,
}

fn main() {
    // Structure-level measurement (no scenarios to sweep); the shared flags
    // still apply for --out/--help uniformity across the exp_* binaries.
    let args = ExpArgs::parse(
        "exp_fig1",
        "Figure 1: LDS neighbourhood structure, measured (structure-level, \
         no scenario sweep: --full and --threads are accepted but no-ops)",
    );
    let mut rows: Vec<Fig1Row> = Vec::new();
    let mut table = Table::new(
        "Figure 1 (measured): LDS neighbourhood structure",
        &[
            "n",
            "lambda",
            "swarm size (mean/min)",
            "list edges/node",
            "long-distance edges/node",
            "total degree",
            "swarm property violations",
        ],
    );
    for &n in &[256usize, 1024, 4096] {
        let params = OverlayParams::with_default_c(n);
        let mut rng = ChaCha8Rng::seed_from_u64(42 + n as u64);
        let lds = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);

        let swarm_sizes = Summary::of_counts(lds.index().swarm_size_distribution(&params));
        let list: Vec<usize> = lds.members().map(|v| lds.list_neighbors(v).len()).collect();
        let db: Vec<usize> = lds
            .members()
            .map(|v| lds.debruijn_neighbors(v).len())
            .collect();
        let total: Vec<usize> = lds.members().map(|v| lds.neighbors(v).len()).collect();

        // Probe the swarm property at many points against one precomputed
        // adjacency instead of re-deriving each probe's neighbour sets — the
        // sweep is identical in outcome but runs in a fraction of the time
        // (see the "Performance model" chapter of DESIGN.md).
        let neighbor_sets = lds.neighbor_sets();
        let checks = 2_000usize;
        let mut violations = 0usize;
        for _ in 0..checks {
            let p = Position::new(rng.gen::<f64>());
            if !lds.swarm_property_holds_at_with(p, &neighbor_sets) {
                violations += 1;
            }
        }

        let row = Fig1Row {
            n,
            lambda: params.lambda(),
            swarm_size_mean: swarm_sizes.mean,
            swarm_size_min: swarm_sizes.min,
            list_edges_per_node: Summary::of_counts(list).mean,
            long_distance_edges_per_node: Summary::of_counts(db).mean,
            total_degree: Summary::of_counts(total).mean,
            swarm_property_violations: violations,
            swarm_property_checks: checks,
        };
        table.row(vec![
            row.n.to_string(),
            row.lambda.to_string(),
            format!(
                "{} / {}",
                fmt_f(row.swarm_size_mean),
                fmt_f(row.swarm_size_min)
            ),
            fmt_f(row.list_edges_per_node),
            fmt_f(row.long_distance_edges_per_node),
            fmt_f(row.total_degree),
            format!("{violations} / {checks}"),
        ]);
        rows.push(row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Every node is connected to the whole swarm around its own position (list edges)\n\
         and around both de Bruijn images of its position (long-distance edges), so every\n\
         swarm is adjacent to its image swarms — the structure sketched in Figure 1."
    );
    let exp = "exp_fig1";
    let artifact_path = match &args.out {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("output directory is creatable");
            dir.join(format!("BENCH_{exp}.json"))
        }
        None => std::path::PathBuf::from(format!("BENCH_{exp}.json")),
    };
    // Fixed seeds, one grid, no timing section: the artifact is machine-
    // invariant in full, so the compare gate is whole-file byte equality.
    let committed = args
        .compare
        .then(|| std::fs::read_to_string(&artifact_path).ok())
        .flatten();
    write_bench_json_at(&artifact_path, &rows);
    if args.compare {
        let fresh = std::fs::read_to_string(&artifact_path).unwrap_or_default();
        let report = tsa_bench::compare_artifact(exp, committed.as_deref(), &fresh);
        match tsa_bench::compare::append_trajectory(
            args.out.as_deref(),
            exp,
            report.det_match,
            fresh.len() as u64,
            Vec::new(),
        ) {
            Ok(path) => println!("[{exp}] trajectory row appended to {}", path.display()),
            Err(err) => eprintln!("warning: could not append trajectory row: {err}"),
        }
        println!("{}", report.render());
        if !report.det_match {
            std::process::exit(1);
        }
    }
}
