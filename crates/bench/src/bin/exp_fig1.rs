//! Experiment F1 — Figure 1 (the LDS neighbourhood sketch), reproduced as
//! measured structure: per-node edge counts towards `S(v)`, `S(v/2)` and
//! `S((v+1)/2)`, swarm-size statistics and an exhaustive swarm-property check.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use tsa_analysis::{fmt_f, Summary, Table};
use tsa_overlay::{Lds, OverlayParams, Position};
use tsa_sim::NodeId;

fn main() {
    let mut table = Table::new(
        "Figure 1 (measured): LDS neighbourhood structure",
        &[
            "n", "lambda", "swarm size (mean/min)", "list edges/node", "long-distance edges/node",
            "total degree", "swarm property violations",
        ],
    );
    for &n in &[256usize, 1024, 4096] {
        let params = OverlayParams::with_default_c(n);
        let mut rng = ChaCha8Rng::seed_from_u64(42 + n as u64);
        let lds = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);

        let swarm_sizes = Summary::of_counts(lds.index().swarm_size_distribution(&params));
        let list: Vec<usize> = lds.members().map(|v| lds.list_neighbors(v).len()).collect();
        let db: Vec<usize> = lds.members().map(|v| lds.debruijn_neighbors(v).len()).collect();
        let total: Vec<usize> = lds.members().map(|v| lds.neighbors(v).len()).collect();

        let mut violations = 0usize;
        for _ in 0..2_000 {
            let p = Position::new(rng.gen::<f64>());
            if !lds.swarm_property_holds_at(p) {
                violations += 1;
            }
        }

        table.row(vec![
            n.to_string(),
            params.lambda().to_string(),
            format!("{} / {}", fmt_f(swarm_sizes.mean), fmt_f(swarm_sizes.min)),
            fmt_f(Summary::of_counts(list).mean),
            fmt_f(Summary::of_counts(db).mean),
            fmt_f(Summary::of_counts(total).mean),
            format!("{violations} / 2000"),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Every node is connected to the whole swarm around its own position (list edges)\n\
         and around both de Bruijn images of its position (long-distance edges), so every\n\
         swarm is adjacent to its image swarms — the structure sketched in Figure 1."
    );
}
