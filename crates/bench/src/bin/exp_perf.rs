//! Experiment PERF — the simulator's round-loop throughput trajectory.
//!
//! Every paper claim in this repository is a sweep over `Scenario::run`
//! cells, so the per-round cost of the `tsa-sim` engine multiplies into
//! everything (ROADMAP: "as fast as the hardware allows"). This binary
//! measures that cost directly and writes `BENCH_exp_perf.json`, so the perf
//! trajectory is diffable across PRs like every other claim. See the
//! "Performance model" chapter of DESIGN.md for the cost model behind the
//! numbers and EXPERIMENTS.md for how to read them.
//!
//! Three workloads bracket the engines:
//!
//! * `engine_flood` — a synthetic two-neighbour flood at
//!   `n ∈ {256, 1024, 4096}`: a near-zero compute phase, so the number is
//!   the round loop itself (delivery sort, inbox slicing, outbox draining,
//!   metrics, record recycling);
//! * `event_loop` — the same flood on the *event* engine under a lossy,
//!   jittery network at `n ∈ {256, 1024, 4096}`: the number is the calendar
//!   queue plus batched fate derivation (events/s, queue-op ns, peak queue
//!   depth ride along in the row);
//! * `maintained_lds` — the full maintenance protocol under paper churn at
//!   `n ∈ {64, 128, 256}`: a realistic compute phase on top. (The protocol's
//!   `Θ(n·λ³)` message volume makes larger `n` a memory-bound sweep of its
//!   own, deliberately out of scope here.)
//!
//! Both run at `threads ∈ {1, 2, machine budget}`; `--smoke` shrinks
//! everything to a seconds-long CI-sized grid whose only job is to keep the
//! perf suite from bit-rotting.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::Instant;

use serde::Serialize;

use tsa_bench::compare::BandOutcome;
use tsa_bench::{experiment_scenario, usage, write_bench_json_at, ExpArgs};
use tsa_core::ProtocolMsg;
use tsa_event::queue::{CalendarQueue, Pending};
use tsa_event::{EventConfig, EventSimulator, LatencyModel, NetModel};
use tsa_scenario::{AdversarySpec, ChurnSpec};
use tsa_sim::prelude::*;
use tsa_sim::{Envelope as SimEnvelope, MetricsHistory, NullAdversary};

/// One measured cell of the throughput grid.
#[derive(Serialize)]
struct PerfRow {
    /// `engine_flood` (round-loop overhead) or `maintained_lds` (full
    /// protocol).
    workload: &'static str,
    /// Network size.
    n: usize,
    /// Worker-thread budget actually in effect for the engine's compute
    /// phase (the requested cap bounded by the ambient TSA_THREADS/cores
    /// budget).
    threads: usize,
    /// Warm-up rounds excluded from timing (bootstrap phase, or buffer
    /// warm-up for the flood).
    warmup_rounds: u64,
    /// Measured rounds.
    rounds: u64,
    /// Wall-clock of the measured rounds, in milliseconds.
    wall_ms: f64,
    /// The headline number: measured rounds per second.
    rounds_per_sec: f64,
    /// Protocol messages processed per second over the measured window.
    messages_per_sec: f64,
    /// Mean messages sent per round over the measured window.
    mean_messages_per_round: f64,
    /// Largest single-round in-flight message count of the whole run.
    peak_in_flight_messages: usize,
    /// `peak_in_flight_messages × sizeof(Envelope)`: the engine's dominant
    /// steady-state buffer, as bytes.
    peak_in_flight_bytes: usize,
    /// Linux `VmHWM` (peak resident set) in kB after this cell, when
    /// `/proc/self/status` is readable; 0 elsewhere. Monotone across cells —
    /// a process-level high-water mark, not a per-cell measurement.
    vm_hwm_kb: u64,
    /// Event-engine only: queue events delivered per second over the
    /// measured window (absent for round-engine workloads, keeping their
    /// row shape byte-stable).
    #[serde(skip_serializing_if = "Option::is_none")]
    events_per_sec: Option<f64>,
    /// Event-engine only: nanoseconds per calendar-queue operation (one push
    /// or one pop) in a direct steady-state microbench.
    #[serde(skip_serializing_if = "Option::is_none")]
    queue_op_ns: Option<f64>,
    /// Event-engine only: the run's largest post-dispatch queue depth.
    #[serde(skip_serializing_if = "Option::is_none")]
    peak_queue_depth: Option<u64>,
}

/// The `BENCH_exp_perf.json` document.
#[derive(Serialize)]
struct PerfDoc {
    /// The experiment's name.
    exp: &'static str,
    /// Whether this was a `--smoke` run (CI-sized, not comparable to full).
    smoke: bool,
    /// The machine's worker-thread budget at launch (`TSA_THREADS` / cores).
    machine_threads: usize,
    /// One row per `(workload, n, threads)` cell.
    rows: Vec<PerfRow>,
}

/// Linux peak-RSS high-water mark, in kB.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Every node floods a counter to its two id-adjacent peers each round — the
/// cheapest possible compute phase, isolating the engine overhead.
struct Flood;

impl Process for Flood {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        let heard = inbox.len() as u64;
        let me = ctx.id().raw();
        ctx.send(NodeId(me.wrapping_add(1)), heard);
        if me > 0 {
            ctx.send(NodeId(me - 1), heard);
        }
    }
}

/// Folds a finished run's metrics into a [`PerfRow`].
#[allow(clippy::too_many_arguments)]
fn finish_row(
    workload: &'static str,
    n: usize,
    threads: usize,
    warmup_rounds: u64,
    rounds: u64,
    wall_secs: f64,
    metrics: &MetricsHistory,
    envelope_bytes: usize,
) -> PerfRow {
    let measured = &metrics.rounds()[warmup_rounds as usize..];
    let messages: usize = measured.iter().map(|m| m.messages_sent).sum();
    let peak_in_flight = metrics
        .rounds()
        .iter()
        .map(|m| m.messages_sent)
        .max()
        .unwrap_or(0);
    let wall_secs = wall_secs.max(1e-9);
    PerfRow {
        workload,
        n,
        threads,
        warmup_rounds,
        rounds,
        wall_ms: wall_secs * 1e3,
        rounds_per_sec: rounds as f64 / wall_secs,
        messages_per_sec: messages as f64 / wall_secs,
        mean_messages_per_round: messages as f64 / rounds.max(1) as f64,
        peak_in_flight_messages: peak_in_flight,
        peak_in_flight_bytes: peak_in_flight * envelope_bytes,
        vm_hwm_kb: vm_hwm_kb(),
        events_per_sec: None,
        queue_op_ns: None,
        peak_queue_depth: None,
    }
}

fn measure_flood(n: usize, threads: usize, rounds: u64) -> PerfRow {
    rayon::with_thread_cap(threads, || {
        // Record the budget actually in effect under the cap: a cap can only
        // lower the ambient TSA_THREADS/cores budget, never raise it, so
        // this is what really ran (the grid is pre-filtered to the ambient
        // budget, but the row stays honest either way).
        let actual_threads = rayon::current_num_threads();
        let config = SimConfig::default()
            .with_seed(5)
            .with_history_window(8)
            .with_parallel(true);
        let mut sim = Simulator::new(config, NullAdversary, Box::new(|_, _| Flood));
        sim.seed_nodes(n);
        let warmup = 2u64;
        sim.run(warmup); // reach buffer steady state before timing
        let t0 = Instant::now();
        sim.run(rounds);
        let wall = t0.elapsed().as_secs_f64();
        finish_row(
            "engine_flood",
            n,
            actual_threads,
            warmup,
            rounds,
            wall,
            sim.metrics(),
            std::mem::size_of::<SimEnvelope<u64>>(),
        )
    })
}

/// Direct cost of one calendar-queue operation, in nanoseconds: a
/// steady-state churn of pushes with bounded pseudo-random deltas and
/// boundary drains, far from both the empty and the overflow-only regimes.
/// One op is one push or one successful pop.
fn measure_queue_op_ns() -> f64 {
    const WIDTH: u64 = 64;
    let mut queue: CalendarQueue<u64> = CalendarQueue::new(WIDTH);
    let mut seq = 0u64;
    let mut ops = 0u64;
    let mut now = 0u64;
    let t0 = Instant::now();
    while ops < 400_000 {
        for _ in 0..8 {
            // Weyl-sequence delta in [0, 8 buckets): deterministic, cheap,
            // and spread enough to exercise ring wraps.
            let delta = (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % (8 * WIDTH);
            queue.push(Pending {
                arrival: now + delta,
                seq,
                env: Envelope::new(NodeId(0), NodeId(seq % 64), 0, 0),
            });
            seq += 1;
            ops += 1;
        }
        now += WIDTH;
        while queue.pop_at_or_before(now).is_some() {
            ops += 1;
        }
    }
    while queue.pop_at_or_before(u64::MAX).is_some() {
        ops += 1;
    }
    t0.elapsed().as_nanos() as f64 / ops as f64
}

fn measure_event_loop(n: usize, threads: usize, rounds: u64) -> PerfRow {
    rayon::with_thread_cap(threads, || {
        let actual_threads = rayon::current_num_threads();
        // Lossy, jittery, multi-round latencies: the configuration the async
        // experiments run the event engine under, so the queue sees real
        // boundary straddling and the fate path real loss coins.
        let net = NetModel {
            latency: LatencyModel::uniform(100, 2600),
            jitter: 300,
            loss: 0.02,
        };
        let sim = SimConfig::default()
            .with_seed(11)
            .with_history_window(8)
            .with_parallel(true);
        let config = EventConfig::new(sim, net);
        let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Flood));
        sim.seed_nodes(n);
        let warmup = 2u64;
        sim.run(warmup);
        let before = sim.net_stats();
        let in_flight_before = sim.in_flight_count() as i128;
        let t0 = Instant::now();
        sim.run(rounds);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let after = sim.net_stats();
        let in_flight_after = sim.in_flight_count() as i128;
        // Events popped over the window: everything enqueued in it (sent
        // minus lost minus churn drops), corrected by the queue-depth delta.
        let enqueued = (after.sent - after.lost - after.dropped_departed) as i128
            - (before.sent - before.lost - before.dropped_departed) as i128;
        let popped = (enqueued + in_flight_before - in_flight_after).max(0) as u64;
        let mut row = finish_row(
            "event_loop",
            n,
            actual_threads,
            warmup,
            rounds,
            wall,
            sim.metrics(),
            std::mem::size_of::<SimEnvelope<u64>>(),
        );
        row.events_per_sec = Some(popped as f64 / wall);
        row.queue_op_ns = Some(measure_queue_op_ns());
        row.peak_queue_depth = Some(sim.peak_queue_depth());
        row
    })
}

fn measure_maintained(n: usize, threads: usize, rounds: u64) -> PerfRow {
    rayon::with_thread_cap(threads, || {
        let actual_threads = rayon::current_num_threads();
        let mut run = experiment_scenario(n)
            .churn(ChurnSpec::paper())
            .adversary(AdversarySpec::random(1, 13))
            .seed(29)
            .build();
        let warmup = run.params().bootstrap_rounds();
        run.run_bootstrap();
        let t0 = Instant::now();
        run.run(rounds);
        let wall = t0.elapsed().as_secs_f64();
        finish_row(
            "maintained_lds",
            n,
            actual_threads,
            warmup,
            rounds,
            wall,
            run.metrics(),
            std::mem::size_of::<SimEnvelope<ProtocolMsg>>(),
        )
    })
}

fn main() {
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI (--full is accepted but a no-op: the grid has no raw
    // histories to keep).
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "round-loop throughput (rounds/sec, peak-memory proxy) across \
                 workload × n × threads; --smoke runs a seconds-long CI-sized grid";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized grid (a few seconds end to end)",
                usage("exp_perf", about)
            );
            return;
        }
        Err(message) => {
            eprintln!("exp_perf: {message}\n\n{}", usage("exp_perf", about));
            std::process::exit(2);
        }
    };

    // The per-cell thread budget is applied with `with_thread_cap`, which
    // can only *lower* the ambient TSA_THREADS/cores budget — so `--threads`
    // lowers the whole grid's ceiling, and grid points above the ceiling are
    // dropped rather than run mislabeled.
    let ambient = rayon::current_num_threads();
    let machine_threads = args.threads.map_or(ambient, |t| t.min(ambient));
    let (flood_sizes, flood_rounds): (&[usize], u64) = if smoke {
        (&[256], 5)
    } else {
        (&[256, 1024, 4096], 30)
    };
    let (event_sizes, event_rounds): (&[usize], u64) = if smoke {
        (&[256], 5)
    } else {
        (&[256, 1024, 4096], 30)
    };
    let (maintained_sizes, maintained_rounds): (&[usize], u64) = if smoke {
        (&[48, 64], 3)
    } else {
        (&[64, 128, 256], 10)
    };
    let mut thread_grid: Vec<usize> = if smoke {
        vec![1, 2]
    } else {
        vec![1, 2, machine_threads]
    };
    thread_grid.retain(|&t| t <= machine_threads);
    thread_grid.sort_unstable();
    thread_grid.dedup();

    let mut rows = Vec::new();
    println!(
        "exp_perf{}: flood n ∈ {flood_sizes:?} × event n ∈ {event_sizes:?} × \
         maintained n ∈ {maintained_sizes:?} × threads ∈ {thread_grid:?}",
        if smoke { " (smoke)" } else { "" },
    );
    let cells = flood_sizes
        .iter()
        .map(|&n| {
            (
                n,
                flood_rounds,
                measure_flood as fn(usize, usize, u64) -> PerfRow,
            )
        })
        .chain(event_sizes.iter().map(|&n| {
            (
                n,
                event_rounds,
                measure_event_loop as fn(usize, usize, u64) -> PerfRow,
            )
        }))
        .chain(maintained_sizes.iter().map(|&n| {
            (
                n,
                maintained_rounds,
                measure_maintained as fn(usize, usize, u64) -> PerfRow,
            )
        }));
    for (n, rounds, measure) in cells {
        for &threads in &thread_grid {
            let row = measure(n, threads, rounds);
            println!(
                "  {:<14} n = {n:>5}, threads = {threads}: {:>9.1} rounds/s, \
                 {:>12.0} msgs/s, peak in-flight {:>8} msgs, VmHWM {} kB",
                row.workload,
                row.rounds_per_sec,
                row.messages_per_sec,
                row.peak_in_flight_messages,
                row.vm_hwm_kb,
            );
            if let (Some(eps), Some(ns), Some(depth)) =
                (row.events_per_sec, row.queue_op_ns, row.peak_queue_depth)
            {
                println!(
                    "  {:<14} {:>22} {eps:>12.0} events/s, queue op {ns:>6.1} ns, \
                     peak queue depth {depth}",
                    "", "",
                );
            }
            rows.push(row);
        }
    }

    let doc = PerfDoc {
        exp: "exp_perf",
        smoke,
        machine_threads,
        rows,
    };
    let artifact_path = match &args.out {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("output directory is creatable");
            dir.join("BENCH_exp_perf.json")
        }
        None => std::path::PathBuf::from("BENCH_exp_perf.json"),
    };
    let committed = args
        .compare
        .then(|| std::fs::read_to_string(&artifact_path).ok());
    write_bench_json_at(&artifact_path, &doc);
    if let Some(committed) = committed {
        compare_trajectory(&args, committed.as_deref(), &doc);
    }
}

/// Relative tolerance on `rounds_per_sec` for the `--compare` band: wall
/// clocks are noisy even on one machine, so the band only catches collapses
/// (or implausible speedups), not jitter.
const PERF_BAND: f64 = 0.5;

/// Cells shorter than this on either side are skipped by the band: a
/// single-digit-millisecond cell flips 2× on cache state alone, so a band
/// there would gate on noise.
const PERF_BAND_MIN_WALL_MS: f64 = 100.0;

/// The `--compare` gate for a timing-only artifact: every committed
/// `(workload, n, threads)` row's `rounds_per_sec` must land within
/// [`PERF_BAND`] of the fresh run's, and one machine-tagged trajectory row
/// records the fresh throughputs either way. Exits non-zero on a band
/// violation. A committed artifact of the other grid shape (full vs
/// `--smoke`) is no baseline.
fn compare_trajectory(args: &ExpArgs, committed: Option<&str>, doc: &PerfDoc) {
    let committed = committed
        .and_then(|text| serde_json::parse_value(text).ok())
        .filter(|v| v.get("smoke").and_then(|s| s.as_bool()) == Some(doc.smoke));
    let mut violations = Vec::new();
    let mut skipped = Vec::new();
    let mut compared = 0usize;
    if let Some(rows) = committed
        .as_ref()
        .and_then(|v| v.get("rows"))
        .and_then(|v| v.as_array())
    {
        for row in rows {
            let key = |field: &str| row.get(field).and_then(|v| v.as_u64());
            let (Some(n), Some(threads)) = (key("n"), key("threads")) else {
                continue;
            };
            let workload = row
                .get("workload")
                .and_then(|v| v.as_str())
                .unwrap_or_default();
            let Some(was) = row.get("rounds_per_sec").and_then(|v| v.as_f64()) else {
                continue;
            };
            let Some(fresh) = doc
                .rows
                .iter()
                .find(|r| r.workload == workload && r.n as u64 == n && r.threads as u64 == threads)
            else {
                continue;
            };
            let was_wall = row.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let name = format!("rounds_per_sec[{workload} n={n} t={threads}]");
            match tsa_bench::compare::check_band_floored(
                &name,
                was,
                fresh.rounds_per_sec,
                PERF_BAND,
                was_wall,
                fresh.wall_ms,
                PERF_BAND_MIN_WALL_MS,
            ) {
                BandOutcome::Within => compared += 1,
                BandOutcome::Violation(v) => {
                    compared += 1;
                    violations.push(v);
                }
                BandOutcome::Skipped(reason) => skipped.push(reason),
            }
        }
    }
    let band_ok = violations.is_empty();
    let metrics = doc
        .rows
        .iter()
        .map(|r| tsa_dash::MetricPoint {
            name: format!("rounds_per_sec[{} n={} t={}]", r.workload, r.n, r.threads),
            value: r.rounds_per_sec,
        })
        .collect();
    match tsa_bench::compare::append_trajectory(
        args.out.as_deref(),
        "exp_perf",
        band_ok,
        0,
        metrics,
    ) {
        Ok(path) => println!("[exp_perf] trajectory row appended to {}", path.display()),
        Err(err) => eprintln!("warning: could not append trajectory row: {err}"),
    }
    if committed.is_none() {
        println!("exp_perf: no comparable committed artifact (baseline seeded)");
        return;
    }
    // Skips are part of the gate's claim: say what was NOT banded and why,
    // so a green gate over a grid of sub-floor cells reads as exactly that.
    for reason in &skipped {
        println!("exp_perf: {reason}");
    }
    if band_ok {
        println!(
            "exp_perf: {compared} committed throughput row(s) within the ±{:.0}% band \
             ({} skipped under the {:.0} ms floor)",
            PERF_BAND * 100.0,
            skipped.len(),
            PERF_BAND_MIN_WALL_MS,
        );
    } else {
        eprintln!(
            "exp_perf: throughput left the ±{:.0}% band:",
            PERF_BAND * 100.0
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
