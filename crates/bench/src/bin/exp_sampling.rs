//! Experiment E6 — Lemma 13: `A_SAMPLING` chooses every node with the same
//! probability and discards at most half of all attempts.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_analysis::{fmt_f, uniformity, Summary, Table};
use tsa_overlay::{Lds, OverlayParams};
use tsa_routing::sample_many;
use tsa_sim::NodeId;

fn main() {
    let mut table = Table::new(
        "Lemma 13 (measured): A_SAMPLING uniformity (100k attempts per size)",
        &[
            "n", "discard rate (bound 0.5)", "distinct nodes hit", "hits mean", "hits min", "hits max",
            "total variation", "chi² / df",
        ],
    );
    for &n in &[128usize, 256, 512] {
        let params = OverlayParams::with_default_c(n);
        let mut rng = ChaCha8Rng::seed_from_u64(21 + n as u64);
        let overlay = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);
        let report = sample_many(&overlay, 100_000, 31 + n as u64);
        let summary = Summary::of_counts(report.hits.values().copied());
        let uni = uniformity(&report.hits, n);
        table.row(vec![
            n.to_string(),
            fmt_f(report.discard_rate()),
            format!("{}/{}", report.distinct_nodes(), n),
            fmt_f(summary.mean),
            fmt_f(summary.min),
            fmt_f(summary.max),
            fmt_f(uni.total_variation),
            fmt_f(uni.chi_square / uni.degrees_of_freedom as f64),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Every node is hit, hit counts concentrate around the mean, the total-variation\n\
         distance to the uniform distribution is small, and the discard rate stays at the\n\
         Lemma 13 bound of one half."
    );
}
