//! Experiment E6 — Lemma 13: `A_SAMPLING` chooses every node with the same
//! probability and discards at most half of all attempts — a declarative
//! sweep over the size axis with seed replicates.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use tsa_bench::{finish, run_sweeps, workload_spec, ExpArgs};
use tsa_scenario::ScenarioKind;
use tsa_sweep::SweepSpec;

fn main() {
    let exp = "exp_sampling";
    let args = ExpArgs::parse(exp, "Lemma 13: A_SAMPLING uniformity and discard rate");

    let uniformity = SweepSpec::new("uniformity", workload_spec(ScenarioKind::Sampling, 128))
        .over_n([128, 256, 512])
        .seeds(21, 3);
    let runs = run_sweeps(exp, &args, vec![uniformity]);

    println!(
        "Every node is hit, hit counts concentrate around the mean, the total-variation\n\
         distance to the uniform distribution is small, and the discard rate stays at the\n\
         Lemma 13 bound of one half."
    );
    finish(exp, &args, &runs, serde_json::Value::Null);
}
