//! Experiment E6 — Lemma 13: `A_SAMPLING` chooses every node with the same
//! probability and discards at most half of all attempts.

use tsa_analysis::{fmt_f, Table};
use tsa_bench::write_bench_json;
use tsa_scenario::{Scenario, ScenarioOutcome};

fn main() {
    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
    let mut table = Table::new(
        "Lemma 13 (measured): A_SAMPLING uniformity (100k attempts per size)",
        &[
            "n",
            "discard rate (bound 0.5)",
            "distinct nodes hit",
            "hits mean",
            "hits min",
            "hits max",
            "total variation",
            "chi² / df",
        ],
    );
    for &n in &[128usize, 256, 512] {
        let outcome = Scenario::sampling(n)
            .attempts(100_000)
            .seed(21 + n as u64)
            .workload_seed(31 + n as u64)
            .run(0);
        let s = outcome.sampling.expect("sampling outcome");
        table.row(vec![
            n.to_string(),
            fmt_f(s.discard_rate),
            format!("{}/{}", s.distinct_nodes, n),
            fmt_f(s.hits_mean),
            s.hits_min.to_string(),
            s.hits_max.to_string(),
            fmt_f(s.total_variation),
            fmt_f(s.chi_square / s.degrees_of_freedom as f64),
        ]);
        outcomes.push(outcome);
    }
    println!("{}", table.to_markdown());
    println!(
        "Every node is hit, hit counts concentrate around the mean, the total-variation\n\
         distance to the uniform distribution is small, and the discard rate stays at the\n\
         Lemma 13 bound of one half."
    );
    write_bench_json("exp_sampling", &outcomes);
}
