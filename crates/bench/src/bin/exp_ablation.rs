//! Experiment A1 — ablation of the two robustness knobs the design section
//! calls out: the swarm-radius parameter `c` and the routing replication `r`.
//! Both are swept on the standalone routing layer (which isolates their effect
//! from the rest of the protocol) under a fixed 25% per-step holder failure.

use tsa_analysis::{fmt_f, Table};
use tsa_bench::write_bench_json;
use tsa_overlay::OverlayParams;
use tsa_scenario::{Scenario, ScenarioOutcome};

fn main() {
    let n = 256usize;
    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();

    let mut table = Table::new(
        "Ablation: swarm-radius parameter c (r = 3, 25% holder failure, n = 256)",
        &["c", "swarm radius", "delivery rate", "max congestion"],
    );
    for &c in &[0.5f64, 1.0, 1.5, 2.0, 3.0] {
        let outcome = Scenario::routing(n)
            .with_c(c)
            .with_replication(3)
            .holder_failure(0.25)
            .messages_per_node(1)
            .seed(3)
            .workload_seed(5)
            .run(0);
        let r = outcome.routing.expect("routing outcome");
        table.row(vec![
            fmt_f(c),
            fmt_f(OverlayParams::new(n, c).swarm_radius()),
            fmt_f(r.delivery_rate),
            r.max_congestion.to_string(),
        ]);
        outcomes.push(outcome);
    }
    println!("{}", table.to_markdown());

    let mut table = Table::new(
        "Ablation: replication factor r (c = 2, 25% holder failure, n = 256)",
        &["r", "delivery rate", "max congestion", "total copies"],
    );
    for &r in &[1usize, 2, 3, 4, 6] {
        let outcome = Scenario::routing(n)
            .with_replication(r)
            .holder_failure(0.25)
            .messages_per_node(1)
            .seed(4)
            .workload_seed(7)
            .run(0);
        let report = outcome.routing.expect("routing outcome");
        table.row(vec![
            r.to_string(),
            fmt_f(report.delivery_rate),
            report.max_congestion.to_string(),
            report.total_copies.to_string(),
        ]);
        outcomes.push(outcome);
    }
    println!("{}", table.to_markdown());
    println!(
        "Small c starves swarms (delivery collapses); growing c or r buys reliability at a\n\
         linear cost in congestion — the trade-off the paper's constants encode."
    );
    write_bench_json("exp_ablation", &outcomes);
}
