//! Experiment A1 — ablation of the two robustness knobs the design section
//! calls out, as two declarative sweeps on the standalone routing layer
//! (which isolates their effect from the rest of the protocol) under a fixed
//! 25% per-step holder failure:
//!
//! * `c`: the swarm-radius parameter at `r = 3`;
//! * `replication`: the replication factor at `c = 2`.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use tsa_bench::{finish, run_sweeps, workload_spec, ExpArgs};
use tsa_scenario::ScenarioKind;
use tsa_sweep::SweepSpec;

fn main() {
    let exp = "exp_ablation";
    let args = ExpArgs::parse(exp, "ablation: swarm-radius c and replication r sweeps");
    let n = 256usize;

    let mut base = workload_spec(ScenarioKind::Routing, n);
    base.holder_failure = 0.25;

    let mut c_base = base.clone();
    c_base.replication = Some(3);
    let c_sweep = SweepSpec::new("c", c_base)
        .over_c([0.5, 1.0, 1.5, 2.0, 3.0])
        .seeds(3, 2);

    let mut r_base = base;
    r_base.c = Some(2.0);
    let r_sweep = SweepSpec::new("replication", r_base)
        .over_replication([1, 2, 3, 4, 6])
        .seeds(4, 2);

    let runs = run_sweeps(exp, &args, vec![c_sweep, r_sweep]);
    println!(
        "Small c starves swarms (delivery collapses); growing c or r buys reliability at a\n\
         linear cost in congestion — the trade-off the paper's constants encode."
    );
    finish(exp, &args, &runs, serde_json::Value::Null);
}
