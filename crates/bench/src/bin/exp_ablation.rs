//! Experiment A1 — ablation of the two robustness knobs the design section
//! calls out: the swarm-radius parameter `c` and the routing replication `r`.
//! Both are swept on the standalone routing layer (which isolates their effect
//! from the rest of the protocol) under a fixed 25% per-step holder failure.

use tsa_analysis::{fmt_f, Table};
use tsa_overlay::OverlayParams;
use tsa_routing::{uniform_workload, RoutableSeries, RoutingConfig, RoutingSim};
use tsa_sim::NodeId;

fn main() {
    let n = 256usize;

    let mut table = Table::new(
        "Ablation: swarm-radius parameter c (r = 3, 25% holder failure, n = 256)",
        &["c", "swarm radius", "delivery rate", "max congestion"],
    );
    for &c in &[0.5f64, 1.0, 1.5, 2.0, 3.0] {
        let params = OverlayParams::new(n, c);
        let series = RoutableSeries::new(params, 3, (0..n as u64).map(NodeId));
        let config = RoutingConfig::default()
            .with_replication(3)
            .with_holder_failure(0.25)
            .with_seed(17);
        let report = RoutingSim::new(&series, config).route_all(0, &uniform_workload(&series, 1, 5));
        table.row(vec![
            fmt_f(c),
            fmt_f(params.swarm_radius()),
            fmt_f(report.delivery_rate()),
            report.max_congestion.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    let mut table = Table::new(
        "Ablation: replication factor r (c = 2, 25% holder failure, n = 256)",
        &["r", "delivery rate", "max congestion", "total copies"],
    );
    let params = OverlayParams::with_default_c(n);
    let series = RoutableSeries::new(params, 4, (0..n as u64).map(NodeId));
    for &r in &[1usize, 2, 3, 4, 6] {
        let config = RoutingConfig::default()
            .with_replication(r)
            .with_holder_failure(0.25)
            .with_seed(19);
        let report = RoutingSim::new(&series, config).route_all(0, &uniform_workload(&series, 1, 7));
        table.row(vec![
            r.to_string(),
            fmt_f(report.delivery_rate()),
            report.max_congestion.to_string(),
            report.total_copies.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Small c starves swarms (delivery collapses); growing c or r buys reliability at a\n\
         linear cost in congestion — the trade-off the paper's constants encode."
    );
}
