//! Experiment PARTITION — does the overlay heal a partial partition?
//!
//! The paper's "two steps ahead" maintenance is proved under a uniform
//! communication medium. This experiment splits the id space into two halves
//! joined by a slow, lossy *bridge* ([`Topology::Regions`] over
//! `RegionAssign::halves(n/2)`) and asks the next structural question: does
//! asymmetric delay starve the cross-boundary CREATE/CONNECT handshakes the
//! swarm property depends on, and after a *finite* partition, how fast does
//! the overlay re-knit across the boundary?
//!
//! Three parts, all deterministic (the event engine is sequential and every
//! message fate is a pure function of `(seed, seq)`):
//!
//! * `bridge`: a declarative sweep over bridge latency × bridge loss with
//!   the partition permanent from the end of bootstrap — survival,
//!   participation and swarm size against the intact baseline;
//! * `healing`: a sweep over partition *duration* (a
//!   [`PartitionSchedule`] window that heals at round R) under `n/4`
//!   random churn — does routability come back once the bridge does?
//! * a round-by-round probe (the `extra` payload): for each bridge severity
//!   × duration, step the async harness one boundary at a time and record
//!   when the overlay is routable again and how many cross-region
//!   communication edges exist — `rounds_to_reconnect` against the
//!   two-round rebuild-cadence prediction (the overlay two epochs after the
//!   heal is built entirely from post-heal messages, so reconnection should
//!   take O(1) cadences: ≲ 2·2 rounds + one round of message delay).
//!
//! `--smoke` shrinks every part to a seconds-long CI-sized run whose
//! `BENCH_exp_partition.json` is byte-reproducible — CI runs it twice and
//! diffs.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::sync::Arc;

use serde::Serialize;
use tsa_analysis::{fmt_bool, Table};
use tsa_bench::{experiment_params, experiment_spec, finish, run_sweeps, usage, ExpArgs};
use tsa_core::AsyncMaintenanceHarness;
use tsa_obs::{ObsHandle, ObsRecorder};
use tsa_scenario::{
    AdversarySpec, ChurnSpec, LatencyModel, NetModel, PartitionSchedule, RegionAssign, Topology,
};
use tsa_sim::NullAdversary;
use tsa_sweep::{RoundsSpec, SweepSpec};

/// The benign intra-region model: a 0.1-round constant delay (sub-round, so
/// the intact network is provably the synchronous engine).
fn intra() -> NetModel {
    NetModel::new(LatencyModel::constant(100))
}

/// A bridge model: constant `ticks` latency plus drop probability `loss`.
fn bridge(ticks: u64, loss: f64) -> NetModel {
    NetModel {
        latency: LatencyModel::constant(ticks),
        jitter: 0,
        loss,
    }
}

/// The two-halves assignment for `n` initial nodes (joiners land right).
fn halves(n: usize) -> RegionAssign {
    RegionAssign::halves(n as u64 / 2)
}

/// One row of the machine-readable probe results stored in the BENCH
/// document's `extra` field.
#[derive(Serialize)]
struct ProbeRow {
    /// Network size.
    n: usize,
    /// Bridge severity label (`cut`, `slow`, ...).
    bridge: String,
    /// Partition length in rounds (`u64::MAX` = never heals).
    duration: u64,
    /// First degraded round (== end of bootstrap).
    partition_from: u64,
    /// First healed round.
    heal_at: u64,
    /// Whether the final report is routable.
    routable_end: bool,
    /// Routable in the last partitioned round? (For a permanent partition
    /// the sample point is the final round, which is still partitioned.)
    routable_during: bool,
    /// Cross-region communication edges in the last partitioned round
    /// (sampled like `routable_during`).
    cross_edges_during: usize,
    /// Cross-region communication edges in the final round.
    cross_edges_end: usize,
    /// Rounds after `heal_at` until the overlay was routable *and* talking
    /// across the boundary again (`None` = never within the run).
    rounds_to_reconnect: Option<u64>,
    /// The two-round-cadence prediction the observation is compared to.
    predicted_max: u64,
    /// Age distribution (in maturity ages) of the nodes surfaced by
    /// neighbour repair over the whole run, keyed by the sampled node's
    /// region — the `tsa-obs` per-region probe. A starved bridge shows up
    /// here before it shows up in routability: repair keeps resurfacing the
    /// same old cohort on the far side.
    repair_sample_ages: Vec<RegionAges>,
}

/// Per-region rollup of the `proto.repair_sample_age` histogram.
#[derive(Serialize)]
struct RegionAges {
    /// The region of the sampled (surfaced) node.
    region: u32,
    /// Samples surfaced from this region.
    samples: u64,
    /// Mean age of those samples, in maturity ages.
    mean_age: f64,
    /// Oldest sample, in maturity ages.
    max_age: u64,
}

/// The `extra` payload of `BENCH_exp_partition.json`.
#[derive(Serialize)]
struct PartitionExtra {
    /// One row per probed (bridge, duration) pair.
    probes: Vec<ProbeRow>,
}

/// Steps an async harness round by round through a scheduled partition and
/// measures when the overlay reconnects across the boundary.
fn probe(n: usize, seed: u64, label: &str, net: NetModel, duration: u64) -> ProbeRow {
    let params = experiment_params(n);
    let boot = params.bootstrap_rounds();
    let heal_at = boot.saturating_add(duration);
    let schedule = if duration == u64::MAX {
        PartitionSchedule::starting_at(boot)
    } else {
        PartitionSchedule::window(boot, heal_at)
    };
    let topology = Topology::regions_with_schedule(halves(n), intra(), net, schedule);
    let mut harness = AsyncMaintenanceHarness::assemble_with_topology(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        topology,
    );
    // The per-region sampling-age probe: deterministic (the event engine is
    // sequential), so its rows are part of the byte-reproducible artifact.
    let recorder = Arc::new(ObsRecorder::new());
    harness.set_obs(ObsHandle::new(recorder.clone()));
    harness.run_bootstrap();

    // The cadence prediction: the epoch current two epochs after the heal is
    // built entirely from post-heal messages (the protocol maintains epoch
    // e+2 during epoch e), so the overlay should re-knit within two 2-round
    // rebuild cadences plus one round of message delay.
    let predicted_max = 2 * 2 + 1;
    let recovery_window = 3 * params.maturity_age();
    let mut routable_during = false;
    let mut cross_edges_during = 0usize;
    let mut rounds_to_reconnect = None;
    let last_round = if duration == u64::MAX {
        boot + recovery_window
    } else {
        heal_at + recovery_window
    };
    while harness.round() < last_round {
        harness.step();
        let completed = harness.round() - 1;
        if duration != u64::MAX && completed + 1 == heal_at {
            // The last boundary whose sends still crossed a degraded bridge.
            let report = harness.report();
            routable_during = report.is_routable();
            cross_edges_during = harness.cross_region_edges();
        }
        if completed >= heal_at && rounds_to_reconnect.is_none() {
            let report = harness.report();
            if report.is_routable() && harness.cross_region_edges() > 0 {
                rounds_to_reconnect = Some(completed - heal_at);
            }
        }
    }
    let report = harness.report();
    if duration == u64::MAX {
        // A permanent partition never reaches a heal boundary; its "during"
        // sample is the final round, which is still partitioned.
        routable_during = report.is_routable();
        cross_edges_during = harness.cross_region_edges();
    }
    let repair_sample_ages = recorder
        .det_snapshot()
        .region_histograms
        .iter()
        .filter(|r| r.histogram.name == "proto.repair_sample_age")
        .map(|r| RegionAges {
            region: r.region,
            samples: r.histogram.count,
            mean_age: if r.histogram.count == 0 {
                0.0
            } else {
                r.histogram.sum as f64 / r.histogram.count as f64
            },
            max_age: r.histogram.max,
        })
        .collect();
    ProbeRow {
        n,
        bridge: label.to_string(),
        duration,
        partition_from: boot,
        heal_at,
        routable_end: report.is_routable(),
        routable_during,
        cross_edges_during,
        cross_edges_end: harness.cross_region_edges(),
        rounds_to_reconnect,
        predicted_max,
        repair_sample_ages,
    }
}

fn main() {
    let exp = "exp_partition";
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "overlay survival and healing across a partial partition: two halves of \
                 the id space joined by a slow, lossy, scheduled bridge";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized grid (a few seconds end to end)",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    let n = 48usize;
    let boot = experiment_params(n).bootstrap_rounds();
    let permanent = PartitionSchedule::starting_at(boot);
    let regions =
        |net: NetModel| Topology::regions_with_schedule(halves(n), intra(), net, permanent);

    // Part 1 — the bridge grid: intact baseline + bridge latency × loss,
    // partition permanent from the end of bootstrap.
    let (latencies, losses, seeds, rounds): (&[u64], &[f64], u64, RoundsSpec) = if smoke {
        (&[2500], &[0.0, 0.75], 1, RoundsSpec::MaturityAges(1))
    } else {
        (
            &[1000, 2500, 5000],
            &[0.0, 0.25, 0.75],
            2,
            RoundsSpec::MaturityAges(2),
        )
    };
    let mut bridge_topologies = vec![Topology::global(intra())];
    for &ticks in latencies {
        for &loss in losses {
            bridge_topologies.push(regions(bridge(ticks, loss)));
        }
    }
    let bridge_sweep = SweepSpec::new("bridge", experiment_spec(n))
        .over_churn([ChurnSpec::none()])
        .over_topology(bridge_topologies)
        .rounds(rounds)
        .seeds(101, seeds);

    // Part 2 — healing: a severe bridge for a finite window under `n/4`
    // random churn; the duration axis is encoded in the schedule.
    let durations: &[u64] = if smoke { &[2, 6] } else { &[2, 6, 12] };
    let severe = bridge(2500, 0.5);
    let mut healing_topologies: Vec<Topology> = durations
        .iter()
        .map(|&d| {
            Topology::regions_with_schedule(
                halves(n),
                intra(),
                severe,
                PartitionSchedule::window(boot, boot + d),
            )
        })
        .collect();
    healing_topologies.push(regions(severe));
    let healing_sweep = SweepSpec::new("healing", experiment_spec(n))
        .over_churn([ChurnSpec::fraction(1, 4)])
        .over_adversaries([AdversarySpec::random(1, 223)])
        .over_topology(healing_topologies)
        .rounds(rounds)
        .seeds(103, seeds);

    let runs = run_sweeps(exp, &args, vec![bridge_sweep, healing_sweep]);

    // Part 3 — the round-by-round reconnection probe.
    let severities: &[(&str, NetModel)] = if smoke {
        &[(
            "cut",
            NetModel {
                latency: LatencyModel::constant(1000),
                jitter: 0,
                loss: 1.0,
            },
        )]
    } else {
        &[
            (
                "cut",
                NetModel {
                    latency: LatencyModel::constant(1000),
                    jitter: 0,
                    loss: 1.0,
                },
            ),
            ("slow", bridge(2500, 0.5)),
        ]
    };
    let probe_durations: &[u64] = if smoke {
        &[2, 6]
    } else {
        &[2, 6, 12, u64::MAX]
    };
    let mut probes = Vec::new();
    let mut table = Table::new(
        "Reconnection after a finite partition (probe, no churn)",
        &[
            "bridge",
            "duration",
            "heal at",
            "routable during",
            "x-edges during",
            "reconnect (rounds)",
            "predicted ≤",
            "x-edges end",
            "routable end",
            "repair age μ (per region)",
        ],
    );
    for &(label, net) in severities {
        for &duration in probe_durations {
            let row = probe(n, 41, label, net, duration);
            table.row(vec![
                row.bridge.clone(),
                if duration == u64::MAX {
                    "∞".to_string()
                } else {
                    duration.to_string()
                },
                if duration == u64::MAX {
                    "-".to_string()
                } else {
                    row.heal_at.to_string()
                },
                fmt_bool(row.routable_during),
                row.cross_edges_during.to_string(),
                row.rounds_to_reconnect
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "never".to_string()),
                row.predicted_max.to_string(),
                row.cross_edges_end.to_string(),
                fmt_bool(row.routable_end),
                row.repair_sample_ages
                    .iter()
                    .map(|r| format!("r{}:{:.2}", r.region, r.mean_age))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]);
            probes.push(row);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "The two-steps-ahead cadence predicts reconnection within two 2-round rebuild\n\
         cycles (+1 round of delay) once the bridge heals: the epoch current two epochs\n\
         after the heal is built entirely from post-heal CREATE/CONNECT messages. The\n\
         probe measures the observed bound; the healing sweep shows the same recovery\n\
         holds under n/4 random churn."
    );

    let extra = PartitionExtra { probes };
    finish(exp, &args, &runs, serde::Serialize::to_value(&extra));
}
