//! Experiments E7–E11 — Theorem 14 and its supporting lemmas, measured on the
//! full message-level protocol, as two declarative sweeps:
//!
//! * `churn`: routability under `n/4`-per-window churn for three adversaries
//!   over the `n` axis (Theorem 14 / Lemmas 15, 16, 20, 22);
//! * `congestion`: per-node message load versus `log³ n` in churn-free steady
//!   state (Lemma 24).

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use tsa_analysis::{fmt_f, Summary, Table};
use tsa_bench::{experiment_spec, finish, run_sweeps, ExpArgs};
use tsa_scenario::{AdversarySpec, ChurnSpec};
use tsa_sweep::{RoundsSpec, SweepSpec};

fn main() {
    let exp = "exp_maintenance";
    let args = ExpArgs::parse(
        exp,
        "Theorem 14: routability, connect load and congestion under churn",
    );

    let churn = SweepSpec::new("churn", experiment_spec(48))
        .over_n([48, 96])
        .over_churn([ChurnSpec::fraction(1, 4)])
        .over_adversaries([
            AdversarySpec::random(1, 101),
            AdversarySpec::targeted(1, 102),
            AdversarySpec::degree(1, 103),
        ])
        .rounds(RoundsSpec::MaturityAges(3))
        .seeds(7, 1);

    let congestion = SweepSpec::new("congestion", experiment_spec(48))
        .over_n([48, 96, 160])
        .over_churn([ChurnSpec::none()])
        .rounds(RoundsSpec::Fixed(6))
        .seeds(5, 1);

    let runs = run_sweeps(exp, &args, vec![churn, congestion]);

    // E11 detail the aggregate cannot show: steady-state (post-bootstrap)
    // means need the per-round history, which the in-memory records keep.
    let mut table = Table::new(
        "Lemma 24 (measured): per-node message load vs log³ n (steady state, no churn)",
        &[
            "n",
            "lambda",
            "mean msgs/node/round",
            "peak msgs/node/round",
            "peak / λ³",
        ],
    );
    for record in &runs[1].records {
        let spec = &record.outcome.spec;
        let params = spec.maintenance_params();
        let m = record
            .outcome
            .maintenance
            .as_ref()
            .expect("maintained cell");
        let history = m.metrics.as_ref().expect("in-memory records keep history");
        let steady: Vec<f64> = history
            .rounds()
            .iter()
            .skip(params.bootstrap_rounds() as usize)
            .map(|r| r.mean_received_per_node)
            .collect();
        let peak = history
            .rounds()
            .iter()
            .skip(params.bootstrap_rounds() as usize)
            .map(|r| r.max_received_per_node)
            .max()
            .unwrap_or(0);
        let l = params.lambda() as f64;
        table.row(vec![
            spec.n.to_string(),
            params.lambda().to_string(),
            fmt_f(Summary::of(&steady).mean),
            peak.to_string(),
            fmt_f(peak as f64 / (l * l * l)),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "The targeted and degree attacks do no better than random churn (Lemma 16), the\n\
         connect load per mature node stays within 2δ (Lemma 22), and the peak per-node\n\
         message load stays a small constant multiple of λ³ as n grows (Lemma 24)."
    );
    finish(exp, &args, &runs, serde_json::Value::Null);
}
