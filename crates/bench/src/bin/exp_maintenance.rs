//! Experiments E7–E11 — Theorem 14 and its supporting lemmas, measured on the
//! full message-level protocol:
//!
//! * E7 (Theorem 14 / Lemma 15): routability over time under the paper's churn
//!   rate, for three adversaries;
//! * E8 (Lemma 16): the lateness ablation — 2-late targeted churn is no better
//!   than random churn;
//! * E10 (Lemmas 20/22): fresh-node connect load on mature nodes stays ≤ 2δ;
//! * E11 (Lemma 24): per-node congestion versus `log³ n`.

use tsa_adversary::{DegreeAttackAdversary, RandomChurnAdversary, TargetedSwarmAdversary};
use tsa_analysis::{fmt_bool, fmt_f, Summary, Table};
use tsa_bench::experiment_params;
use tsa_core::MaintenanceHarness;
use tsa_sim::{Adversary, ChurnRules};

fn churn_rules(params: &tsa_core::MaintenanceParams) -> ChurnRules {
    ChurnRules {
        max_events: Some(params.overlay.n / 4),
        window: params.overlay.churn_window(),
        bootstrap_rounds: params.bootstrap_rounds(),
        ..ChurnRules::default()
    }
}

fn run_one<A: Adversary>(n: usize, adversary: A, seed: u64, table: &mut Table) {
    let params = experiment_params(n);
    let name = adversary.name();
    let mut harness = MaintenanceHarness::with_rules(
        params,
        adversary,
        seed,
        churn_rules(&params),
        params.paper_lateness(),
    );
    harness.run_bootstrap();
    harness.run(3 * params.maturity_age());
    let report = harness.report();
    let connect_load = harness.connect_load();
    let max_connects = connect_load.values().copied().max().unwrap_or(0);
    let lambda = params.lambda() as f64;
    table.row(vec![
        n.to_string(),
        name.to_string(),
        fmt_bool(report.connected),
        fmt_f(report.largest_component_fraction),
        fmt_f(report.participation_rate),
        report.min_swarm_size.to_string(),
        format!("{} (2δ = {})", max_connects, params.connect_slots()),
        report.max_congestion.to_string(),
        fmt_f(report.max_congestion as f64 / (lambda * lambda * lambda)),
    ]);
}

fn main() {
    let mut table = Table::new(
        "Theorem 14 (measured): overlay health after 3·(2λ+4) churned rounds at rate n/4 per window",
        &[
            "n", "adversary", "connected", "largest comp", "participation", "min swarm",
            "max connects/node (Lemma 22)", "max congestion (Lemma 24)", "congestion / λ³",
        ],
    );
    for &n in &[48usize, 96] {
        run_one(n, RandomChurnAdversary::new(1, 101), 7, &mut table);
        run_one(n, TargetedSwarmAdversary::new(1, 102), 7, &mut table);
        run_one(n, DegreeAttackAdversary::new(1, 103), 7, &mut table);
    }
    println!("{}", table.to_markdown());

    // E11: congestion scaling with n (no churn, pure protocol cost).
    let mut table = Table::new(
        "Lemma 24 (measured): per-node message load vs log³ n (steady state, no churn)",
        &["n", "lambda", "mean msgs/node/round", "peak msgs/node/round", "peak / λ³"],
    );
    for &n in &[48usize, 96, 160] {
        let params = experiment_params(n);
        let mut harness = MaintenanceHarness::without_churn(params, 5);
        harness.run_bootstrap();
        harness.run(6);
        let rounds = harness.metrics().rounds();
        let steady: Vec<&tsa_sim::RoundMetrics> = rounds
            .iter()
            .skip(params.bootstrap_rounds() as usize)
            .collect();
        let mean = Summary::of(&steady.iter().map(|m| m.mean_received_per_node).collect::<Vec<_>>());
        let peak = steady.iter().map(|m| m.max_received_per_node).max().unwrap_or(0);
        let l = params.lambda() as f64;
        table.row(vec![
            n.to_string(),
            params.lambda().to_string(),
            fmt_f(mean.mean),
            peak.to_string(),
            fmt_f(peak as f64 / (l * l * l)),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "The targeted and degree attacks do no better than random churn (Lemma 16), the\n\
         connect load per mature node stays within 2δ (Lemma 22), and the peak per-node\n\
         message load stays a small constant multiple of λ³ as n grows (Lemma 24)."
    );
}
