//! Experiments E7–E11 — Theorem 14 and its supporting lemmas, measured on the
//! full message-level protocol:
//!
//! * E7 (Theorem 14 / Lemma 15): routability over time under the paper's churn
//!   rate, for three adversaries;
//! * E8 (Lemma 16): the lateness ablation — 2-late targeted churn is no better
//!   than random churn;
//! * E10 (Lemmas 20/22): fresh-node connect load on mature nodes stays ≤ 2δ;
//! * E11 (Lemma 24): per-node congestion versus `log³ n`.

use tsa_analysis::{fmt_bool, fmt_f, Summary, Table};
use tsa_bench::{experiment_scenario, write_bench_json};
use tsa_scenario::{AdversarySpec, ChurnSpec, ScenarioOutcome};

fn run_one(
    n: usize,
    adversary: AdversarySpec,
    seed: u64,
    table: &mut Table,
    outcomes: &mut Vec<ScenarioOutcome>,
) {
    let mut run = experiment_scenario(n)
        .churn(ChurnSpec::budget(n / 4))
        .adversary(adversary)
        .seed(seed)
        .build();
    let params = *run.params();
    run.run_bootstrap();
    run.run(3 * params.maturity_age());
    let report = run.report();
    let connect_load = run.connect_load();
    let max_connects = connect_load.values().copied().max().unwrap_or(0);
    let lambda = params.lambda() as f64;
    table.row(vec![
        n.to_string(),
        adversary.label().to_string(),
        fmt_bool(report.connected),
        fmt_f(report.largest_component_fraction),
        fmt_f(report.participation_rate),
        report.min_swarm_size.to_string(),
        format!("{} (2δ = {})", max_connects, params.connect_slots()),
        report.max_congestion.to_string(),
        fmt_f(report.max_congestion as f64 / (lambda * lambda * lambda)),
    ]);
    outcomes.push(run.into_outcome());
}

fn main() {
    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
    let mut table = Table::new(
        "Theorem 14 (measured): overlay health after 3·(2λ+4) churned rounds at rate n/4 per window",
        &[
            "n", "adversary", "connected", "largest comp", "participation", "min swarm",
            "max connects/node (Lemma 22)", "max congestion (Lemma 24)", "congestion / λ³",
        ],
    );
    for &n in &[48usize, 96] {
        run_one(
            n,
            AdversarySpec::random(1, 101),
            7,
            &mut table,
            &mut outcomes,
        );
        run_one(
            n,
            AdversarySpec::targeted(1, 102),
            7,
            &mut table,
            &mut outcomes,
        );
        run_one(
            n,
            AdversarySpec::degree(1, 103),
            7,
            &mut table,
            &mut outcomes,
        );
    }
    println!("{}", table.to_markdown());

    // E11: congestion scaling with n (no churn, pure protocol cost).
    let mut table = Table::new(
        "Lemma 24 (measured): per-node message load vs log³ n (steady state, no churn)",
        &[
            "n",
            "lambda",
            "mean msgs/node/round",
            "peak msgs/node/round",
            "peak / λ³",
        ],
    );
    for &n in &[48usize, 96, 160] {
        let mut run = experiment_scenario(n)
            .churn(ChurnSpec::none())
            .seed(5)
            .build();
        let params = *run.params();
        run.run_bootstrap();
        run.run(6);
        let steady: Vec<f64> = run
            .metrics()
            .rounds()
            .iter()
            .skip(params.bootstrap_rounds() as usize)
            .map(|m| m.mean_received_per_node)
            .collect();
        let peak = run
            .metrics()
            .rounds()
            .iter()
            .skip(params.bootstrap_rounds() as usize)
            .map(|m| m.max_received_per_node)
            .max()
            .unwrap_or(0);
        let mean = Summary::of(&steady);
        let l = params.lambda() as f64;
        table.row(vec![
            n.to_string(),
            params.lambda().to_string(),
            fmt_f(mean.mean),
            peak.to_string(),
            fmt_f(peak as f64 / (l * l * l)),
        ]);
        outcomes.push(run.into_outcome());
    }
    println!("{}", table.to_markdown());
    println!(
        "The targeted and degree attacks do no better than random churn (Lemma 16), the\n\
         connect load per mature node stays within 2δ (Lemma 22), and the peak per-node\n\
         message load stays a small constant multiple of λ³ as n grows (Lemma 24)."
    );
    write_bench_json("exp_maintenance", &outcomes);
}
