//! Experiment NET — the overlay on a real transport, twinned with the model.
//!
//! Every other experiment runs the protocol inside a simulator. This one
//! runs it over loopback TCP: each node owns a real socket, every protocol
//! message travels as a length-prefixed frame, and rounds are wall-clock
//! intervals (`tsa-net`'s `NetRunner`). Two families of results come out:
//!
//! * **deterministic** — the twin contract. The transport records every
//!   message's fate in a `MessageTrace`; replaying that trace through the
//!   event engine must reproduce the transport run's protocol state exactly
//!   (report, membership, per-node snapshots), and the twin's `NetStats`
//!   must account the same message count. These booleans are invariant
//!   across machines and load — a slow CI records different fates, but the
//!   replay still matches — so CI byte-compares this section against the
//!   committed artifact.
//! * **timing** — what the wall clock saw: rounds/s, loopback frames/s,
//!   bytes on the wire, and the frames the deadline scheduler lost. These
//!   fields depend on the machine and are *excluded* from byte-identity
//!   checks.
//!
//! `--smoke` shrinks the grid to the CI-sized run whose deterministic
//! section is the committed `BENCH_exp_net.json`.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::{Duration, Instant};

use serde::Serialize;
use tsa_adversary::{RandomChurnAdversary, TargetedSwarmAdversary};
use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_bench::{experiment_params, usage, write_bench_json, write_bench_json_at, ExpArgs};
use tsa_core::{AsyncMaintenanceHarness, NetMaintenanceHarness};
use tsa_sim::{Adversary, NullAdversary};

/// One cell of the grid: an adversary regime at a network size and seed.
#[derive(Clone, Copy)]
struct NetCell {
    label: &'static str,
    adversary: AdvKind,
    n: usize,
    rounds: u64,
    seed: u64,
}

/// The adversary regimes the transport is exercised under.
#[derive(Clone, Copy)]
enum AdvKind {
    Null,
    Random(usize),
    Targeted(usize),
}

/// The milliseconds of wall clock one protocol round occupies. Generous for
/// loopback — each round's sends comfortably land before the next boundary —
/// which keeps the runs meaningful (mostly-delivered) without depending on it.
const ROUND_MS: u64 = 15;

/// The machine-invariant half of one cell's result (see the module docs).
#[derive(Serialize)]
struct DeterministicCell {
    label: String,
    n: usize,
    rounds: u64,
    seed: u64,
    round_ms: u64,
    /// Replaying the recorded trace reproduced the transport's report,
    /// membership and every node snapshot.
    outcome_match: bool,
    /// The trace holds exactly one fate per message the transport sent.
    trace_complete: bool,
    /// The replay's `NetStats.sent` equals the transport's — the simulator
    /// predicts the on-wire message count exactly.
    sent_matches_twin: bool,
}

/// The wall-clock half of one cell's result (machine-dependent).
#[derive(Serialize)]
struct TimingCell {
    label: String,
    n: usize,
    routable: bool,
    elapsed_ms: u64,
    rounds_per_sec: f64,
    msgs_per_sec: f64,
    /// Protocol messages handed to the transport.
    sent: u64,
    /// Messages that missed their round deadline (or a closed socket).
    lost: u64,
    /// Frames actually written to loopback sockets.
    frames_sent: u64,
    /// Bytes actually written to loopback sockets.
    bytes_sent: u64,
    /// Mean frame size, header included.
    bytes_per_frame: f64,
}

/// The `BENCH_exp_net.json` document.
#[derive(Serialize)]
struct NetDoc {
    exp: String,
    smoke: bool,
    deterministic: DeterministicDoc,
    timing: TimingDoc,
}

#[derive(Serialize)]
struct DeterministicDoc {
    all_match: bool,
    cells: Vec<DeterministicCell>,
}

#[derive(Serialize)]
struct TimingDoc {
    cells: Vec<TimingCell>,
}

fn grid(smoke: bool) -> Vec<NetCell> {
    let mut cells = vec![
        NetCell {
            label: "null",
            adversary: AdvKind::Null,
            n: 16,
            rounds: 4,
            seed: 17,
        },
        NetCell {
            label: "random-churn",
            adversary: AdvKind::Random(2),
            n: 16,
            rounds: 6,
            seed: 5,
        },
        NetCell {
            label: "targeted-swarm",
            adversary: AdvKind::Targeted(2),
            n: 16,
            rounds: 6,
            seed: 7,
        },
    ];
    if !smoke {
        cells.extend([
            NetCell {
                label: "null",
                adversary: AdvKind::Null,
                n: 32,
                rounds: 6,
                seed: 17,
            },
            NetCell {
                label: "random-churn",
                adversary: AdvKind::Random(3),
                n: 32,
                rounds: 8,
                seed: 42,
            },
            NetCell {
                label: "targeted-swarm",
                adversary: AdvKind::Targeted(2),
                n: 32,
                rounds: 8,
                seed: 31,
            },
        ]);
    }
    cells
}

/// Runs one cell on the transport, replays its trace through the event
/// engine, and reports both halves of the comparison.
fn run_cell<A: Adversary>(
    cell: &NetCell,
    make_adversary: impl Fn() -> A,
) -> (DeterministicCell, TimingCell) {
    let params = experiment_params(cell.n);
    let total_rounds = params.bootstrap_rounds() + cell.rounds;
    let mut real = NetMaintenanceHarness::assemble(
        params,
        make_adversary(),
        cell.seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(ROUND_MS),
    );
    let start = Instant::now();
    real.run(total_rounds);
    let elapsed = start.elapsed();

    let stats = real.net_stats();
    let wire = real.wire_stats();
    let trace = real.trace();
    let trace_complete = trace.len() as u64 == stats.sent;

    let mut twin = AsyncMaintenanceHarness::assemble_replay(
        params,
        make_adversary(),
        cell.seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        trace,
    );
    twin.run(total_rounds);
    let outcome_match = real.runner().member_ids() == twin.simulator().member_ids()
        && serde_json::to_string(&real.report()).unwrap()
            == serde_json::to_string(&twin.report()).unwrap()
        && serde_json::to_string(&real.snapshots()).unwrap()
            == serde_json::to_string(&twin.snapshots()).unwrap();
    let sent_matches_twin = twin.net_stats().sent == stats.sent;

    let secs = elapsed.as_secs_f64().max(1e-9);
    (
        DeterministicCell {
            label: cell.label.to_string(),
            n: cell.n,
            rounds: total_rounds,
            seed: cell.seed,
            round_ms: ROUND_MS,
            outcome_match,
            trace_complete,
            sent_matches_twin,
        },
        TimingCell {
            label: cell.label.to_string(),
            n: cell.n,
            routable: real.report().is_routable(),
            elapsed_ms: elapsed.as_millis() as u64,
            rounds_per_sec: total_rounds as f64 / secs,
            msgs_per_sec: wire.frames_sent as f64 / secs,
            sent: stats.sent,
            lost: stats.lost,
            frames_sent: wire.frames_sent,
            bytes_sent: wire.bytes_sent,
            bytes_per_frame: if wire.frames_sent == 0 {
                0.0
            } else {
                wire.bytes_sent as f64 / wire.frames_sent as f64
            },
        },
    )
}

fn main() {
    let exp = "exp_net";
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "the maintained overlay over loopback TCP: wall-clock throughput, bytes \
                 on the wire, and the deterministic-twin replay check";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized grid (a few seconds end to end)",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    let cells = grid(smoke);
    if args.list {
        // This experiment is not sweep-driven, so it lists its own grid.
        println!("{exp}: 1 grid, {} cell(s)", cells.len());
        for (i, cell) in cells.iter().enumerate() {
            let rounds = experiment_params(cell.n).bootstrap_rounds() + cell.rounds;
            println!(
                "  [{i:>3}] net n={} adv={} seed={} rounds={rounds} round_ms={ROUND_MS}",
                cell.n, cell.label, cell.seed
            );
        }
        return;
    }

    let mut deterministic = Vec::new();
    let mut timing = Vec::new();
    for cell in &cells {
        let (d, t) = match cell.adversary {
            AdvKind::Null => run_cell(cell, || NullAdversary),
            AdvKind::Random(k) => run_cell(cell, || RandomChurnAdversary::new(k, cell.seed)),
            AdvKind::Targeted(k) => run_cell(cell, || TargetedSwarmAdversary::new(k, cell.seed)),
        };
        deterministic.push(d);
        timing.push(t);
    }

    let mut table = Table::new(
        "Loopback transport vs its deterministic twin",
        &[
            "n",
            "adversary",
            "twin match",
            "routable",
            "rounds/s",
            "msgs/s",
            "wire bytes",
            "lost",
        ],
    );
    for (d, t) in deterministic.iter().zip(&timing) {
        table.row(vec![
            t.n.to_string(),
            t.label.clone(),
            fmt_bool(d.outcome_match && d.trace_complete && d.sent_matches_twin),
            fmt_bool(t.routable),
            fmt_f(t.rounds_per_sec),
            fmt_f(t.msgs_per_sec),
            t.bytes_sent.to_string(),
            t.lost.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "The twin-match column is the transport's correctness contract: the recorded\n\
         fates, replayed through the event engine, reproduce the loopback run's protocol\n\
         state exactly. Timing columns are machine-dependent and excluded from CI's\n\
         byte-identity checks."
    );

    let all_match = deterministic
        .iter()
        .all(|d| d.outcome_match && d.trace_complete && d.sent_matches_twin);
    let doc = NetDoc {
        exp: exp.to_string(),
        smoke,
        deterministic: DeterministicDoc {
            all_match,
            cells: deterministic,
        },
        timing: TimingDoc { cells: timing },
    };
    match &args.out {
        Some(dir) => {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("warning: could not create {}: {err}", dir.display());
            }
            write_bench_json_at(&dir.join(format!("BENCH_{exp}.json")), &doc);
        }
        None => write_bench_json(exp, &doc),
    }
    if !all_match {
        eprintln!("{exp}: a transport run diverged from its deterministic twin");
        std::process::exit(1);
    }
}
