//! Experiment PROFILE — the `tsa-obs` observability layer, exercised and
//! pinned across all three schedulers.
//!
//! One maintained run per scheduler — the synchronous round engine, the
//! virtual-time event engine under a sub-round constant latency, and the
//! loopback-TCP transport — each under seeded random churn with an
//! [`ObsRecorder`] attached. Two families of results come out, mirroring
//! `exp_net`:
//!
//! * **deterministic** — the protocol-derived counters and power-of-two
//!   histograms (`proto.*`, plus each simulator's own counters) of the round
//!   and event engines. These are pure functions of `(seed, protocol)`:
//!   byte-identical across machines, thread caps and `TSA_THREADS` settings,
//!   so CI runs this binary twice at different thread counts and
//!   byte-compares the section. The section also carries the cross-checks:
//!   thread-cap invariance of the round engine, `proto.*` identity between
//!   the round engine and a sub-round-latency event run, the transport's
//!   twin-counter pin, and the streaming-vs-full metrics digest pin.
//! * **timing** — the wall-clock phase spans (`sim.*`, `event.*`, `net.*`):
//!   where each scheduler actually spends its time. The *transport's*
//!   counter snapshot also lives here: wall-clock scheduling makes its
//!   protocol trace run-dependent (a frame that lands just before a round
//!   boundary in one run lands just after it in the next), so its raw
//!   counters can never be byte-compared. Its deterministic claim is the
//!   twin pin instead — replaying the recorded message fates through the
//!   event engine must reproduce the transport's `proto.*` counters and
//!   histograms, whatever those fates were (`proto.dropped` excluded: the
//!   replay attributes every undelivered fate as a drop, the transport only
//!   the frames it actively lost).
//!
//! `--smoke` shrinks the grid to a seconds-long CI-sized run.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use tsa_adversary::RandomChurnAdversary;
use tsa_analysis::{fmt_bool, Table};
use tsa_bench::{
    experiment_params, experiment_scenario, usage, write_bench_json, write_bench_json_at, ExpArgs,
};
use tsa_core::{AsyncMaintenanceHarness, MaintenanceHarness, NetMaintenanceHarness};
use tsa_obs::{DetSnapshot, ObsHandle, ObsRecorder, TimingSnapshot};
use tsa_scenario::{AdversarySpec, LatencyModel, MetricsMode, NetModel};

/// The milliseconds of wall clock one transport round occupies. Generous for
/// loopback, so the runs stay meaningful (mostly-delivered) without the
/// checks depending on it — the twin pin holds whatever the deadlines did.
const ROUND_MS: u64 = 25;

/// Departures per round the seeded churn adversary injects — enough to keep
/// neighbor repair (and its sampling-age probe) busy every round.
const CHURN_PER_ROUND: usize = 2;

/// The grid: one (n, seed, measured-rounds) point per scheduler.
struct Grid {
    /// Round + event engines run at this size.
    n: usize,
    /// The transport runs smaller (wall-clock bound).
    net_n: usize,
    seed: u64,
    rounds: u64,
    net_rounds: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            n: 48,
            net_n: 16,
            seed: 29,
            rounds: 4,
            net_rounds: 4,
        }
    } else {
        Grid {
            n: 64,
            net_n: 16,
            seed: 29,
            rounds: 8,
            net_rounds: 6,
        }
    }
}

/// One scheduler's deterministic observability state.
#[derive(Serialize)]
struct EngineDet {
    engine: String,
    n: usize,
    seed: u64,
    /// Total rounds executed (bootstrap included).
    rounds: u64,
    snapshot: DetSnapshot,
}

/// The cross-checks pinned by this experiment (all must hold).
#[derive(Serialize)]
struct Checks {
    /// The round engine's deterministic state is byte-identical under
    /// thread caps 1 and 2 (counter/histogram updates are commutative).
    thread_caps_identical: bool,
    /// `proto.*` state of a sub-round-latency event run is byte-identical
    /// to the round engine's.
    event_matches_round: bool,
    /// Replaying the transport's recorded message fates through the event
    /// engine reproduces the transport's `proto.*` state exactly
    /// (`proto.dropped` excluded — drop *attribution* differs by design).
    net_twin_counters_match: bool,
    /// `MetricsMode::Streaming` folds to the exact `MetricsSummary` of
    /// `MetricsMode::Full`.
    streaming_digest_matches_full: bool,
}

/// The machine-invariant half of `BENCH_exp_profile.json`.
#[derive(Serialize)]
struct DeterministicDoc {
    all_checks_pass: bool,
    checks: Checks,
    round: EngineDet,
    event: EngineDet,
}

/// One scheduler's wall-clock phase spans (machine-dependent).
#[derive(Serialize)]
struct EngineTiming {
    engine: String,
    elapsed_ms: u64,
    spans: TimingSnapshot,
}

/// The wall-clock half of `BENCH_exp_profile.json`.
#[derive(Serialize)]
struct TimingDoc {
    engines: Vec<EngineTiming>,
    /// The transport's counters/histograms: run-dependent (see the module
    /// docs), so they live here, outside the byte-compared section. The
    /// twin pin in `deterministic.checks` is their correctness contract.
    net: EngineDet,
}

/// The `BENCH_exp_profile.json` document.
#[derive(Serialize)]
struct ProfileDoc {
    exp: String,
    smoke: bool,
    deterministic: DeterministicDoc,
    timing: TimingDoc,
}

/// Runs the round engine with an [`ObsRecorder`] under a rayon thread cap.
fn round_run(n: usize, seed: u64, rounds: u64, cap: usize) -> (DetSnapshot, TimingSnapshot, u64) {
    rayon::with_thread_cap(cap, || {
        let params = experiment_params(n);
        let mut h = MaintenanceHarness::assemble(
            params,
            RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        );
        let rec = Arc::new(ObsRecorder::new());
        h.set_obs(ObsHandle::new(rec.clone()));
        let start = Instant::now();
        h.run_bootstrap();
        h.run(rounds);
        (
            rec.det_snapshot(),
            rec.timing_snapshot(),
            start.elapsed().as_millis() as u64,
        )
    })
}

/// Runs the event engine under a sub-round constant latency (0.5 rounds):
/// every message still lands by its next boundary, so the protocol trace —
/// and therefore every `proto.*` counter — must match the round engine's.
fn event_run(n: usize, seed: u64, rounds: u64) -> (DetSnapshot, TimingSnapshot, u64) {
    let params = experiment_params(n);
    let mut h = AsyncMaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        NetModel::new(LatencyModel::constant(500)),
    );
    let rec = Arc::new(ObsRecorder::new());
    h.set_obs(ObsHandle::new(rec.clone()));
    let start = Instant::now();
    h.run_bootstrap();
    h.run(rounds);
    (
        rec.det_snapshot(),
        rec.timing_snapshot(),
        start.elapsed().as_millis() as u64,
    )
}

/// Runs the loopback transport with an [`ObsRecorder`], then replays its
/// recorded trace through the event-engine twin with its own recorder.
/// Returns (transport snapshot, twin snapshot, spans, elapsed ms).
fn net_run(n: usize, seed: u64, rounds: u64) -> (DetSnapshot, DetSnapshot, TimingSnapshot, u64) {
    let params = experiment_params(n);
    let total = params.bootstrap_rounds() + rounds;
    let mut real = NetMaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(ROUND_MS),
    );
    let rec = Arc::new(ObsRecorder::new());
    real.set_obs(ObsHandle::new(rec.clone()));
    let start = Instant::now();
    real.run(total);
    let elapsed_ms = start.elapsed().as_millis() as u64;

    let mut twin = AsyncMaintenanceHarness::assemble_replay(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        real.trace(),
    );
    let twin_rec = Arc::new(ObsRecorder::new());
    twin.set_obs(ObsHandle::new(twin_rec.clone()));
    twin.run(total);

    (
        rec.det_snapshot(),
        twin_rec.det_snapshot(),
        rec.timing_snapshot(),
        elapsed_ms,
    )
}

/// Removes one counter from a snapshot before comparison.
fn without_counter(mut snap: DetSnapshot, name: &str) -> DetSnapshot {
    snap.counters.retain(|c| c.name != name);
    snap
}

/// Byte equality of two serializable snapshots.
fn bytes_eq<T: Serialize>(a: &T, b: &T) -> bool {
    serde_json::to_string(a).expect("snapshots serialize")
        == serde_json::to_string(b).expect("snapshots serialize")
}

fn main() {
    let exp = "exp_profile";
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "the tsa-obs observability layer across all three schedulers: \
                 deterministic counters/histograms (CI byte-compares them), the \
                 transport's twin-counter pin, and wall-clock phase spans";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized run (a few seconds end to end)",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    let g = grid(smoke);
    let round_total = experiment_params(g.n).bootstrap_rounds() + g.rounds;
    let net_total = experiment_params(g.net_n).bootstrap_rounds() + g.net_rounds;
    if args.list {
        // This experiment is not sweep-driven, so it lists its own grid.
        println!("{exp}: 1 grid, 3 cell(s)");
        println!(
            "  [  0] round n={} seed={} rounds={round_total} churn={CHURN_PER_ROUND}",
            g.n, g.seed
        );
        println!(
            "  [  1] event n={} seed={} rounds={round_total} churn={CHURN_PER_ROUND} latency=500t",
            g.n, g.seed
        );
        println!(
            "  [  2] net n={} seed={} rounds={net_total} churn={CHURN_PER_ROUND} round_ms={ROUND_MS}",
            g.net_n, g.seed
        );
        return;
    }
    let reporter = args.reporter();

    // Round engine, twice: the thread-cap invariance check is the first
    // deterministic claim of the obs layer. Cap 1 is the canonical run.
    reporter.note(&format!(
        "[{exp}] round engine n={} ({round_total} rounds, thread caps 1 and 2)",
        g.n
    ));
    let (round_det, round_spans, round_ms) = round_run(g.n, g.seed, g.rounds, 1);
    let (round_det_cap2, _, _) = round_run(g.n, g.seed, g.rounds, 2);
    let thread_caps_identical = bytes_eq(&round_det, &round_det_cap2);

    reporter.note(&format!(
        "[{exp}] event engine n={} (sub-round latency twin)",
        g.n
    ));
    let (event_det, event_spans, event_ms) = event_run(g.n, g.seed, g.rounds);
    let event_matches_round =
        bytes_eq(&round_det.filtered("proto."), &event_det.filtered("proto."));

    reporter.note(&format!(
        "[{exp}] loopback transport n={} ({net_total} wall-clock rounds) + twin replay",
        g.net_n
    ));
    let (net_det, twin_det, net_spans, net_ms) = net_run(g.net_n, g.seed, g.net_rounds);
    // Drop attribution differs by design: the replay accounts every
    // undelivered fate as dropped at the boundary it missed, while the
    // transport counts only frames it actively lost — end-of-run in-flight
    // frames are neither. The twin contract (like `exp_net`'s) pins
    // everything else: sent, delivered, and every histogram.
    let net_twin_counters_match = bytes_eq(
        &without_counter(net_det.filtered("proto."), "proto.dropped"),
        &without_counter(twin_det.filtered("proto."), "proto.dropped"),
    );

    // The metrics-mode pin: streaming accumulators must fold to the exact
    // digest of the full per-round history.
    reporter.note(&format!("[{exp}] streaming-vs-full metrics digest"));
    let adversary = AdversarySpec::random(CHURN_PER_ROUND, g.seed);
    let full = experiment_scenario(g.n)
        .adversary(adversary)
        .seed(g.seed)
        .run(g.rounds);
    let streaming = experiment_scenario(g.n)
        .adversary(adversary)
        .seed(g.seed)
        .metrics_mode(MetricsMode::Streaming)
        .run(g.rounds);
    let fm = full.maintenance.as_ref().expect("maintained outcome");
    let sm = streaming.maintenance.as_ref().expect("maintained outcome");
    let streaming_digest_matches_full =
        fm.metrics_summary == sm.metrics_summary && sm.metrics.is_none();

    let checks = Checks {
        thread_caps_identical,
        event_matches_round,
        net_twin_counters_match,
        streaming_digest_matches_full,
    };
    let all_checks_pass = checks.thread_caps_identical
        && checks.event_matches_round
        && checks.net_twin_counters_match
        && checks.streaming_digest_matches_full;

    let mut table = Table::new(
        "Observability across the three schedulers (net columns are run-dependent)",
        &[
            "engine",
            "n",
            "rounds",
            "proto.sent",
            "proto.delivered",
            "inbox max",
            "repair samples",
            "elapsed ms",
        ],
    );
    for (engine, n, det, ms) in [
        ("round", g.n, &round_det, round_ms),
        ("event", g.n, &event_det, event_ms),
        ("net", g.net_n, &net_det, net_ms),
    ] {
        let inbox_max = det.histogram("proto.inbox_len").map(|h| h.max).unwrap_or(0);
        let repair: u64 = det
            .region_histograms
            .iter()
            .filter(|r| r.histogram.name == "proto.repair_sample_age")
            .map(|r| r.histogram.count)
            .sum();
        table.row(vec![
            engine.to_string(),
            n.to_string(),
            det.counter("proto.rounds").to_string(),
            det.counter("proto.sent").to_string(),
            det.counter("proto.delivered").to_string(),
            inbox_max.to_string(),
            repair.to_string(),
            ms.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    let mut check_table = Table::new("Observability pins", &["check", "holds"]);
    check_table.row(vec![
        "round engine byte-identical at thread caps 1/2".to_string(),
        fmt_bool(checks.thread_caps_identical),
    ]);
    check_table.row(vec![
        "proto.* identical: round vs sub-round event".to_string(),
        fmt_bool(checks.event_matches_round),
    ]);
    check_table.row(vec![
        "proto.* identical: transport vs its twin replay".to_string(),
        fmt_bool(checks.net_twin_counters_match),
    ]);
    check_table.row(vec![
        "streaming metrics fold to the full digest".to_string(),
        fmt_bool(checks.streaming_digest_matches_full),
    ]);
    println!("{}", check_table.to_markdown());
    println!(
        "The deterministic section (round + event snapshots, all four pins) is a pure\n\
         function of (seed, protocol): CI runs this binary twice at different TSA_THREADS\n\
         and byte-compares it. The timing section — phase spans, and the transport's\n\
         wall-clock-dependent counters — is excluded; the transport's contract is the\n\
         twin pin, not byte identity."
    );

    let doc = ProfileDoc {
        exp: exp.to_string(),
        smoke,
        deterministic: DeterministicDoc {
            all_checks_pass,
            checks,
            round: EngineDet {
                engine: "round".to_string(),
                n: g.n,
                seed: g.seed,
                rounds: round_total,
                snapshot: round_det,
            },
            event: EngineDet {
                engine: "event".to_string(),
                n: g.n,
                seed: g.seed,
                rounds: round_total,
                snapshot: event_det,
            },
        },
        timing: TimingDoc {
            engines: vec![
                EngineTiming {
                    engine: "round".to_string(),
                    elapsed_ms: round_ms,
                    spans: round_spans,
                },
                EngineTiming {
                    engine: "event".to_string(),
                    elapsed_ms: event_ms,
                    spans: event_spans,
                },
                EngineTiming {
                    engine: "net".to_string(),
                    elapsed_ms: net_ms,
                    spans: net_spans,
                },
            ],
            net: EngineDet {
                engine: "net".to_string(),
                n: g.net_n,
                seed: g.seed,
                rounds: net_total,
                snapshot: net_det,
            },
        },
    };
    match &args.out {
        Some(dir) => {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("warning: could not create {}: {err}", dir.display());
            }
            write_bench_json_at(&dir.join(format!("BENCH_{exp}.json")), &doc);
        }
        None => write_bench_json(exp, &doc),
    }
    if !all_checks_pass {
        eprintln!("{exp}: an observability pin failed");
        std::process::exit(1);
    }
}
