//! Experiment PROFILE — the `tsa-obs` observability layer, exercised and
//! pinned across all three schedulers.
//!
//! One maintained run per scheduler — the synchronous round engine, the
//! virtual-time event engine under a sub-round constant latency, and the
//! loopback-TCP transport — each under seeded random churn with a
//! flight-recorder [`JournalRecorder`] attached, plus a fourth run of the
//! event engine under a mixed fault plan so the gated `proto.fault_*`
//! counters land in the byte-compared section. Two families of results come
//! out, mirroring `exp_net`:
//!
//! * **deterministic** — the protocol-derived counters and power-of-two
//!   histograms (`proto.*`, plus each simulator's own counters) of the round
//!   and event engines, faulted and clean. These are pure functions of
//!   `(seed, protocol)`: byte-identical across machines, thread caps and
//!   `TSA_THREADS` settings, so CI runs this binary twice at different
//!   thread counts and byte-compares the section. The section also carries
//!   the cross-checks: thread-cap invariance of the round engine (snapshot
//!   AND the ordered journal stream), `proto.*` identity between the round
//!   engine and a sub-round-latency event run, the transport's twin-counter
//!   pin (now over a faulted run, so `proto.fault_*` is inside the pin),
//!   journal-fold identity with the live snapshots, presence of nonzero
//!   fault counters, and the streaming-vs-full metrics digest pin.
//! * **timing** — the wall-clock phase spans (`sim.*`, `event.*`, `net.*`):
//!   where each scheduler actually spends its time. The *transport's*
//!   counter snapshot also lives here: wall-clock scheduling makes its
//!   protocol trace run-dependent (a frame that lands just before a round
//!   boundary in one run lands just after it in the next), so its raw
//!   counters can never be byte-compared. Its deterministic claim is the
//!   twin pin instead — replaying the recorded message fates through the
//!   event engine (with the same fault plan) must reproduce the transport's
//!   `proto.*` counters and histograms, whatever those fates were
//!   (`proto.dropped` excluded: the replay attributes every undelivered
//!   fate as a drop, the transport only the frames it actively lost).
//!
//! `--smoke` shrinks the grid to a seconds-long CI-sized run.
//! `--journal <dir>` additionally writes the deterministic journal streams
//! (`journal.round.jsonl`, `journal.event.jsonl`,
//! `journal.event_faulted.jsonl` — the transport's journal is wall-clock
//! dependent and stays out) and a Chrome-trace `trace.json` with the phase
//! spans of all three engines, ready for Perfetto.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use tsa_adversary::RandomChurnAdversary;
use tsa_analysis::{fmt_bool, Table};
use tsa_bench::{experiment_params, experiment_scenario, usage, write_bench_json_at, ExpArgs};
use tsa_core::{AsyncMaintenanceHarness, MaintenanceHarness, NetMaintenanceHarness};
use tsa_dash::{JournalRecorder, RunJournal, SpanSlice, TraceBuilder};
use tsa_obs::{DetSnapshot, ObsHandle, TimingSnapshot};
use tsa_scenario::{
    AdversarySpec, FaultAction, FaultPlan, FaultRule, LatencyModel, MetricsMode, NetModel,
    RoundWindow,
};

/// The milliseconds of wall clock one transport round occupies. Generous for
/// loopback, so the runs stay meaningful (mostly-delivered) without the
/// checks depending on it — the twin pin holds whatever the deadlines did.
const ROUND_MS: u64 = 25;

/// Departures per round the seeded churn adversary injects — enough to keep
/// neighbor repair (and its sampling-age probe) busy every round.
const CHURN_PER_ROUND: usize = 2;

/// The mixed fault plan of the faulted runs: every action kind at low
/// probability, drops delayed past bootstrap. Fault decisions are a pure
/// function of `(seed, frame sequence)`, so the resulting `proto.fault_*`
/// counters are deterministic on the event engine and twin-pinned on the
/// transport.
fn fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_rule(
            FaultRule::every(FaultAction::Drop)
                .with_prob(0.04)
                .in_window(RoundWindow::starting_at(2)),
        )
        .with_rule(FaultRule::every(FaultAction::Delay { ticks: 1500 }).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Duplicate).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Mutate).with_prob(0.05))
}

/// The grid: one (n, seed, measured-rounds) point per scheduler.
struct Grid {
    /// Round + event engines run at this size.
    n: usize,
    /// The transport runs smaller (wall-clock bound).
    net_n: usize,
    seed: u64,
    rounds: u64,
    net_rounds: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            n: 48,
            net_n: 16,
            seed: 29,
            rounds: 4,
            net_rounds: 4,
        }
    } else {
        Grid {
            n: 64,
            net_n: 16,
            seed: 29,
            rounds: 8,
            net_rounds: 6,
        }
    }
}

/// One scheduler's deterministic observability state.
#[derive(Serialize)]
struct EngineDet {
    engine: String,
    n: usize,
    seed: u64,
    /// Total rounds executed (bootstrap included).
    rounds: u64,
    snapshot: DetSnapshot,
}

/// The cross-checks pinned by this experiment (all must hold).
#[derive(Serialize)]
struct Checks {
    /// The round engine's deterministic state is byte-identical under
    /// thread caps 1 and 2 (counter/histogram updates are commutative).
    thread_caps_identical: bool,
    /// The round engine's ordered journal *stream* (not just the folded
    /// totals) is byte-identical under thread caps 1 and 2: deterministic
    /// events are only ever recorded from sequential sections.
    journal_identical_across_caps: bool,
    /// Folding each flight-recorder journal reproduces the live
    /// `DetSnapshot` byte-for-byte, on every engine including the transport.
    journal_fold_matches_snapshot: bool,
    /// `proto.*` state of a sub-round-latency event run is byte-identical
    /// to the round engine's.
    event_matches_round: bool,
    /// Replaying the transport's recorded message fates through the event
    /// engine — both sides under the same fault plan — reproduces the
    /// transport's `proto.*` state exactly, `proto.fault_*` included
    /// (`proto.dropped` excluded — drop *attribution* differs by design).
    net_twin_counters_match: bool,
    /// The faulted runs actually recorded nonzero `proto.fault_*` counters
    /// (the plan bit, the gate opened).
    fault_counters_recorded: bool,
    /// `MetricsMode::Streaming` folds to the exact `MetricsSummary` of
    /// `MetricsMode::Full`.
    streaming_digest_matches_full: bool,
}

/// The machine-invariant half of `BENCH_exp_profile.json`.
#[derive(Serialize)]
struct DeterministicDoc {
    all_checks_pass: bool,
    checks: Checks,
    round: EngineDet,
    event: EngineDet,
    /// The event engine under the mixed fault plan: same determinism
    /// contract as the clean run, with the gated `proto.fault_*` counters
    /// present and byte-compared.
    event_faulted: EngineDet,
}

/// One scheduler's wall-clock phase spans (machine-dependent).
#[derive(Serialize)]
struct EngineTiming {
    engine: String,
    elapsed_ms: u64,
    spans: TimingSnapshot,
}

/// The wall-clock half of `BENCH_exp_profile.json`.
#[derive(Serialize)]
struct TimingDoc {
    engines: Vec<EngineTiming>,
    /// The transport's counters/histograms: run-dependent (see the module
    /// docs), so they live here, outside the byte-compared section. The
    /// twin pin in `deterministic.checks` is their correctness contract.
    net: EngineDet,
}

/// The `BENCH_exp_profile.json` document.
#[derive(Serialize)]
struct ProfileDoc {
    exp: String,
    smoke: bool,
    deterministic: DeterministicDoc,
    timing: TimingDoc,
}

/// Everything one flight-recorded run yields.
struct RunOut {
    det: DetSnapshot,
    spans: TimingSnapshot,
    journal: RunJournal,
    slices: Vec<SpanSlice>,
    elapsed_ms: u64,
    /// Folding the journal reproduced `det` byte-for-byte.
    fold_ok: bool,
}

/// Drains one [`JournalRecorder`] into a [`RunOut`].
fn collect(rec: &JournalRecorder, elapsed_ms: u64) -> RunOut {
    let det = rec.det_snapshot();
    let journal = rec.journal();
    let fold_ok = bytes_eq(&journal.fold(), &det);
    RunOut {
        spans: rec.timing_snapshot(),
        slices: rec.slices(),
        journal,
        det,
        elapsed_ms,
        fold_ok,
    }
}

/// Runs the round engine with a [`JournalRecorder`] under a rayon thread cap.
fn round_run(n: usize, seed: u64, rounds: u64, cap: usize) -> RunOut {
    rayon::with_thread_cap(cap, || {
        let params = experiment_params(n);
        let mut h = MaintenanceHarness::assemble(
            params,
            RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        );
        let rec = Arc::new(JournalRecorder::new());
        h.set_obs(ObsHandle::new(rec.clone()));
        let start = Instant::now();
        h.run_bootstrap();
        h.run(rounds);
        collect(&rec, start.elapsed().as_millis() as u64)
    })
}

/// Runs the event engine under a sub-round constant latency (0.5 rounds):
/// every message still lands by its next boundary, so with no faults the
/// protocol trace — and therefore every `proto.*` counter — must match the
/// round engine's. With a fault plan the gated `proto.fault_*` counters
/// appear, still a pure function of the seed.
fn event_run(n: usize, seed: u64, rounds: u64, faults: Option<FaultPlan>) -> RunOut {
    let params = experiment_params(n);
    let mut h = AsyncMaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        NetModel::new(LatencyModel::constant(500)),
    );
    if let Some(plan) = faults {
        h.set_faults(plan);
    }
    let rec = Arc::new(JournalRecorder::new());
    h.set_obs(ObsHandle::new(rec.clone()));
    let start = Instant::now();
    h.run_bootstrap();
    h.run(rounds);
    collect(&rec, start.elapsed().as_millis() as u64)
}

/// Runs the loopback transport under the mixed fault plan with a
/// [`JournalRecorder`], then replays its recorded trace through the
/// event-engine twin (same plan) with its own recorder. Returns the
/// transport's run plus the twin's deterministic snapshot.
fn net_run(n: usize, seed: u64, rounds: u64) -> (RunOut, DetSnapshot) {
    let params = experiment_params(n);
    let total = params.bootstrap_rounds() + rounds;
    let mut real = NetMaintenanceHarness::assemble(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(ROUND_MS),
    );
    real.set_faults(fault_plan());
    let rec = Arc::new(JournalRecorder::new());
    real.set_obs(ObsHandle::new(rec.clone()));
    let start = Instant::now();
    real.run(total);
    let elapsed_ms = start.elapsed().as_millis() as u64;

    let mut twin = AsyncMaintenanceHarness::assemble_replay(
        params,
        RandomChurnAdversary::new(CHURN_PER_ROUND, seed),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        real.trace(),
    );
    twin.set_faults(fault_plan());
    let twin_rec = Arc::new(JournalRecorder::new());
    twin.set_obs(ObsHandle::new(twin_rec.clone()));
    twin.run(total);

    (collect(&rec, elapsed_ms), twin_rec.det_snapshot())
}

/// Removes one counter from a snapshot before comparison.
fn without_counter(mut snap: DetSnapshot, name: &str) -> DetSnapshot {
    snap.counters.retain(|c| c.name != name);
    snap
}

/// The sum of the gated fault counters in a snapshot.
fn fault_total(snap: &DetSnapshot) -> u64 {
    ["dropped", "delayed", "duplicated", "mutated"]
        .iter()
        .map(|kind| snap.counter(&format!("proto.fault_{kind}")))
        .sum()
}

/// Byte equality of two serializable snapshots.
fn bytes_eq<T: Serialize>(a: &T, b: &T) -> bool {
    serde_json::to_string(a).expect("snapshots serialize")
        == serde_json::to_string(b).expect("snapshots serialize")
}

/// Writes the journal streams and the phase-span trace under `dir`.
fn write_journals(dir: &PathBuf, runs: &[(&str, &RunOut)]) {
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let mut trace = TraceBuilder::new();
    for (i, (engine, run)) in runs.iter().enumerate() {
        let pid = i as u64 + 1;
        trace.process_name(pid, engine);
        trace.thread_name(pid, 1, "phases");
        trace.slices_from(pid, 1, &run.slices);
        // The transport's journal stream is wall-clock dependent; only the
        // deterministic engines export one.
        if *engine == "net" {
            continue;
        }
        let path = dir.join(format!("journal.{engine}.jsonl"));
        if let Err(err) = std::fs::write(&path, run.journal.to_jsonl()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    let path = dir.join("trace.json");
    if let Err(err) = std::fs::write(&path, trace.to_json()) {
        eprintln!("warning: could not write {}: {err}", path.display());
    }
}

fn main() {
    let exp = "exp_profile";
    // `--smoke` and `--journal <dir>` are this binary's own flags;
    // everything else is the shared experiment CLI.
    let mut smoke = false;
    let mut journal_dir: Option<PathBuf> = None;
    let mut rest = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--journal" => match raw.next() {
                Some(dir) => journal_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("{exp}: --journal requires a directory argument");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let about = "the tsa-obs observability layer across all three schedulers: \
                 deterministic counters/histograms (CI byte-compares them), the \
                 flight-recorder journal, fault counters, the transport's \
                 twin-counter pin, and wall-clock phase spans";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n\
                 \x20 --smoke        CI-sized run (a few seconds end to end)\n\
                 \x20 --journal <dir> write the deterministic journal streams and\n\
                 \x20                the Perfetto trace.json under <dir>",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    let g = grid(smoke);
    let round_total = experiment_params(g.n).bootstrap_rounds() + g.rounds;
    let net_total = experiment_params(g.net_n).bootstrap_rounds() + g.net_rounds;
    if args.list {
        // This experiment is not sweep-driven, so it lists its own grid.
        println!("{exp}: 1 grid, 4 cell(s)");
        println!(
            "  [  0] round n={} seed={} rounds={round_total} churn={CHURN_PER_ROUND}",
            g.n, g.seed
        );
        println!(
            "  [  1] event n={} seed={} rounds={round_total} churn={CHURN_PER_ROUND} latency=500t",
            g.n, g.seed
        );
        println!(
            "  [  2] event n={} seed={} rounds={round_total} churn={CHURN_PER_ROUND} latency=500t faults=mixed",
            g.n, g.seed
        );
        println!(
            "  [  3] net n={} seed={} rounds={net_total} churn={CHURN_PER_ROUND} round_ms={ROUND_MS} faults=mixed",
            g.net_n, g.seed
        );
        return;
    }
    let reporter = args.reporter();

    // Round engine, twice: the thread-cap invariance check is the first
    // deterministic claim of the obs layer. Cap 1 is the canonical run. The
    // journal stream — event ORDER, not just folded totals — must also be
    // cap-invariant, because deterministic events only ever originate from
    // the engines' sequential sections.
    reporter.note(&format!(
        "[{exp}] round engine n={} ({round_total} rounds, thread caps 1 and 2)",
        g.n
    ));
    let round = round_run(g.n, g.seed, g.rounds, 1);
    let round_cap2 = round_run(g.n, g.seed, g.rounds, 2);
    let thread_caps_identical = bytes_eq(&round.det, &round_cap2.det);
    let journal_identical_across_caps = round.journal.to_jsonl() == round_cap2.journal.to_jsonl();

    reporter.note(&format!(
        "[{exp}] event engine n={} (sub-round latency twin, clean + faulted)",
        g.n
    ));
    let event = event_run(g.n, g.seed, g.rounds, None);
    let event_matches_round =
        bytes_eq(&round.det.filtered("proto."), &event.det.filtered("proto."));
    let event_faulted = event_run(g.n, g.seed, g.rounds, Some(fault_plan()));

    reporter.note(&format!(
        "[{exp}] loopback transport n={} ({net_total} wall-clock rounds, faulted) + twin replay",
        g.net_n
    ));
    let (net, twin_det) = net_run(g.net_n, g.seed, g.net_rounds);
    // Drop attribution differs by design: the replay accounts every
    // undelivered fate as dropped at the boundary it missed, while the
    // transport counts only frames it actively lost — end-of-run in-flight
    // frames are neither. The twin contract (like `exp_net`'s) pins
    // everything else: sent, delivered, every histogram, and — both sides
    // running the same fault plan — every `proto.fault_*` counter.
    let net_twin_counters_match = bytes_eq(
        &without_counter(net.det.filtered("proto."), "proto.dropped"),
        &without_counter(twin_det.filtered("proto."), "proto.dropped"),
    );
    let journal_fold_matches_snapshot = round.fold_ok
        && round_cap2.fold_ok
        && event.fold_ok
        && event_faulted.fold_ok
        && net.fold_ok;
    let fault_counters_recorded = fault_total(&event_faulted.det) > 0 && fault_total(&net.det) > 0;

    // The metrics-mode pin: streaming accumulators must fold to the exact
    // digest of the full per-round history.
    reporter.note(&format!("[{exp}] streaming-vs-full metrics digest"));
    let adversary = AdversarySpec::random(CHURN_PER_ROUND, g.seed);
    let full = experiment_scenario(g.n)
        .adversary(adversary)
        .seed(g.seed)
        .run(g.rounds);
    let streaming = experiment_scenario(g.n)
        .adversary(adversary)
        .seed(g.seed)
        .metrics_mode(MetricsMode::Streaming)
        .run(g.rounds);
    let fm = full.maintenance.as_ref().expect("maintained outcome");
    let sm = streaming.maintenance.as_ref().expect("maintained outcome");
    let streaming_digest_matches_full =
        fm.metrics_summary == sm.metrics_summary && sm.metrics.is_none();

    let checks = Checks {
        thread_caps_identical,
        journal_identical_across_caps,
        journal_fold_matches_snapshot,
        event_matches_round,
        net_twin_counters_match,
        fault_counters_recorded,
        streaming_digest_matches_full,
    };
    let all_checks_pass = checks.thread_caps_identical
        && checks.journal_identical_across_caps
        && checks.journal_fold_matches_snapshot
        && checks.event_matches_round
        && checks.net_twin_counters_match
        && checks.fault_counters_recorded
        && checks.streaming_digest_matches_full;

    let mut table = Table::new(
        "Observability across the three schedulers (net columns are run-dependent)",
        &[
            "engine",
            "n",
            "rounds",
            "proto.sent",
            "proto.delivered",
            "faults",
            "inbox max",
            "journal events",
            "elapsed ms",
        ],
    );
    for (engine, n, run) in [
        ("round", g.n, &round),
        ("event", g.n, &event),
        ("event+faults", g.n, &event_faulted),
        ("net+faults", g.net_n, &net),
    ] {
        let inbox_max = run
            .det
            .histogram("proto.inbox_len")
            .map(|h| h.max)
            .unwrap_or(0);
        table.row(vec![
            engine.to_string(),
            n.to_string(),
            run.det.counter("proto.rounds").to_string(),
            run.det.counter("proto.sent").to_string(),
            run.det.counter("proto.delivered").to_string(),
            fault_total(&run.det).to_string(),
            inbox_max.to_string(),
            run.journal.len().to_string(),
            run.elapsed_ms.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    let mut check_table = Table::new("Observability pins", &["check", "holds"]);
    check_table.row(vec![
        "round engine byte-identical at thread caps 1/2".to_string(),
        fmt_bool(checks.thread_caps_identical),
    ]);
    check_table.row(vec![
        "journal stream byte-identical at thread caps 1/2".to_string(),
        fmt_bool(checks.journal_identical_across_caps),
    ]);
    check_table.row(vec![
        "journal folds to the live snapshot (all engines)".to_string(),
        fmt_bool(checks.journal_fold_matches_snapshot),
    ]);
    check_table.row(vec![
        "proto.* identical: round vs sub-round event".to_string(),
        fmt_bool(checks.event_matches_round),
    ]);
    check_table.row(vec![
        "proto.* identical: faulted transport vs its twin replay".to_string(),
        fmt_bool(checks.net_twin_counters_match),
    ]);
    check_table.row(vec![
        "gated proto.fault_* counters recorded".to_string(),
        fmt_bool(checks.fault_counters_recorded),
    ]);
    check_table.row(vec![
        "streaming metrics fold to the full digest".to_string(),
        fmt_bool(checks.streaming_digest_matches_full),
    ]);
    println!("{}", check_table.to_markdown());
    println!(
        "The deterministic section (round + event + faulted-event snapshots, all seven\n\
         pins) is a pure function of (seed, protocol): CI runs this binary twice at\n\
         different TSA_THREADS and byte-compares it, journal streams included. The\n\
         timing section — phase spans, and the transport's wall-clock-dependent\n\
         counters — is excluded; the transport's contract is the twin pin, not byte\n\
         identity."
    );

    if let Some(dir) = &journal_dir {
        write_journals(
            dir,
            &[
                ("round", &round),
                ("event", &event),
                ("event_faulted", &event_faulted),
                ("net", &net),
            ],
        );
        reporter.note(&format!(
            "[{exp}] journal streams + trace.json written under {}",
            dir.display()
        ));
    }

    let doc = ProfileDoc {
        exp: exp.to_string(),
        smoke,
        deterministic: DeterministicDoc {
            all_checks_pass,
            checks,
            round: EngineDet {
                engine: "round".to_string(),
                n: g.n,
                seed: g.seed,
                rounds: round_total,
                snapshot: round.det,
            },
            event: EngineDet {
                engine: "event".to_string(),
                n: g.n,
                seed: g.seed,
                rounds: round_total,
                snapshot: event.det,
            },
            event_faulted: EngineDet {
                engine: "event_faulted".to_string(),
                n: g.n,
                seed: g.seed,
                rounds: round_total,
                snapshot: event_faulted.det,
            },
        },
        timing: TimingDoc {
            engines: vec![
                EngineTiming {
                    engine: "round".to_string(),
                    elapsed_ms: round.elapsed_ms,
                    spans: round.spans,
                },
                EngineTiming {
                    engine: "event".to_string(),
                    elapsed_ms: event.elapsed_ms,
                    spans: event.spans,
                },
                EngineTiming {
                    engine: "event_faulted".to_string(),
                    elapsed_ms: event_faulted.elapsed_ms,
                    spans: event_faulted.spans,
                },
                EngineTiming {
                    engine: "net".to_string(),
                    elapsed_ms: net.elapsed_ms,
                    spans: net.spans,
                },
            ],
            net: EngineDet {
                engine: "net".to_string(),
                n: g.net_n,
                seed: g.seed,
                rounds: net_total,
                snapshot: net.det,
            },
        },
    };
    let artifact_path = match &args.out {
        Some(dir) => {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("warning: could not create {}: {err}", dir.display());
            }
            dir.join(format!("BENCH_{exp}.json"))
        }
        None => PathBuf::from(format!("BENCH_{exp}.json")),
    };
    // The compare gate reads the committed bytes BEFORE the write below
    // replaces them. Only the deterministic section is byte-compared — the
    // timing section is wall clock and never byte-stable — and a committed
    // artifact of the other grid shape (full vs --smoke) is no baseline.
    let committed_det = args.compare.then(|| {
        std::fs::read_to_string(&artifact_path)
            .ok()
            .and_then(|text| serde_json::parse_value(&text).ok())
            .filter(|v| v.get("smoke").and_then(|s| s.as_bool()) == Some(smoke))
            .and_then(|v| v.get("deterministic").map(|d| d.to_json_compact()))
    });
    write_bench_json_at(&artifact_path, &doc);
    if let Some(committed_det) = committed_det {
        let fresh_det =
            serde_json::to_string(&doc.deterministic).expect("deterministic section serializes");
        let report = tsa_bench::compare_artifact(exp, committed_det.as_deref(), &fresh_det);
        let metrics = vec![
            tsa_dash::MetricPoint {
                name: "round_ms".to_string(),
                value: doc.timing.engines[0].elapsed_ms as f64,
            },
            tsa_dash::MetricPoint {
                name: "net_ms".to_string(),
                value: doc.timing.engines[3].elapsed_ms as f64,
            },
        ];
        match tsa_bench::compare::append_trajectory(
            args.out.as_deref(),
            exp,
            report.det_match,
            fresh_det.len() as u64,
            metrics,
        ) {
            Ok(path) => reporter.note(&format!(
                "[{exp}] trajectory row appended to {}",
                path.display()
            )),
            Err(err) => eprintln!("warning: could not append trajectory row: {err}"),
        }
        println!("{}", report.render());
        if !report.det_match {
            std::process::exit(1);
        }
    }
    if !all_checks_pass {
        eprintln!("{exp}: an observability pin failed");
        std::process::exit(1);
    }
}
