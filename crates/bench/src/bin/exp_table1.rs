//! Experiment T1 — Table 1, re-measured, as two declarative sweeps:
//!
//! * `static`: every static overlay structure from the related work (H_d
//!   graph, SPARTAN-style butterfly, Chord with swarms, a static LDS) on the
//!   kind axis × an oblivious and a topology-aware adversary on the adversary
//!   axis, all attacked with the same `n/4` churn burst;
//! * `maintained`: the paper's LDS through the full message-level protocol
//!   against the 2-late targeted adversary.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_bench::{experiment_spec, finish, run_sweeps, workload_spec, ExpArgs};
use tsa_scenario::{AdversarySpec, BaselineKind, ChurnSpec, ScenarioKind};
use tsa_sweep::{RoundsSpec, SweepSpec};

fn main() {
    let exp = "exp_table1";
    let args = ExpArgs::parse(exp, "Table 1: adversary-model comparison, re-measured");
    let n = 256usize;

    let static_sweep = SweepSpec::new(
        "static",
        workload_spec(ScenarioKind::Baseline(BaselineKind::HdGraph), n),
    )
    .over_kinds([
        ScenarioKind::Baseline(BaselineKind::HdGraph),
        ScenarioKind::Baseline(BaselineKind::Spartan),
        ScenarioKind::Baseline(BaselineKind::ChordSwarm),
        ScenarioKind::Baseline(BaselineKind::StaticLds),
    ])
    .over_churn([ChurnSpec::fraction(1, 4)])
    .over_adversaries([AdversarySpec::random(1, 11), AdversarySpec::targeted(1, 11)])
    .seeds(11, 1);

    let mut maintained_base = experiment_spec(96);
    maintained_base.churn = ChurnSpec::fraction(1, 4);
    maintained_base.adversary = AdversarySpec::targeted(2, 5);
    let maintained = SweepSpec::new("maintained", maintained_base)
        .rounds(RoundsSpec::MaturityAges(2))
        .seeds(3, 1);

    let runs = run_sweeps(exp, &args, vec![static_sweep, maintained]);

    // The paper-shaped exhibit: one row per overlay, random vs targeted burst
    // side by side, with the maintained protocol last.
    let budget = n / 4;
    let mut table = Table::new(
        &format!("Table 1 (measured): survival of a {budget}-node churn burst, n = {n}"),
        &[
            "overlay",
            "maintenance",
            "largest comp (random churn)",
            "largest comp (targeted churn)",
            "nodes lost to targeted churn (removed + eclipsed)",
            "budget to eclipse one node",
        ],
    );
    // Pair each overlay's random and targeted trials by their specs (not by
    // position, which would silently break if the sweep gained replicates).
    let mut rows: Vec<(&str, [Option<tsa_scenario::BaselineOutcome>; 2])> = Vec::new();
    for record in &runs[0].records {
        let label = record.outcome.spec.kind_label();
        let slot = match record.outcome.spec.adversary {
            AdversarySpec::Random { .. } => 0,
            _ => 1,
        };
        match rows.iter_mut().find(|(l, _)| *l == label) {
            Some((_, pair)) => pair[slot] = record.outcome.baseline,
            None => {
                let mut pair = [None, None];
                pair[slot] = record.outcome.baseline;
                rows.push((label, pair));
            }
        }
    }
    for (label, [random, targeted]) in rows {
        let rb = random.expect("random-adversary trial present");
        let tb = targeted.expect("targeted-adversary trial present");
        table.row(vec![
            label.to_string(),
            "static".to_string(),
            fmt_f(rb.resilience.largest_component_fraction),
            fmt_f(tb.resilience.largest_component_fraction),
            format!(
                "{} + {}",
                tb.resilience.removed, tb.resilience.isolated_survivors
            ),
            tb.eclipse_budget.to_string(),
        ]);
    }
    let protocol = &runs[1].records[0].outcome;
    let report = &protocol
        .maintenance
        .as_ref()
        .expect("maintained cell")
        .report;
    let unwired = report.mature_count - report.participating;
    table.row(vec![
        "LDS + maintenance (this paper)".to_string(),
        "rebuilt every 2 rounds".to_string(),
        "-".to_string(),
        format!(
            "{} ({})",
            fmt_f(report.largest_component_fraction),
            fmt_bool(report.connected)
        ),
        format!(
            "{} churned + {} unwired",
            report
                .node_count
                .saturating_sub(report.participating)
                .min(protocol.spec.n),
            unwired
        ),
        "unbounded (positions relocate every 2 rounds)".to_string(),
    ]);
    println!("{}", table.to_markdown());
    println!(
        "Reading: every structure keeps a giant component under a single oblivious burst, but\n\
         against a *static* overlay a topology-aware adversary (which is what 2-lateness means\n\
         when the topology never changes) only needs a budget equal to one node's fixed\n\
         neighbourhood to eclipse it — a handful of removals for the constant-degree H_d graph,\n\
         Θ(log n) for the committee/swarm structures — and it can repeat this every window.\n\
         The maintained LDS (n = 96, full message-level protocol, same 2-late targeted\n\
         adversary) offers no such static target: the neighbourhood it observes is stale two\n\
         reconfigurations later, and every mature node stays wired in."
    );
    finish(exp, &args, &runs, serde_json::Value::Null);
}
