//! Experiment T1 — Table 1, re-measured.
//!
//! The paper's Table 1 compares adversary models from the literature. We turn
//! it into an executable comparison: every *static* overlay structure from the
//! related work (H_d graph, SPARTAN-style butterfly committees, Chord with
//! swarms, a static LDS) is attacked with the same churn budget `αn`, once by
//! an oblivious (random) adversary and once by a topology-aware one — which is
//! what 2-lateness amounts to against a structure that never changes. The
//! maintained LDS (this paper) is exercised through the full protocol against
//! the 2-late targeted adversary.

use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_bench::{experiment_scenario, write_bench_json};
use tsa_scenario::{AdversarySpec, BaselineKind, ChurnSpec, Scenario, ScenarioOutcome};

fn trial(
    kind: BaselineKind,
    n: usize,
    budget: usize,
    seed: u64,
    table: &mut Table,
    outcomes: &mut Vec<ScenarioOutcome>,
) {
    // Same seed for both scenarios → both attack the identical structure.
    let base = Scenario::baseline(kind)
        .with_n(n)
        .churn(ChurnSpec::budget(budget))
        .seed(seed);
    let random = base.adversary(AdversarySpec::random(1, seed)).run(0);
    let targeted = base.adversary(AdversarySpec::targeted(1, seed)).run(0);
    let rb = random.baseline.expect("baseline outcome");
    let tb = targeted.baseline.expect("baseline outcome");
    table.row(vec![
        kind.label().to_string(),
        "static".to_string(),
        fmt_f(rb.resilience.largest_component_fraction),
        fmt_f(tb.resilience.largest_component_fraction),
        format!(
            "{} + {}",
            tb.resilience.removed, tb.resilience.isolated_survivors
        ),
        tb.eclipse_budget.to_string(),
    ]);
    outcomes.push(random);
    outcomes.push(targeted);
}

fn main() {
    let n = 256usize;
    let budget = n / 4; // αn with α = 1/4: a harsh but survivable budget
    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();

    let mut table = Table::new(
        &format!("Table 1 (measured): survival of an {budget}-node churn burst, n = {n}"),
        &[
            "overlay",
            "maintenance",
            "largest comp (random churn)",
            "largest comp (targeted churn)",
            "nodes lost to targeted churn (removed + eclipsed)",
            "budget to eclipse one node",
        ],
    );

    trial(
        BaselineKind::HdGraph,
        n,
        budget,
        11,
        &mut table,
        &mut outcomes,
    );
    trial(
        BaselineKind::Spartan,
        n,
        budget,
        12,
        &mut table,
        &mut outcomes,
    );
    trial(
        BaselineKind::ChordSwarm,
        n,
        budget,
        13,
        &mut table,
        &mut outcomes,
    );
    trial(
        BaselineKind::StaticLds,
        n,
        budget,
        14,
        &mut table,
        &mut outcomes,
    );

    // The maintained LDS: the full protocol against a 2-late targeted-swarm
    // adversary spending (roughly) the same budget over one churn window.
    let mut run = experiment_scenario(96)
        .churn(ChurnSpec::budget(96 / 4))
        .adversary(AdversarySpec::targeted(2, 5))
        .seed(3)
        .build();
    let params = *run.params();
    run.run_bootstrap();
    run.run(2 * params.maturity_age());
    let report = run.report();
    let unwired = report.mature_count - report.participating;
    table.row(vec![
        "LDS + maintenance (this paper)".to_string(),
        "rebuilt every 2 rounds".to_string(),
        "-".to_string(),
        format!(
            "{} ({})",
            fmt_f(report.largest_component_fraction),
            fmt_bool(report.connected)
        ),
        format!(
            "{} churned + {} unwired",
            report
                .node_count
                .saturating_sub(report.participating)
                .min(96),
            unwired
        ),
        "unbounded (positions relocate every 2 rounds)".to_string(),
    ]);
    outcomes.push(run.into_outcome());

    println!("{}", table.to_markdown());
    println!(
        "Reading: every structure keeps a giant component under a single oblivious burst, but\n\
         against a *static* overlay a topology-aware adversary (which is what 2-lateness means\n\
         when the topology never changes) only needs a budget equal to one node's fixed\n\
         neighbourhood to eclipse it — a handful of removals for the constant-degree H_d graph,\n\
         Θ(log n) for the committee/swarm structures — and it can repeat this every window.\n\
         The maintained LDS (n = 96, full message-level protocol, same 2-late targeted\n\
         adversary) offers no such static target: the neighbourhood it observes is stale two\n\
         reconfigurations later, and every mature node stays wired in."
    );
    write_bench_json("exp_table1", &outcomes);
}
