//! Experiment T1 — Table 1, re-measured.
//!
//! The paper's Table 1 compares adversary models from the literature. We turn
//! it into an executable comparison: every *static* overlay structure from the
//! related work (H_d graph, SPARTAN-style butterfly committees, Chord with
//! swarms, a static LDS) is attacked with the same churn budget `αn`, once by
//! an oblivious (random) adversary and once by a topology-aware one — which is
//! what 2-lateness amounts to against a structure that never changes. The
//! maintained LDS (this paper) is exercised through the full protocol against
//! the 2-late targeted adversary.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_adversary::TargetedSwarmAdversary;
use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_baselines::{attack_trial, AttackMode, ChordSwarm, HdGraph, SpartanOverlay};
use tsa_bench::experiment_params;
use tsa_core::MaintenanceHarness;
use tsa_overlay::{Lds, OverlayGraph, OverlayParams};
use tsa_sim::{ChurnRules, NodeId};

fn trial(name: &str, graph: &OverlayGraph, budget: usize, table: &mut Table, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let random = attack_trial(graph, budget, AttackMode::Random, &mut rng);
    let targeted = attack_trial(graph, budget, AttackMode::TargetedNeighborhood, &mut rng);
    // The budget a topology-aware adversary needs to eclipse (cut off) one
    // node of a *static* overlay: the size of that node's fixed neighbourhood.
    let eclipse_budget = graph
        .vertices()
        .map(|v| graph.out_degree(v))
        .min()
        .unwrap_or(0);
    table.row(vec![
        name.to_string(),
        "static".to_string(),
        fmt_f(random.largest_component_fraction),
        fmt_f(targeted.largest_component_fraction),
        format!("{} + {}", targeted.removed, targeted.isolated_survivors),
        eclipse_budget.to_string(),
    ]);
}

fn main() {
    let n = 256usize;
    let budget = n / 4; // αn with α = 1/4: a harsh but survivable budget
    let params = OverlayParams::with_default_c(n);
    let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let mut table = Table::new(
        &format!("Table 1 (measured): survival of an {budget}-node churn burst, n = {n}"),
        &[
            "overlay", "maintenance", "largest comp (random churn)", "largest comp (targeted churn)",
            "nodes lost to targeted churn (removed + eclipsed)", "budget to eclipse one node",
        ],
    );

    let hd = HdGraph::random(nodes.clone(), 3, &mut rng).to_graph();
    trial("H_d graph (Drees et al. [4])", &hd, budget, &mut table, 11);

    let spartan = SpartanOverlay::build(nodes.clone(), params.lambda() as usize, &mut rng).to_graph();
    trial("SPARTAN butterfly [2]", &spartan, budget, &mut table, 12);

    let chord = ChordSwarm::random(params, nodes.clone(), &mut rng).to_graph();
    trial("Chord with swarms [7]", &chord, budget, &mut table, 13);

    let static_lds = Lds::random(params, nodes.clone(), &mut rng).to_graph();
    trial("LDS, never reconfigured", &static_lds, budget, &mut table, 14);

    // The maintained LDS: the full protocol against a 2-late targeted-swarm
    // adversary spending (roughly) the same budget over one churn window.
    let mp = experiment_params(96);
    let rules = ChurnRules {
        max_events: Some(96 / 4),
        window: mp.overlay.churn_window(),
        bootstrap_rounds: mp.bootstrap_rounds(),
        ..ChurnRules::default()
    };
    let mut harness = MaintenanceHarness::with_rules(
        mp,
        TargetedSwarmAdversary::new(2, 5),
        3,
        rules,
        mp.paper_lateness(),
    );
    harness.run_bootstrap();
    harness.run(2 * mp.maturity_age());
    let report = harness.report();
    let unwired = report.mature_count - report.participating;
    table.row(vec![
        "LDS + maintenance (this paper)".to_string(),
        "rebuilt every 2 rounds".to_string(),
        "-".to_string(),
        format!("{} ({})", fmt_f(report.largest_component_fraction), fmt_bool(report.connected)),
        format!("{} churned + {} unwired", report.node_count.saturating_sub(report.participating).min(96), unwired),
        "unbounded (positions relocate every 2 rounds)".to_string(),
    ]);

    println!("{}", table.to_markdown());
    println!(
        "Reading: every structure keeps a giant component under a single oblivious burst, but\n\
         against a *static* overlay a topology-aware adversary (which is what 2-lateness means\n\
         when the topology never changes) only needs a budget equal to one node's fixed\n\
         neighbourhood to eclipse it — a handful of removals for the constant-degree H_d graph,\n\
         Θ(log n) for the committee/swarm structures — and it can repeat this every window.\n\
         The maintained LDS (n = 96, full message-level protocol, same 2-late targeted\n\
         adversary) offers no such static target: the neighbourhood it observes is stale two\n\
         reconfigurations later, and every mature node stays wired in."
    );
}
