//! Experiment E4/E5 — Lemmas 9–12: `A_ROUTING` delivery rate, exact dilation
//! `2λ+2`, congestion `O(k log n)`, and trajectory-crossing counts.

use tsa_analysis::{fmt_f, Table};
use tsa_overlay::{Interval, OverlayParams, Position};
use tsa_routing::{trajectory_crossings, uniform_workload, RoutableSeries, RoutingConfig, RoutingSim};
use tsa_sim::NodeId;

fn main() {
    // Lemma 9: delivery + dilation + congestion over n and k.
    let mut table = Table::new(
        "Lemma 9 (measured): A_ROUTING with 25% holder failure per step",
        &["n", "lambda", "k", "delivered", "dilation (rounds)", "max congestion", "congestion / (k·λ)"],
    );
    for &n in &[128usize, 256, 512] {
        let params = OverlayParams::with_default_c(n);
        let series = RoutableSeries::new(params, 7, (0..n as u64).map(NodeId));
        for k in [1usize, 4] {
            let config = RoutingConfig::default()
                .with_replication(4)
                .with_holder_failure(0.25)
                .with_seed(5 + k as u64);
            let report = RoutingSim::new(&series, config)
                .route_all(0, &uniform_workload(&series, k, 3 + k as u64));
            table.row(vec![
                n.to_string(),
                params.lambda().to_string(),
                k.to_string(),
                format!("{}/{}", report.delivered, report.total),
                report.dilation.to_string(),
                report.max_congestion.to_string(),
                fmt_f(report.max_congestion as f64 / (k as f64 * params.lambda() as f64)),
            ]);
        }
    }
    println!("{}", table.to_markdown());

    // Lemma 12: trajectory crossings of an interval vs the k·n·|I| prediction.
    let n = 512usize;
    let params = OverlayParams::with_default_c(n);
    let series = RoutableSeries::new(params, 9, (0..n as u64).map(NodeId));
    let k = 2usize;
    let msgs = uniform_workload(&series, k, 13);
    let overlay = series.overlay(0);
    let interval = Interval::around(Position::new(0.42), 0.05);
    let expected = k as f64 * n as f64 * interval.length();
    let mut table = Table::new(
        "Lemma 12 (measured): trajectories crossing an interval of length 0.1 (n = 512, k = 2)",
        &["trajectory step j", "measured crossings", "predicted k·n·|I|"],
    );
    for j in [1usize, 3, 5, 7, params.lambda() as usize] {
        let crossings = trajectory_crossings(&overlay, &msgs, j, &interval);
        table.row(vec![j.to_string(), crossings.to_string(), fmt_f(expected)]);
    }
    println!("{}", table.to_markdown());
}
