//! Experiment E4/E5 — Lemmas 9–12: `A_ROUTING` delivery rate, exact dilation
//! `2λ+2`, congestion `O(k log n)` (a declarative n × k sweep with seed
//! replicates), and trajectory-crossing counts (a bespoke Lemma 12 check).

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use serde::Serialize;

use tsa_analysis::{fmt_f, Table};
use tsa_bench::{finish, run_sweeps, workload_spec, ExpArgs};
use tsa_overlay::{Interval, OverlayParams, Position};
use tsa_routing::{trajectory_crossings, uniform_workload, RoutableSeries};
use tsa_scenario::ScenarioKind;
use tsa_sim::NodeId;
use tsa_sweep::SweepSpec;

/// One measured trajectory-crossing row (Lemma 12).
#[derive(Serialize)]
struct CrossingRow {
    step: usize,
    measured: usize,
    predicted: f64,
}

fn main() {
    let exp = "exp_routing";
    let args = ExpArgs::parse(
        exp,
        "Lemmas 9-12: delivery, dilation, congestion, crossings",
    );

    // Lemma 9: delivery + dilation + congestion over the n × k grid, three
    // seed replicates per cell for confidence intervals.
    let mut base = workload_spec(ScenarioKind::Routing, 128);
    base.replication = Some(4);
    base.holder_failure = 0.25;
    let grid = SweepSpec::new("grid", base)
        .over_n([128, 256, 512])
        .over_messages_per_node([1, 4])
        .seeds(7, 3);
    let runs = run_sweeps(exp, &args, vec![grid]);

    // Lemma 12: trajectory crossings of an interval vs the k·n·|I| prediction
    // (structure-level, not a Scenario — stays bespoke).
    let n = 512usize;
    let params = OverlayParams::with_default_c(n);
    let series = RoutableSeries::new(params, 9, (0..n as u64).map(NodeId));
    let k = 2usize;
    let msgs = uniform_workload(&series, k, 13);
    let overlay = series.overlay(0);
    let interval = Interval::around(Position::new(0.42), 0.05);
    let expected = k as f64 * n as f64 * interval.length();
    let mut crossings: Vec<CrossingRow> = Vec::new();
    let mut table = Table::new(
        "Lemma 12 (measured): trajectories crossing an interval of length 0.1 (n = 512, k = 2)",
        &[
            "trajectory step j",
            "measured crossings",
            "predicted k·n·|I|",
        ],
    );
    for j in [1usize, 3, 5, 7, params.lambda() as usize] {
        let measured = trajectory_crossings(&overlay, &msgs, j, &interval);
        table.row(vec![j.to_string(), measured.to_string(), fmt_f(expected)]);
        crossings.push(CrossingRow {
            step: j,
            measured,
            predicted: expected,
        });
    }
    println!("{}", table.to_markdown());
    finish(
        exp,
        &args,
        &runs,
        serde_json::to_value(&crossings).expect("crossing rows serialize"),
    );
}
