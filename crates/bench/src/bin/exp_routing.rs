//! Experiment E4/E5 — Lemmas 9–12: `A_ROUTING` delivery rate, exact dilation
//! `2λ+2`, congestion `O(k log n)`, and trajectory-crossing counts.

use serde::Serialize;

use tsa_analysis::{fmt_f, Table};
use tsa_bench::write_bench_json;
use tsa_overlay::{Interval, OverlayParams, Position};
use tsa_routing::{trajectory_crossings, uniform_workload, RoutableSeries};
use tsa_scenario::{Scenario, ScenarioOutcome};
use tsa_sim::NodeId;

/// One measured trajectory-crossing row (Lemma 12).
#[derive(Serialize)]
struct CrossingRow {
    step: usize,
    measured: usize,
    predicted: f64,
}

/// Everything `exp_routing` measures, as written to `BENCH_exp_routing.json`.
#[derive(Serialize)]
struct RoutingBench {
    scenarios: Vec<ScenarioOutcome>,
    crossings: Vec<CrossingRow>,
}

fn main() {
    // Lemma 9: delivery + dilation + congestion over n and k.
    let mut scenarios: Vec<ScenarioOutcome> = Vec::new();
    let mut table = Table::new(
        "Lemma 9 (measured): A_ROUTING with 25% holder failure per step",
        &[
            "n",
            "lambda",
            "k",
            "delivered",
            "dilation (rounds)",
            "max congestion",
            "congestion / (k·λ)",
        ],
    );
    for &n in &[128usize, 256, 512] {
        for k in [1usize, 4] {
            let outcome = Scenario::routing(n)
                .with_replication(4)
                .holder_failure(0.25)
                .messages_per_node(k)
                .seed(7)
                .workload_seed(3 + k as u64)
                .run(0);
            let r = outcome.routing.expect("routing outcome");
            table.row(vec![
                n.to_string(),
                r.lambda.to_string(),
                k.to_string(),
                format!("{}/{}", r.delivered, r.total),
                r.dilation.to_string(),
                r.max_congestion.to_string(),
                fmt_f(r.max_congestion as f64 / (k as f64 * r.lambda as f64)),
            ]);
            scenarios.push(outcome);
        }
    }
    println!("{}", table.to_markdown());

    // Lemma 12: trajectory crossings of an interval vs the k·n·|I| prediction.
    let n = 512usize;
    let params = OverlayParams::with_default_c(n);
    let series = RoutableSeries::new(params, 9, (0..n as u64).map(NodeId));
    let k = 2usize;
    let msgs = uniform_workload(&series, k, 13);
    let overlay = series.overlay(0);
    let interval = Interval::around(Position::new(0.42), 0.05);
    let expected = k as f64 * n as f64 * interval.length();
    let mut crossings: Vec<CrossingRow> = Vec::new();
    let mut table = Table::new(
        "Lemma 12 (measured): trajectories crossing an interval of length 0.1 (n = 512, k = 2)",
        &[
            "trajectory step j",
            "measured crossings",
            "predicted k·n·|I|",
        ],
    );
    for j in [1usize, 3, 5, 7, params.lambda() as usize] {
        let measured = trajectory_crossings(&overlay, &msgs, j, &interval);
        table.row(vec![j.to_string(), measured.to_string(), fmt_f(expected)]);
        crossings.push(CrossingRow {
            step: j,
            measured,
            predicted: expected,
        });
    }
    println!("{}", table.to_markdown());
    write_bench_json(
        "exp_routing",
        &RoutingBench {
            scenarios,
            crossings,
        },
    );
}
