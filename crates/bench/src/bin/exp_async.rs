//! Experiment ASYNC — does two-steps-ahead maintenance survive asynchrony?
//!
//! The paper proves Theorem 14 in a synchronous round model. This experiment
//! re-runs the maintained overlay on `tsa-event`'s virtual-time engine under
//! per-message latency regimes and compares swarm-property survival and
//! routing congestion against the synchronous baseline, as two declarative
//! sweeps over the execution-model axis:
//!
//! * `survival`: routability / participation / minimum swarm size under
//!   `n/4`-per-window random churn, across the latency regimes;
//! * `congestion`: churn-free steady-state per-node message load (the
//!   Lemma 24 quantity), across the same regimes.
//!
//! The regimes (1000 virtual ticks = one round):
//!
//! | label                   | network |
//! |-------------------------|---------|
//! | `sync`                  | the round engine (baseline) |
//! | `async(c500)`           | constant half-round delay — provably identical to sync |
//! | `async(u200-1800+j200)` | ~one-round delays, spread across two boundaries |
//! | `async(u1000-3000)`     | one-to-three-round delays |
//! | `async(p200/800a2)`     | heavy-tailed (Pareto α=2, capped at 8 rounds) |
//! | `async(u200-1800-l0.02)`| ~one-round delays plus 2% message loss |
//!
//! `--smoke` shrinks the grid to a seconds-long CI-sized run (same regimes,
//! one `n`, one seed) whose `BENCH_exp_async.json` is byte-reproducible —
//! CI runs it twice and diffs.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use serde::Serialize;
use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_bench::{experiment_spec, finish, run_sweeps, usage, ExpArgs};
use tsa_scenario::{AdversarySpec, ChurnSpec, ExecutionModel, LatencyModel};
use tsa_sweep::{RoundsSpec, SweepSpec};

/// One row of the machine-readable regime comparison stored in the BENCH
/// document's `extra` field.
#[derive(Serialize)]
struct RegimeRow {
    /// Network size.
    n: usize,
    /// Execution-model label (`sync` or `async(...)`).
    execution: String,
    /// Mean routable indicator over seed replicates (1.0 = always).
    routable: f64,
    /// Mean minimum swarm size of the final report.
    min_swarm_size: f64,
    /// Mean participation rate of the final report.
    participation_rate: f64,
    /// Mean whole-run peak per-node congestion.
    peak_congestion: f64,
    /// `peak_congestion` relative to the synchronous baseline at the same n.
    peak_congestion_vs_sync: f64,
}

/// The `extra` payload of `BENCH_exp_async.json`.
#[derive(Serialize)]
struct AsyncExtra {
    /// One row per (n, execution regime) of the survival sweep.
    regimes: Vec<RegimeRow>,
}

/// The latency regimes every sweep crosses with its other axes: the
/// synchronous baseline plus five asynchronous network models.
fn regimes() -> Vec<ExecutionModel> {
    vec![
        ExecutionModel::rounds(),
        ExecutionModel::asynchronous(LatencyModel::constant(500)),
        ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800)).with_jitter(200),
        ExecutionModel::asynchronous(LatencyModel::uniform(1000, 3000)),
        ExecutionModel::asynchronous(LatencyModel::pareto(200, 800, 1, 8000)),
        ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800)).with_loss(0.02),
    ]
}

fn main() {
    let exp = "exp_async";
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "maintained-overlay survival and congestion across asynchronous \
                 latency/jitter/loss regimes vs the synchronous baseline";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized grid (a few seconds end to end)",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    let (ns, survival_rounds, congestion_rounds, seeds): (&[usize], RoundsSpec, u64, u64) = if smoke
    {
        (&[48], RoundsSpec::MaturityAges(1), 4, 1)
    } else {
        (&[48, 96], RoundsSpec::MaturityAges(3), 6, 2)
    };

    let survival = SweepSpec::new("survival", experiment_spec(48))
        .over_n(ns.iter().copied())
        .over_churn([ChurnSpec::fraction(1, 4)])
        .over_adversaries([AdversarySpec::random(1, 211)])
        .over_execution(regimes())
        .rounds(survival_rounds)
        .seeds(41, seeds);

    let congestion = SweepSpec::new("congestion", experiment_spec(48))
        .over_n(ns.iter().copied())
        .over_churn([ChurnSpec::none()])
        .over_execution(regimes())
        .rounds(RoundsSpec::Fixed(congestion_rounds))
        .seeds(43, seeds);

    let runs = run_sweeps(exp, &args, vec![survival, congestion]);

    // The comparison the aggregate tables show per axis point, condensed to
    // one regime-vs-baseline table per n: did the swarm property survive,
    // and what did asynchrony cost in congestion?
    let mut table = Table::new(
        "Survival and congestion vs the synchronous baseline (survival sweep)",
        &[
            "n",
            "execution",
            "routable",
            "min swarm",
            "participation",
            "peak congestion",
            "vs sync",
        ],
    );
    let mut regimes_json = Vec::new();
    let metric = |g: &tsa_sweep::GroupSummary, name: &str| {
        g.metric(name).map(|m| m.mean).unwrap_or(f64::NAN)
    };
    let survival_agg = tsa_sweep::aggregate("survival", &runs[0].records);
    for &n in ns {
        let sync_peak = survival_agg
            .groups
            .iter()
            .find(|g| g.label.contains(&format!("n={n} ")) && !g.label.contains("exec="))
            .map(|g| metric(g, "peak_congestion"))
            .unwrap_or(f64::NAN);
        for group in survival_agg
            .groups
            .iter()
            .filter(|g| g.label.contains(&format!("n={n} ")))
        {
            let execution = group
                .label
                .split_whitespace()
                .find_map(|part| part.strip_prefix("exec="))
                .unwrap_or("sync");
            let routable = metric(group, "routable");
            let min_swarm = metric(group, "min_swarm_size");
            let participation = metric(group, "participation_rate");
            let peak = metric(group, "peak_congestion");
            table.row(vec![
                n.to_string(),
                execution.to_string(),
                fmt_bool(routable >= 1.0),
                fmt_f(min_swarm),
                fmt_f(participation),
                fmt_f(peak),
                format!("{:+.0}%", (peak / sync_peak - 1.0) * 100.0),
            ]);
            regimes_json.push(RegimeRow {
                n,
                execution: execution.to_string(),
                routable,
                min_swarm_size: min_swarm,
                participation_rate: participation,
                peak_congestion: peak,
                peak_congestion_vs_sync: peak / sync_peak,
            });
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "The half-round constant regime is bit-identical to the synchronous baseline (the\n\
         round engine is the event engine's sub-round special case). The interesting rows\n\
         are the multi-round and heavy-tail regimes: maintenance messages straddle epoch\n\
         boundaries there, so survival is a genuinely new result, not a re-proof."
    );

    let extra = AsyncExtra {
        regimes: regimes_json,
    };
    finish(exp, &args, &runs, serde::Serialize::to_value(&extra));
}
