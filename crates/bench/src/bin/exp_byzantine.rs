//! Experiment BYZANTINE — misbehaving nodes and injected faults.
//!
//! The paper's adversary controls *churn*: it may remove and insert nodes,
//! but every node that is in the network follows the protocol. This
//! experiment measures what happens when that assumption is dropped. A
//! [`ByzantineSpec`] marks an id slice as misbehaving (stale position
//! claims, forged positions, selective forwarding, bogus replies) and a
//! [`FaultPlan`] injects message-level faults (drop / delay / duplicate /
//! mutate) at the engines' delivery boundary. Three families of results:
//!
//! * **anchors** — the zero-fraction contract. Byzantine fraction 0 and the
//!   empty fault plan must reproduce the fault-free baselines byte for byte
//!   (report and snapshots on the round engine, report and zero fault
//!   counters on the event engine).
//! * **breaking points** — for each misbehavior kind, a sweep over the
//!   byzantine fraction on the round engine: the smallest fraction at which
//!   the swarm property ([`is_routable`](tsa_core::MaintenanceReport::is_routable)) fails. This is
//!   the measured analogue of the paper's all-honest assumption.
//! * **twins** — the cross-engine contract under faults. A loopback-TCP run
//!   with a non-empty fault plan and byzantine nodes, trace-replayed through
//!   the event engine under the *same* plan, must reproduce the transport's
//!   protocol state exactly — fault decisions are a pure function of
//!   `(seed, seq)`, so both engines take them byte-identically.
//!
//! Every field written to `BENCH_exp_byzantine.json` is machine-invariant (a
//! pure function of the seeds; the twin booleans hold regardless of recorded
//! fates), so CI byte-compares the artifact. Wall-clock numbers go to stdout
//! only. `--smoke` shrinks the grid to the CI-sized run whose output is the
//! committed artifact.

// Binaries own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::{Duration, Instant};

use serde::Serialize;
use tsa_analysis::{fmt_bool, fmt_f, Table};
use tsa_bench::{experiment_params, usage, write_bench_json_at, ExpArgs};
use tsa_core::{
    AsyncMaintenanceHarness, ByzantineSpec, MaintenanceHarness, MaintenanceParams, MisbehaviorKind,
    NetMaintenanceHarness,
};
use tsa_scenario::{FaultAction, FaultPlan, FaultRule, LatencyModel, NetModel, RoundWindow};
use tsa_sim::NullAdversary;

/// The milliseconds of wall clock one protocol round occupies on the
/// loopback transport (same choice as `exp_net`).
const ROUND_MS: u64 = 15;

/// A byzantine fraction `num/den`, kept exact for byte-stable JSON.
#[derive(Clone, Copy, Serialize)]
struct Fraction {
    num: u64,
    den: u64,
}

/// One fraction of one misbehavior kind's breaking-point sweep.
#[derive(Serialize)]
struct BreakingCell {
    num: u64,
    den: u64,
    routable: bool,
    participation_rate: f64,
    largest_component_fraction: f64,
    min_swarm_size: usize,
}

/// The breaking-point sweep of one misbehavior kind.
#[derive(Serialize)]
struct BreakingRow {
    kind: String,
    n: usize,
    rounds: u64,
    seed: u64,
    cells: Vec<BreakingCell>,
    /// Smallest swept fraction at which the swarm property fails, `null`
    /// when every swept fraction stays routable.
    breaking_point: Option<Fraction>,
}

/// The zero-fraction / empty-plan anchors (see the module docs).
#[derive(Serialize)]
struct AnchorDoc {
    /// Fraction `0/den` of every misbehavior kind reproduces the honest
    /// round-engine run byte for byte (report and snapshots).
    rounds_fraction_zero_matches_honest: bool,
    /// A zero-delay event run under `FaultPlan::default()` reproduces the
    /// honest round-engine report byte for byte.
    event_empty_plan_matches_honest: bool,
    /// Fraction `0/den` on the zero-delay event engine reproduces the honest
    /// round-engine report byte for byte.
    event_fraction_zero_matches_honest: bool,
    /// The empty plan fired no fault at all.
    empty_plan_injects_nothing: bool,
}

/// One transport-vs-twin cell under a non-empty fault plan.
#[derive(Serialize)]
struct TwinCell {
    kind: String,
    n: usize,
    rounds: u64,
    seed: u64,
    plan: String,
    /// Replaying the recorded trace under the same plan reproduced the
    /// transport's report, membership and every node snapshot.
    outcome_match: bool,
    /// The trace holds exactly one fate per message the transport sent
    /// (duplicates included).
    trace_complete: bool,
    /// Both engines took byte-identical fault decisions.
    fault_stats_match: bool,
}

/// The machine-invariant document CI byte-compares.
#[derive(Serialize)]
struct DeterministicDoc {
    all_match: bool,
    anchors: AnchorDoc,
    breaking: Vec<BreakingRow>,
    twins: Vec<TwinCell>,
}

/// The `BENCH_exp_byzantine.json` document.
#[derive(Serialize)]
struct ByzantineDoc {
    exp: String,
    smoke: bool,
    deterministic: DeterministicDoc,
}

/// The swept byzantine fractions (numerators over [`DEN`]).
const DEN: u64 = 16;

fn fraction_nums(smoke: bool) -> Vec<u64> {
    if smoke {
        vec![0, 1, 4, 8]
    } else {
        vec![0, 1, 2, 4, 8, 12]
    }
}

fn breaking_n(smoke: bool) -> usize {
    if smoke {
        48
    } else {
        64
    }
}

/// The mixed fault plan the twin cells run under: every action kind fires,
/// so the cross-engine pin covers drop, delay, duplicate *and* mutate in one
/// trace.
fn twin_plan() -> FaultPlan {
    FaultPlan::new()
        .with_rule(
            FaultRule::every(FaultAction::Drop)
                .with_prob(0.04)
                .in_window(RoundWindow::starting_at(2)),
        )
        .with_rule(FaultRule::every(FaultAction::Delay { ticks: 1500 }).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Duplicate).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Mutate).with_prob(0.05))
}

/// Runs a round-engine maintained scenario and returns the harness.
fn run_rounds(
    params: MaintenanceParams,
    seed: u64,
    rounds: u64,
) -> MaintenanceHarness<NullAdversary> {
    let mut h = MaintenanceHarness::assemble(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
    );
    h.run_bootstrap();
    h.run(rounds);
    h
}

/// The byte-identity fingerprint of a run: final report plus every node
/// snapshot.
fn fingerprint(report: &impl Serialize, snapshots: &impl Serialize) -> String {
    format!(
        "{}|{}",
        serde_json::to_string(report).expect("report serializes"),
        serde_json::to_string(snapshots).expect("snapshots serialize"),
    )
}

fn run_anchors(smoke: bool, seed: u64) -> AnchorDoc {
    let n = breaking_n(smoke);
    let rounds = 6;
    let params = experiment_params(n);
    let honest = run_rounds(params, seed, rounds);
    let honest_print = fingerprint(&honest.report(), &honest.snapshots());

    let rounds_fraction_zero_matches_honest = MisbehaviorKind::ALL.iter().all(|&kind| {
        let byz = run_rounds(
            params.with_byzantine(ByzantineSpec::fraction(0, DEN, kind)),
            seed,
            rounds,
        );
        fingerprint(&byz.report(), &byz.snapshots()) == honest_print
    });

    // The event-engine anchors: zero delay is the round engine bit for bit,
    // so the empty plan / zero fraction must land exactly on the honest
    // report.
    let zero_delay = NetModel::new(LatencyModel::constant(0));
    let mut empty_plan = AsyncMaintenanceHarness::assemble(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        zero_delay,
    );
    empty_plan.set_faults(FaultPlan::default());
    empty_plan.run_bootstrap();
    empty_plan.run(rounds);
    let event_empty_plan_matches_honest =
        fingerprint(&empty_plan.report(), &empty_plan.snapshots()) == honest_print;
    let empty_plan_injects_nothing = empty_plan.fault_stats().total() == 0;

    let mut zero_fraction = AsyncMaintenanceHarness::assemble(
        params.with_byzantine(ByzantineSpec::fraction(
            0,
            DEN,
            MisbehaviorKind::BogusReplies,
        )),
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        zero_delay,
    );
    zero_fraction.run_bootstrap();
    zero_fraction.run(rounds);
    let event_fraction_zero_matches_honest =
        fingerprint(&zero_fraction.report(), &zero_fraction.snapshots()) == honest_print;

    AnchorDoc {
        rounds_fraction_zero_matches_honest,
        event_empty_plan_matches_honest,
        event_fraction_zero_matches_honest,
        empty_plan_injects_nothing,
    }
}

fn run_breaking(smoke: bool, seed: u64) -> Vec<BreakingRow> {
    let n = breaking_n(smoke);
    let rounds = 8;
    let params = experiment_params(n);
    MisbehaviorKind::ALL
        .iter()
        .map(|&kind| {
            let mut cells = Vec::new();
            let mut breaking_point = None;
            for &num in &fraction_nums(smoke) {
                let spec = ByzantineSpec::fraction(num, DEN, kind);
                let h = run_rounds(params.with_byzantine(spec), seed, rounds);
                let report = h.report();
                let routable = report.is_routable();
                if !routable && breaking_point.is_none() {
                    breaking_point = Some(Fraction { num, den: DEN });
                }
                cells.push(BreakingCell {
                    num,
                    den: DEN,
                    routable,
                    participation_rate: report.participation_rate,
                    largest_component_fraction: report.largest_component_fraction,
                    min_swarm_size: report.min_swarm_size,
                });
            }
            BreakingRow {
                kind: kind.label().to_string(),
                n,
                rounds,
                seed,
                cells,
                breaking_point,
            }
        })
        .collect()
}

fn run_twins(smoke: bool) -> Vec<TwinCell> {
    let n = 16;
    let measured = 4;
    let params = experiment_params(n);
    let plan = twin_plan();
    let kinds: &[(MisbehaviorKind, u64)] = if smoke {
        &[
            (MisbehaviorKind::SelectiveForward, 17),
            (MisbehaviorKind::ForgedPosition, 23),
        ]
    } else {
        &[
            (MisbehaviorKind::StaleClaims, 11),
            (MisbehaviorKind::ForgedPosition, 23),
            (MisbehaviorKind::SelectiveForward, 17),
            (MisbehaviorKind::BogusReplies, 29),
        ]
    };
    kinds
        .iter()
        .map(|&(kind, seed)| {
            let byz_params = params.with_byzantine(ByzantineSpec::fraction(1, 8, kind));
            let total_rounds = byz_params.bootstrap_rounds() + measured;
            let mut real = NetMaintenanceHarness::assemble(
                byz_params,
                NullAdversary,
                seed,
                byz_params.paper_churn_rules(),
                byz_params.paper_lateness(),
                Duration::from_millis(ROUND_MS),
            );
            real.set_faults(plan.clone());
            real.run(total_rounds);
            let stats = real.net_stats();
            let trace = real.trace();
            let trace_complete = trace.len() as u64 == stats.sent;

            let mut twin = AsyncMaintenanceHarness::assemble_replay(
                byz_params,
                NullAdversary,
                seed,
                byz_params.paper_churn_rules(),
                byz_params.paper_lateness(),
                trace,
            );
            twin.set_faults(plan.clone());
            twin.run(total_rounds);
            let outcome_match = real.runner().member_ids() == twin.simulator().member_ids()
                && fingerprint(&real.report(), &real.snapshots())
                    == fingerprint(&twin.report(), &twin.snapshots());
            let fault_stats_match = real.fault_stats() == twin.fault_stats();
            TwinCell {
                kind: kind.label().to_string(),
                n,
                rounds: total_rounds,
                seed,
                plan: plan.label(),
                outcome_match,
                trace_complete,
                fault_stats_match,
            }
        })
        .collect()
}

fn main() {
    let exp = "exp_byzantine";
    // `--smoke` is this binary's own flag; everything else is the shared
    // experiment CLI.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let about = "byzantine misbehavior and injected faults: zero-fraction anchors, \
                 per-kind breaking points of the swarm property, and the cross-engine \
                 fault twin";
    let args = match ExpArgs::parse_from(rest) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!(
                "{}\n\nEXTRA:\n  --smoke        CI-sized grid (under a minute end to end)",
                usage(exp, about)
            );
            return;
        }
        Err(message) => {
            eprintln!("{exp}: {message}\n\n{}", usage(exp, about));
            std::process::exit(2);
        }
    };

    if args.list {
        // This experiment is not sweep-driven, so it lists its own grid.
        let nums = fraction_nums(smoke);
        println!(
            "{exp}: {} anchor checks, {} breaking cells, {} twin cells",
            2 + MisbehaviorKind::ALL.len(),
            MisbehaviorKind::ALL.len() * nums.len(),
            if smoke { 2 } else { 4 },
        );
        for kind in MisbehaviorKind::ALL {
            for num in &nums {
                println!(
                    "  breaking n={} kind={} byz={num}/{DEN}",
                    breaking_n(smoke),
                    kind.label()
                );
            }
        }
        return;
    }

    let seed = 17;
    let start = Instant::now();
    let anchors = run_anchors(smoke, seed);
    let breaking = run_breaking(smoke, seed);
    let twins = run_twins(smoke);
    let elapsed = start.elapsed();

    let mut table = Table::new(
        "Breaking points of the swarm property per misbehavior kind",
        &["kind", "n", "fractions (routable?)", "breaking point"],
    );
    for row in &breaking {
        let sweep = row
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{}/{}:{}",
                    c.num,
                    c.den,
                    if c.routable { "ok" } else { "FAIL" }
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        table.row(vec![
            row.kind.clone(),
            row.n.to_string(),
            sweep,
            match row.breaking_point {
                Some(f) => format!("{}/{}", f.num, f.den),
                None => "none observed".to_string(),
            },
        ]);
    }
    println!("{}", table.to_markdown());

    let mut twin_table = Table::new(
        "Transport vs event twin under a mixed fault plan",
        &["kind", "plan", "twin match", "fault stats match"],
    );
    for t in &twins {
        twin_table.row(vec![
            t.kind.clone(),
            t.plan.clone(),
            fmt_bool(t.outcome_match && t.trace_complete),
            fmt_bool(t.fault_stats_match),
        ]);
    }
    println!("{}", twin_table.to_markdown());
    println!(
        "Anchors: rounds byz-0 {} | event empty-plan {} | event byz-0 {} | zero injected {}",
        fmt_bool(anchors.rounds_fraction_zero_matches_honest),
        fmt_bool(anchors.event_empty_plan_matches_honest),
        fmt_bool(anchors.event_fraction_zero_matches_honest),
        fmt_bool(anchors.empty_plan_injects_nothing),
    );
    println!(
        "Everything in BENCH_{exp}.json is machine-invariant (CI byte-compares it); \
         wall clock: {}",
        fmt_f(elapsed.as_secs_f64())
    );

    let all_match = anchors.rounds_fraction_zero_matches_honest
        && anchors.event_empty_plan_matches_honest
        && anchors.event_fraction_zero_matches_honest
        && anchors.empty_plan_injects_nothing
        && twins
            .iter()
            .all(|t| t.outcome_match && t.trace_complete && t.fault_stats_match);
    let doc = ByzantineDoc {
        exp: exp.to_string(),
        smoke,
        deterministic: DeterministicDoc {
            all_match,
            anchors,
            breaking,
            twins,
        },
    };
    let artifact_path = match &args.out {
        Some(dir) => {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("warning: could not create {}: {err}", dir.display());
            }
            dir.join(format!("BENCH_{exp}.json"))
        }
        None => std::path::PathBuf::from(format!("BENCH_{exp}.json")),
    };
    // This artifact carries no timing section — it is machine-invariant in
    // full, so the compare gate is whole-file byte equality. A committed
    // artifact of the other grid shape (full vs --smoke) is no baseline.
    let committed = args.compare.then(|| {
        std::fs::read_to_string(&artifact_path).ok().filter(|text| {
            serde_json::parse_value(text)
                .ok()
                .and_then(|v| v.get("smoke").and_then(|s| s.as_bool()))
                == Some(smoke)
        })
    });
    write_bench_json_at(&artifact_path, &doc);
    if let Some(committed) = committed {
        let fresh = std::fs::read_to_string(&artifact_path).unwrap_or_default();
        let report = tsa_bench::compare_artifact(exp, committed.as_deref(), &fresh);
        match tsa_bench::compare::append_trajectory(
            args.out.as_deref(),
            exp,
            report.det_match,
            fresh.len() as u64,
            Vec::new(),
        ) {
            Ok(path) => println!("[{exp}] trajectory row appended to {}", path.display()),
            Err(err) => eprintln!("warning: could not append trajectory row: {err}"),
        }
        println!("{}", report.render());
        if !report.det_match {
            std::process::exit(1);
        }
    }
    if !all_match {
        eprintln!("{exp}: an anchor or twin check failed");
        std::process::exit(1);
    }
}
