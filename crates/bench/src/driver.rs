//! The shared sweep driver: every `exp_*` binary is a list of
//! [`SweepSpec`]s handed to [`run_sweeps`], which executes them with shard
//! checkpointing, prints the aggregated tables, and writes the
//! `BENCH_<exp>.json` artifact.

use std::path::PathBuf;

use serde::Serialize;
use serde_json::Value;
use tsa_dash::{MetricPoint, TraceBuilder};
use tsa_sweep::{aggregate, CellRecord, SweepAggregate, SweepRun, SweepRunner, SweepSpec};

use crate::cli::ExpArgs;
use crate::compare::{append_trajectory, compare_artifact};

/// The machine-readable artifact an experiment writes as `BENCH_<exp>.json`:
/// per-axis aggregates plus per-cell records — compacted to their
/// [`MetricsSummary`](tsa_sim::MetricsSummary) digests by default, with the
/// raw per-round metrics histories behind `--full` — plus any
/// experiment-specific extras.
#[derive(Clone, Debug, Serialize)]
pub struct BenchDoc {
    /// The experiment's name.
    pub exp: String,
    /// Whether the cell records keep their full metrics histories.
    pub full: bool,
    /// Aggregated sweep summaries (always present).
    pub aggregates: Vec<SweepAggregate>,
    /// Per-cell records, in sweep and enumeration order.
    pub cells: Vec<CellRecord>,
    /// Experiment-specific extra results (e.g. the Lemma 12 crossing counts),
    /// `Value::Null` when unused.
    pub extra: Value,
}

/// Where a sweep's shard file lives: `<out>/<exp>.<sweep>.jsonl` under
/// `--out`, otherwise `target/sweeps/<exp>.<sweep>.jsonl` (checkpoints are
/// build artifacts by default).
pub fn shard_path(exp: &str, sweep: &str, args: &ExpArgs) -> PathBuf {
    let dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("target").join("sweeps"));
    dir.join(format!("{exp}.{sweep}.jsonl"))
}

/// Where the `BENCH_<exp>.json` artifact lands for this invocation
/// (honouring `--out`).
pub fn bench_artifact_path(exp: &str, args: &ExpArgs) -> PathBuf {
    match &args.out {
        Some(dir) => dir.join(format!("BENCH_{exp}.json")),
        None => PathBuf::from(format!("BENCH_{exp}.json")),
    }
}

/// Renders the sweeps' enumerated cells — one line per cell with its stable
/// index, axis label, seed and measured rounds — without running anything.
/// This is what `--list` prints: the exact grid (and enumeration order, which
/// is the shard checkpoint key) a run would execute.
pub fn list_cells(exp: &str, sweeps: &[SweepSpec]) -> String {
    let mut out = String::new();
    let total: usize = sweeps.iter().map(|s| s.enumerate().len()).sum();
    out.push_str(&format!(
        "{exp}: {} sweep(s), {total} cell(s)\n",
        sweeps.len()
    ));
    for sweep in sweeps {
        let cells = sweep.enumerate();
        out.push_str(&format!(
            "\n{}.{} — {} cell(s)\n",
            exp,
            sweep.name,
            cells.len()
        ));
        for cell in cells {
            out.push_str(&format!(
                "  [{:>3}] {} seed={} rounds={}\n",
                cell.index,
                cell.spec.axis_label(),
                cell.spec.seed,
                cell.rounds,
            ));
        }
    }
    out
}

/// Runs each sweep (resuming from existing shards), prints its aggregate
/// table, and returns the runs in order. Under `--list` the cells are
/// printed instead and the process exits without executing any. Progress —
/// the executor's resume summary and per-cell lines — streams to stderr
/// unless `--quiet`; the tables are results and always print on stdout.
pub fn run_sweeps(exp: &str, args: &ExpArgs, sweeps: Vec<SweepSpec>) -> Vec<SweepRun> {
    let reporter = args.reporter();
    if args.list {
        reporter.result(list_cells(exp, &sweeps).trim_end());
        std::process::exit(0);
    }
    sweeps
        .into_iter()
        .map(|sweep| {
            let mut runner = SweepRunner::new(sweep.clone())
                .shard_path(shard_path(exp, &sweep.name, args))
                .reporter(reporter);
            if let Some(threads) = args.threads {
                runner = runner.threads(threads);
            }
            let run = runner.run();
            reporter.result(
                &aggregate(&sweep.name, &run.records)
                    .to_table()
                    .to_markdown(),
            );
            run
        })
        .collect()
}

/// Folds completed runs into the `BENCH_<exp>.json` document. With `--full`
/// the raw records ride along verbatim; otherwise each outcome is compacted
/// to its metrics digest (this is what shrinks `BENCH_exp_maintenance.json`
/// from thousands of per-round rows to a summary).
pub fn bench_doc(exp: &str, args: &ExpArgs, runs: &[SweepRun], extra: Value) -> BenchDoc {
    BenchDoc {
        exp: exp.to_string(),
        full: args.full,
        aggregates: runs
            .iter()
            .map(|run| aggregate(&run.spec.name, &run.records))
            .collect(),
        cells: runs
            .iter()
            .flat_map(|run| run.records.iter())
            .map(|record| CellRecord {
                cell: record.cell,
                rounds: record.rounds,
                outcome: if args.full {
                    record.outcome.clone()
                } else {
                    record.outcome.to_compact()
                },
            })
            .collect(),
        extra,
    }
}

/// Writes the document to `BENCH_<exp>.json` (honouring `--out`) and reports
/// the path on stdout.
pub fn write_bench_doc(exp: &str, args: &ExpArgs, doc: &BenchDoc) {
    match &args.out {
        Some(dir) => {
            if let Err(err) = std::fs::create_dir_all(dir) {
                tsa_obs::Reporter::default().error(&format!(
                    "warning: could not create {}: {err}",
                    dir.display()
                ));
            }
            crate::write_bench_json_at(&dir.join(format!("BENCH_{exp}.json")), doc);
        }
        None => crate::write_bench_json(exp, doc),
    }
}

/// The standard tail of every sweep-driven experiment binary: aggregate,
/// serialize, write — and, under `--compare` / `--trace`, gate the artifact
/// against the committed one and export the run's worker trace.
///
/// Under `--compare`, deterministic drift (the fresh artifact not
/// byte-matching the committed `BENCH_<exp>.json`) prints a metric-level
/// diff and exits with status 1; either way one machine-tagged row lands in
/// `TRAJECTORY.jsonl`. The committed bytes are read *before* the fresh
/// write, since both live at the same path.
pub fn finish(exp: &str, args: &ExpArgs, runs: &[SweepRun], extra: Value) {
    let doc = bench_doc(exp, args, runs, extra);
    let artifact = bench_artifact_path(exp, args);
    let committed = if args.compare {
        Some(std::fs::read_to_string(&artifact).ok())
    } else {
        None
    };
    write_bench_doc(exp, args, &doc);

    if let Some(path) = &args.trace {
        write_sweep_trace(exp, path, runs);
    }

    let Some(committed) = committed else { return };
    let reporter = args.reporter();
    let fresh = match std::fs::read_to_string(&artifact) {
        Ok(text) => text,
        Err(err) => {
            reporter.error(&format!(
                "{exp}: cannot re-read fresh artifact {}: {err}",
                artifact.display()
            ));
            std::process::exit(1);
        }
    };
    let report = compare_artifact(exp, committed.as_deref(), &fresh);
    match append_trajectory(
        args.out.as_deref(),
        exp,
        report.det_match,
        fresh.len() as u64,
        run_metrics(runs),
    ) {
        Ok(path) => reporter.note(&format!("{exp}: trajectory row -> {}", path.display())),
        Err(err) => reporter.error(&format!("{exp}: could not append trajectory row: {err}")),
    }
    reporter.result(&report.render());
    if !report.det_match {
        std::process::exit(1);
    }
}

/// The plottable scalars a sweep run contributes to its trajectory row:
/// per-sweep wall-clock seconds (timing — machine-dependent, plotted but
/// never gated) and executed-cell counts.
fn run_metrics(runs: &[SweepRun]) -> Vec<MetricPoint> {
    let mut metrics = Vec::new();
    for run in runs {
        let wall_us: u64 = run
            .cell_timings
            .iter()
            .map(|t| t.start_us + t.dur_us)
            .max()
            .unwrap_or(0);
        metrics.push(MetricPoint {
            name: format!("wall_secs[{}]", run.spec.name),
            value: wall_us as f64 / 1e6,
        });
        metrics.push(MetricPoint {
            name: format!("cells[{}]", run.spec.name),
            value: run.records.len() as f64,
        });
    }
    metrics
}

/// Exports the sweeps' wall-clock placement as trace-event JSON: one
/// process per sweep, one track per executor worker, one slice per cell.
fn write_sweep_trace(exp: &str, path: &std::path::Path, runs: &[SweepRun]) {
    let mut trace = TraceBuilder::new();
    for (i, run) in runs.iter().enumerate() {
        let pid = i as u64 + 1;
        trace.process_name(pid, &format!("{exp}.{}", run.spec.name));
        let workers: std::collections::BTreeSet<u64> =
            run.cell_timings.iter().map(|t| t.worker).collect();
        for worker in workers {
            trace.thread_name(pid, worker + 1, &format!("worker {worker}"));
        }
        for t in &run.cell_timings {
            trace.slice(pid, t.worker + 1, &t.label, t.start_us, t.dur_us);
        }
    }
    let reporter = tsa_obs::Reporter::default();
    match std::fs::write(path, trace.to_json()) {
        Ok(()) => reporter.result(&format!("wrote {}", path.display())),
        Err(err) => reporter.error(&format!(
            "{exp}: could not write trace {}: {err}",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_scenario::{ScenarioKind, ScenarioSpec};

    #[test]
    fn shard_paths_follow_the_out_flag() {
        let default = shard_path("exp_x", "grid", &ExpArgs::default());
        assert_eq!(default, PathBuf::from("target/sweeps/exp_x.grid.jsonl"));
        let out = ExpArgs {
            out: Some(PathBuf::from("results")),
            ..ExpArgs::default()
        };
        assert_eq!(
            shard_path("exp_x", "grid", &out),
            PathBuf::from("results/exp_x.grid.jsonl")
        );
    }

    #[test]
    fn listing_names_every_cell_without_running_any() {
        let mut base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 32);
        base.c = Some(1.5);
        let sweep = SweepSpec::new("grid", base)
            .over_n([32usize, 64])
            .rounds(tsa_sweep::RoundsSpec::Fixed(3))
            .seeds(7, 2);
        let cells = sweep.enumerate();
        let text = list_cells("exp_x", std::slice::from_ref(&sweep));
        assert!(text.starts_with(&format!("exp_x: 1 sweep(s), {} cell(s)", cells.len())));
        assert!(text.contains("exp_x.grid"));
        for cell in &cells {
            assert!(
                text.contains(&format!("[{:>3}] {}", cell.index, cell.spec.axis_label())),
                "cell {} missing from listing:\n{text}",
                cell.index
            );
            assert!(text.contains(&format!("seed={}", cell.spec.seed)));
        }
        assert_eq!(text.lines().count(), cells.len() + 3);
    }

    #[test]
    fn bench_docs_compact_unless_full_is_requested() {
        // A maintained cell, so there is a metrics history to compact away.
        let mut base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        base.c = Some(1.5);
        base.tau = Some(4);
        base.replication = Some(2);
        let sweep = SweepSpec::new("m", base).rounds(tsa_sweep::RoundsSpec::Fixed(3));
        let run = SweepRunner::new(sweep).threads(1).run();

        let compact = bench_doc(
            "exp_t",
            &ExpArgs::default(),
            std::slice::from_ref(&run),
            Value::Null,
        );
        assert_eq!(compact.aggregates.len(), 1);
        assert_eq!(compact.cells.len(), 1);
        let m = compact.cells[0].outcome.maintenance.as_ref().unwrap();
        assert!(m.metrics.is_none(), "history compacted away by default");
        assert!(m.metrics_summary.rounds > 0, "digest kept");

        let full_args = ExpArgs {
            full: true,
            ..ExpArgs::default()
        };
        let full = bench_doc("exp_t", &full_args, &[run], Value::Null);
        let m = full.cells[0].outcome.maintenance.as_ref().unwrap();
        assert!(m.metrics.is_some(), "--full keeps the raw history");
        // The document serializes (the artifact write path), and compacting
        // actually shrinks it.
        let full_json = serde_json::to_string(&full).unwrap();
        let compact_json = serde_json::to_string(&compact).unwrap();
        assert!(full_json.contains("aggregates"));
        assert!(compact_json.len() < full_json.len() / 2);
    }
}
