//! Minimal flag parsing shared by every `exp_*` binary.
//!
//! All experiment binaries accept the same five flags plus `--help`:
//!
//! * `--full` — keep full-fidelity results (per-round metrics histories and
//!   the raw per-cell records) in `BENCH_<exp>.json` instead of the compact
//!   aggregate;
//! * `--list` — print every enumerated sweep cell (index, axis label, seed,
//!   rounds) and exit without running anything;
//! * `--out <dir>` — directory for `BENCH_<exp>.json` and the sweep shard
//!   files (default: `BENCH_<exp>.json` in the current directory, shards
//!   under `target/sweeps/`);
//! * `--threads <k>` — worker threads for sweep execution (default:
//!   `TSA_THREADS` or the machine's parallelism);
//! * `--quiet` — silence the stderr progress stream (resume summaries,
//!   per-cell progress lines); results on stdout are unaffected;
//! * `--compare` — hold the fresh artifact against the committed
//!   `BENCH_<exp>.json`, append a machine-tagged row to `TRAJECTORY.jsonl`,
//!   and exit non-zero with a metric-level diff on deterministic drift;
//! * `--trace <file>` — export the run's wall-clock placement (one track
//!   per sweep worker, one slice per cell) as Chrome-trace/Perfetto JSON.

use std::path::PathBuf;

use tsa_obs::Reporter;

/// Parsed command-line arguments of an experiment binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpArgs {
    /// Keep full-fidelity results in the BENCH artifact.
    pub full: bool,
    /// Print the enumerated sweep cells and exit without running anything.
    pub list: bool,
    /// Output directory override for the BENCH artifact and shards.
    pub out: Option<PathBuf>,
    /// Worker-thread override for sweep execution.
    pub threads: Option<usize>,
    /// Silence the stderr progress stream (stdout results still print).
    pub quiet: bool,
    /// Hold the fresh artifact against the committed one and append a
    /// trajectory row; deterministic drift exits non-zero.
    pub compare: bool,
    /// Export the run's wall-clock worker/cell placement as trace-event
    /// JSON to this file.
    pub trace: Option<PathBuf>,
}

impl ExpArgs {
    /// Parses an argument list (without the program name). Returns an error
    /// message for unknown or malformed flags; `Ok(None)` means `--help` was
    /// requested and usage should be printed.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Option<ExpArgs>, String> {
        let mut parsed = ExpArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Ok(None),
                "--full" => parsed.full = true,
                "--list" => parsed.list = true,
                "--out" => {
                    let dir = args.next().ok_or("--out requires a directory argument")?;
                    parsed.out = Some(PathBuf::from(dir));
                }
                "--threads" => {
                    let k = args.next().ok_or("--threads requires a count argument")?;
                    let k: usize = k
                        .parse()
                        .map_err(|_| format!("--threads expects a positive integer, got {k:?}"))?;
                    if k == 0 {
                        return Err("--threads expects a positive integer, got 0".to_string());
                    }
                    parsed.threads = Some(k);
                }
                "--quiet" => parsed.quiet = true,
                "--compare" => parsed.compare = true,
                "--trace" => {
                    let file = args.next().ok_or("--trace requires a file argument")?;
                    parsed.trace = Some(PathBuf::from(file));
                }
                other => return Err(format!("unknown flag {other:?} (try --help)")),
            }
        }
        Ok(Some(parsed))
    }

    /// Parses [`std::env::args`] for the experiment `exp`, printing usage and
    /// exiting on `--help` or a parse error.
    pub fn parse(exp: &str, about: &str) -> ExpArgs {
        let reporter = Reporter::default();
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(Some(args)) => args,
            Ok(None) => {
                reporter.result(&usage(exp, about));
                std::process::exit(0);
            }
            Err(message) => {
                reporter.error(&format!("{exp}: {message}\n\n{}", usage(exp, about)));
                std::process::exit(2);
            }
        }
    }

    /// The progress reporter this invocation asked for: the stderr stream,
    /// silenced by `--quiet`.
    pub fn reporter(&self) -> Reporter {
        Reporter::new(self.quiet)
    }
}

/// The usage text shared by the experiment binaries.
pub fn usage(exp: &str, about: &str) -> String {
    format!(
        "{exp} — {about}\n\
         \n\
         USAGE: {exp} [--full] [--list] [--out <dir>] [--threads <k>] [--quiet]\n\
         \x20       [--compare] [--trace <file>]\n\
         \n\
         OPTIONS:\n\
         \x20 --full         keep full-fidelity records (raw per-round metrics)\n\
         \x20                in BENCH_{exp}.json instead of the compact aggregate\n\
         \x20 --list         print the enumerated sweep cells and exit without\n\
         \x20                running anything\n\
         \x20 --out <dir>    write BENCH_{exp}.json and sweep shards under <dir>\n\
         \x20 --threads <k>  worker threads for sweep cells (default: TSA_THREADS\n\
         \x20                or the machine's available parallelism)\n\
         \x20 --quiet        silence the stderr progress stream (resume summary,\n\
         \x20                per-cell progress); stdout results still print\n\
         \x20 --compare      hold the fresh artifact against the committed\n\
         \x20                BENCH_{exp}.json (exit 1 + metric-level diff on\n\
         \x20                deterministic drift) and append one machine-tagged\n\
         \x20                row to TRAJECTORY.jsonl\n\
         \x20 --trace <file> export worker/cell wall-clock placement as\n\
         \x20                Chrome-trace JSON (open in Perfetto)\n\
         \x20 --help         print this help"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let args = ExpArgs::parse_from(strings(&[
            "--full",
            "--list",
            "--out",
            "results",
            "--threads",
            "4",
            "--quiet",
            "--compare",
            "--trace",
            "out.trace.json",
        ]))
        .unwrap()
        .unwrap();
        assert!(args.full);
        assert!(args.list);
        assert_eq!(args.out, Some(PathBuf::from("results")));
        assert_eq!(args.threads, Some(4));
        assert!(args.quiet);
        assert!(args.compare);
        assert_eq!(args.trace, Some(PathBuf::from("out.trace.json")));
        assert!(args.reporter().is_quiet());
        assert!(!ExpArgs::default().reporter().is_quiet());
        assert_eq!(
            ExpArgs::parse_from(strings(&[])).unwrap().unwrap(),
            ExpArgs::default()
        );
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(ExpArgs::parse_from(strings(&["--help"])).unwrap(), None);
        assert_eq!(
            ExpArgs::parse_from(strings(&["--full", "-h"])).unwrap(),
            None
        );
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(ExpArgs::parse_from(strings(&["--frobnicate"])).is_err());
        assert!(ExpArgs::parse_from(strings(&["--out"])).is_err());
        assert!(ExpArgs::parse_from(strings(&["--threads"])).is_err());
        assert!(ExpArgs::parse_from(strings(&["--threads", "zero"])).is_err());
        assert!(ExpArgs::parse_from(strings(&["--threads", "0"])).is_err());
        assert!(ExpArgs::parse_from(strings(&["--trace"])).is_err());
    }

    #[test]
    fn usage_names_every_flag() {
        let text = usage("exp_x", "test experiment");
        for flag in [
            "--full",
            "--list",
            "--out",
            "--threads",
            "--quiet",
            "--compare",
            "--trace",
            "--help",
        ] {
            assert!(text.contains(flag), "usage must document {flag}");
        }
    }
}
