//! The perf-trajectory gate behind `--compare`.
//!
//! A fresh experiment run is held against the committed `BENCH_<exp>.json`:
//! deterministic artifacts must byte-match (the same claim the
//! bench-regeneration CI job makes with `git diff`, but failing with a
//! *metric-level* diff naming the exact JSON paths that drifted), and
//! timing metrics are held to a relative tolerance band instead — wall
//! clocks differ across machines, so byte equality would be a lie there.
//! Every compared run appends one machine-tagged [`TrajectoryRow`] to
//! `TRAJECTORY.jsonl`, which the dashboard plots across PRs.

use std::path::{Path, PathBuf};

use serde_json::Value;
use tsa_dash::{append_row, machine_tag, MetricPoint, TrajectoryRow, TRAJECTORY_FILE};

/// Cap on reported diff lines: enough to localize drift, not enough to dump
/// a whole artifact into CI logs.
const DIFF_CAP: usize = 24;

/// The outcome of holding a fresh artifact against the committed one.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// The experiment name.
    pub exp: String,
    /// Whether a committed artifact existed to compare against.
    pub committed_found: bool,
    /// Whether the fresh artifact byte-matched the committed one. A missing
    /// committed artifact counts as a match (first run seeds the baseline).
    pub det_match: bool,
    /// Human-readable `path: committed -> fresh` lines (capped).
    pub diffs: Vec<String>,
}

impl CompareReport {
    /// Renders the report as the lines the binaries print.
    pub fn render(&self) -> String {
        if !self.committed_found {
            return format!(
                "{}: no committed artifact to compare against (baseline seeded)",
                self.exp
            );
        }
        if self.det_match {
            return format!("{}: fresh artifact matches the committed bytes", self.exp);
        }
        let mut out = format!(
            "{}: fresh artifact DIFFERS from the committed one ({} difference{} shown):",
            self.exp,
            self.diffs.len(),
            if self.diffs.len() == 1 { "" } else { "s" }
        );
        for d in &self.diffs {
            out.push_str("\n  ");
            out.push_str(d);
        }
        out
    }
}

/// Compares a fresh artifact against the committed bytes. `committed` is
/// `None` when no artifact was committed yet.
pub fn compare_artifact(exp: &str, committed: Option<&str>, fresh: &str) -> CompareReport {
    let Some(committed) = committed else {
        return CompareReport {
            exp: exp.to_string(),
            committed_found: false,
            det_match: true,
            diffs: Vec::new(),
        };
    };
    if committed == fresh {
        return CompareReport {
            exp: exp.to_string(),
            committed_found: true,
            det_match: true,
            diffs: Vec::new(),
        };
    }
    // Byte mismatch: localize it. Parse failures fall back to a one-line
    // explanation rather than pretending the artifacts matched.
    let diffs = match (
        serde_json::parse_value(committed),
        serde_json::parse_value(fresh),
    ) {
        (Ok(a), Ok(b)) => {
            let mut out = Vec::new();
            diff_values("$", &a, &b, &mut out);
            if out.is_empty() {
                // Identical trees, different bytes (formatting drift).
                vec!["artifacts parse identically but differ in formatting".to_string()]
            } else {
                out
            }
        }
        (Err(_), _) => vec!["committed artifact is not valid JSON".to_string()],
        (_, Err(_)) => vec!["fresh artifact is not valid JSON".to_string()],
    };
    CompareReport {
        exp: exp.to_string(),
        committed_found: true,
        det_match: false,
        diffs,
    }
}

/// Recursively diffs two JSON values, recording `path: committed -> fresh`
/// lines (capped at `DIFF_CAP`).
pub fn diff_values(path: &str, a: &Value, b: &Value, out: &mut Vec<String>) {
    if out.len() >= DIFF_CAP {
        return;
    }
    match (a, b) {
        (Value::Object(ka), Value::Object(kb)) => {
            for (key, va) in ka {
                match b.get(key) {
                    Some(vb) => diff_values(&format!("{path}.{key}"), va, vb, out),
                    None => push_diff(out, format!("{path}.{key}: removed in fresh artifact")),
                }
            }
            for (key, _) in kb {
                if a.get(key).is_none() {
                    push_diff(out, format!("{path}.{key}: added in fresh artifact"));
                }
            }
        }
        (Value::Array(ia), Value::Array(ib)) => {
            if ia.len() != ib.len() {
                push_diff(out, format!("{path}: length {} -> {}", ia.len(), ib.len()));
                return;
            }
            for (i, (va, vb)) in ia.iter().zip(ib).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => push_diff(
            out,
            format!("{path}: {} -> {}", a.to_json_compact(), b.to_json_compact()),
        ),
    }
}

fn push_diff(out: &mut Vec<String>, line: String) {
    if out.len() < DIFF_CAP {
        out.push(line);
    }
}

/// Where the trajectory file lives for this invocation: under `--out` when
/// set, else the current directory (the repo root in normal use).
pub fn trajectory_path(out: Option<&Path>) -> PathBuf {
    out.unwrap_or_else(|| Path::new(".")).join(TRAJECTORY_FILE)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Appends the machine-tagged trajectory row for one compared run. Failures
/// are reported, not fatal: the trajectory observes the gate, it is not the
/// gate.
pub fn append_trajectory(
    out_dir: Option<&Path>,
    exp: &str,
    det_match: bool,
    artifact_bytes: u64,
    metrics: Vec<MetricPoint>,
) -> std::io::Result<PathBuf> {
    let path = trajectory_path(out_dir);
    let row = TrajectoryRow {
        exp: exp.to_string(),
        unix_ms: unix_ms(),
        host: machine_tag(),
        det_match,
        artifact_bytes,
        metrics,
    };
    append_row(&path, &row)?;
    Ok(path)
}

/// Checks one fresh timing metric against its committed value with relative
/// tolerance `band` (e.g. 0.5 = ±50%). Returns `None` when within band, or
/// a description of the violation.
pub fn check_band(name: &str, committed: f64, fresh: f64, band: f64) -> Option<String> {
    if committed <= 0.0 {
        return None; // nothing meaningful to hold the fresh value against
    }
    let ratio = fresh / committed;
    if ratio < 1.0 - band || ratio > 1.0 + band {
        Some(format!(
            "{name}: committed {committed:.2}, fresh {fresh:.2} (ratio {ratio:.2} outside ±{band:.0}% band)",
            band = band * 100.0
        ))
    } else {
        None
    }
}

/// The outcome of holding one timing row against the band, with a wall-time
/// floor: rows too short to time meaningfully are *skipped with a reason*
/// rather than silently passed, so the gate's output says what it did not
/// check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BandOutcome {
    /// Both sides were long enough and the fresh value sits within the band.
    Within,
    /// Both sides were long enough and the fresh value left the band; the
    /// string names the metric and the ratio.
    Violation(String),
    /// At least one side ran under the wall-time floor, so a band there
    /// would gate on cache state and scheduler noise, not on the code. The
    /// string says which side was too short — it must be *printed*, not
    /// swallowed.
    Skipped(String),
}

/// [`check_band`] with a wall-time floor: rows whose measured window is
/// shorter than `min_wall_ms` on either side are skipped (sub-millisecond
/// cells flip 2× on cache state alone), and the skip is announced through
/// [`BandOutcome::Skipped`] rather than silently treated as in-band.
#[allow(clippy::too_many_arguments)]
pub fn check_band_floored(
    name: &str,
    committed: f64,
    fresh: f64,
    band: f64,
    committed_wall_ms: f64,
    fresh_wall_ms: f64,
    min_wall_ms: f64,
) -> BandOutcome {
    if committed_wall_ms < min_wall_ms || fresh_wall_ms < min_wall_ms {
        let side = match (committed_wall_ms < min_wall_ms, fresh_wall_ms < min_wall_ms) {
            (true, true) => {
                format!("committed {committed_wall_ms:.1} ms and fresh {fresh_wall_ms:.1} ms")
            }
            (true, false) => format!("committed {committed_wall_ms:.1} ms"),
            _ => format!("fresh {fresh_wall_ms:.1} ms"),
        };
        return BandOutcome::Skipped(format!(
            "{name}: skipped ({side} under the {min_wall_ms:.0} ms floor — too short to band)"
        ));
    }
    match check_band(name, committed, fresh, band) {
        Some(violation) => BandOutcome::Violation(violation),
        None => BandOutcome::Within,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_equal_artifacts_match() {
        let r = compare_artifact("exp_x", Some("{\"a\":1}"), "{\"a\":1}");
        assert!(r.det_match && r.committed_found);
        assert!(r.render().contains("matches"));
    }

    #[test]
    fn missing_committed_artifact_seeds_the_baseline() {
        let r = compare_artifact("exp_x", None, "{\"a\":1}");
        assert!(r.det_match && !r.committed_found);
        assert!(r.render().contains("baseline seeded"));
    }

    #[test]
    fn drift_is_localized_to_json_paths() {
        let committed = r#"{"exp":"x","cells":[{"cell":0,"sent":10},{"cell":1,"sent":20}]}"#;
        let fresh = r#"{"exp":"x","cells":[{"cell":0,"sent":10},{"cell":1,"sent":21}]}"#;
        let r = compare_artifact("exp_x", Some(committed), fresh);
        assert!(!r.det_match);
        assert_eq!(r.diffs, vec!["$.cells[1].sent: 20 -> 21"]);
        assert!(r.render().contains("$.cells[1].sent"));
    }

    #[test]
    fn structural_drift_reports_keys_and_lengths() {
        let mut out = Vec::new();
        diff_values(
            "$",
            &serde_json::parse_value(r#"{"a":1,"b":[1,2]}"#).unwrap(),
            &serde_json::parse_value(r#"{"b":[1],"c":3}"#).unwrap(),
            &mut out,
        );
        assert!(out.iter().any(|d| d.contains("$.a: removed")));
        assert!(out.iter().any(|d| d.contains("$.b: length 2 -> 1")));
        assert!(out.iter().any(|d| d.contains("$.c: added")));
    }

    #[test]
    fn diff_output_is_capped() {
        let committed: Vec<u64> = (0..100).collect();
        let fresh: Vec<u64> = (1..101).collect();
        let mut out = Vec::new();
        diff_values(
            "$",
            &serde_json::to_value(&committed).unwrap(),
            &serde_json::to_value(&fresh).unwrap(),
            &mut out,
        );
        assert_eq!(out.len(), DIFF_CAP);
    }

    #[test]
    fn tolerance_band_brackets_the_committed_value() {
        assert!(check_band("m", 100.0, 120.0, 0.5).is_none());
        assert!(check_band("m", 100.0, 60.0, 0.5).is_none());
        let violation = check_band("m", 100.0, 40.0, 0.5).unwrap();
        assert!(violation.contains("ratio 0.40"), "{violation}");
        assert!(check_band("m", 100.0, 151.0, 0.5).is_some());
        assert!(
            check_band("m", 0.0, 1000.0, 0.5).is_none(),
            "no baseline, no claim"
        );
    }

    #[test]
    fn sub_floor_rows_are_skipped_and_say_so() {
        // A 2× collapse on a sub-floor cell is noise, not a violation — but
        // the gate must announce the skip, naming the short side.
        let skip = check_band_floored("m", 100.0, 40.0, 0.5, 3.0, 200.0, 100.0);
        let BandOutcome::Skipped(msg) = skip else {
            panic!("expected a skip, got {skip:?}");
        };
        assert!(msg.contains("skipped"), "{msg}");
        assert!(msg.contains("committed 3.0 ms"), "{msg}");
        assert!(msg.contains("100 ms floor"), "{msg}");
        // The floor applies to either side: a fresh run that got *faster*
        // than the floor is skipped too (that speedup is exactly what a perf
        // PR produces — it must not read as a band violation).
        let fresh_short = check_band_floored("m", 100.0, 900.0, 0.5, 200.0, 8.0, 100.0);
        assert!(
            matches!(&fresh_short, BandOutcome::Skipped(m) if m.contains("fresh 8.0 ms")),
            "{fresh_short:?}"
        );
        let both_short = check_band_floored("m", 100.0, 900.0, 0.5, 1.0, 2.0, 100.0);
        assert!(
            matches!(&both_short, BandOutcome::Skipped(m) if m.contains("committed 1.0 ms and fresh 2.0 ms")),
            "{both_short:?}"
        );
        // Above the floor the band still bites in both directions.
        assert_eq!(
            check_band_floored("m", 100.0, 120.0, 0.5, 500.0, 500.0, 100.0),
            BandOutcome::Within
        );
        let violation = check_band_floored("m", 100.0, 40.0, 0.5, 500.0, 500.0, 100.0);
        assert!(
            matches!(&violation, BandOutcome::Violation(m) if m.contains("ratio 0.40")),
            "{violation:?}"
        );
        // Exactly at the floor counts as long enough.
        assert_eq!(
            check_band_floored("m", 100.0, 100.0, 0.5, 100.0, 100.0, 100.0),
            BandOutcome::Within
        );
    }

    #[test]
    fn trajectory_paths_follow_out() {
        assert_eq!(trajectory_path(None), PathBuf::from("./TRAJECTORY.jsonl"));
        assert_eq!(
            trajectory_path(Some(Path::new("results"))),
            PathBuf::from("results/TRAJECTORY.jsonl")
        );
        assert!(unix_ms() > 0);
    }
}
