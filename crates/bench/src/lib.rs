//! # tsa-bench — experiment harness and Criterion benchmarks
//!
//! Each binary in `src/bin/` regenerates one exhibit of the paper (or one
//! quantitative claim of a lemma/theorem) as a thin set of
//! [`tsa_sweep::SweepSpec`] declarations over the shared [`driver`] (shards,
//! resume, aggregation) and [`cli`] flags (`--full`, `--out`, `--threads`,
//! `--quiet`, `--help`); the Criterion benches in `benches/` measure the
//! wall-clock cost
//! of the core operations. `EXPERIMENTS.md` in the repository root records
//! the outputs. Every binary additionally writes its machine-readable
//! results as `BENCH_<exp>.json` (a [`BenchDoc`]: sweep aggregates plus
//! compacted cell records), so the bench trajectory can be tracked across
//! PRs.
//!
//! | binary            | exhibit / claim |
//! |--------------------|-----------------|
//! | `exp_table1`       | Table 1 — adversary-model comparison, measured as survival under a 2-late targeted attack |
//! | `exp_fig1`         | Figure 1 — LDS neighbourhood structure (swarm sizes, edge counts, swarm property) |
//! | `exp_routing`      | Lemmas 9–12 — delivery, dilation `2λ+2`, congestion `O(k log n)`, trajectory crossings |
//! | `exp_sampling`     | Lemma 13 — sampling uniformity and discard probability |
//! | `exp_maintenance`  | Theorem 14, Lemmas 16/17/20/22/24 — routability under churn, lateness ablation, connect load, congestion scaling |
//! | `exp_ablation`     | Robustness parameter `c`, replication `r` sweeps |
//! | `exp_async`        | Survival and congestion under bounded-delay asynchrony (latency/jitter/loss regimes vs the synchronous baseline) |
//! | `exp_partition`    | Regional partitions: bridge latency × loss survival grid, scheduled healing, the reconnection probe |
//! | `exp_perf`         | Round-loop throughput trajectory (rounds/s, msgs/s, peak RSS) |
//! | `exp_net`          | The overlay over loopback TCP: wall-clock throughput, bytes on the wire, and the deterministic-twin replay check |
//! | `exp_profile`      | The `tsa-obs` observability layer: deterministic counters/histograms per scheduler (CI byte-compares them) plus wall-clock phase spans |
//! | `exp_byzantine`    | Byzantine nodes and injected faults: zero-fraction anchors, per-kind breaking points of the swarm property, the cross-engine fault twin |

#![warn(missing_docs)]

pub mod cli;
pub mod compare;
pub mod driver;

pub use cli::{usage, ExpArgs};
pub use compare::{compare_artifact, CompareReport};
pub use driver::{
    bench_artifact_path, bench_doc, finish, list_cells, run_sweeps, shard_path, BenchDoc,
};

use serde::Serialize;
use tsa_core::MaintenanceParams;
use tsa_scenario::{Scenario, ScenarioKind, ScenarioSpec};

/// The standard network sizes used by the experiments. They are deliberately
/// modest so every experiment finishes in minutes on a laptop; the asymptotic
/// trends are already visible at these sizes.
pub const EXPERIMENT_SIZES: [usize; 3] = [64, 128, 256];

/// Maintenance-protocol parameters used across the experiments: slightly
/// reduced constants (`c`, `τ`, `r`) keep the message volume manageable while
/// preserving every qualitative property.
pub fn experiment_params(n: usize) -> MaintenanceParams {
    MaintenanceParams::new(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// The maintained-LDS scenario all experiments start from: the same reduced
/// constants as [`experiment_params`], expressed through the builder.
pub fn experiment_scenario(n: usize) -> Scenario {
    Scenario::maintained_lds(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// The maintained-LDS spec all sweeps start from: [`experiment_scenario`] as
/// plain data, ready for `SweepSpec` axes.
pub fn experiment_spec(n: usize) -> ScenarioSpec {
    experiment_scenario(n).spec().clone()
}

/// A spec of the given one-shot kind over `n` nodes, at the paper's defaults.
pub fn workload_spec(kind: ScenarioKind, n: usize) -> ScenarioSpec {
    ScenarioSpec::new(kind, n)
}

/// Writes `results` as pretty-printed JSON to `BENCH_<exp>.json` in the
/// current directory and reports the path on stdout.
pub fn write_bench_json<T: Serialize>(exp: &str, results: &T) {
    write_bench_json_at(std::path::Path::new(&format!("BENCH_{exp}.json")), results);
}

/// Writes `results` as pretty-printed JSON to `path` and reports the path on
/// stdout.
pub fn write_bench_json_at<T: Serialize>(path: &std::path::Path, results: &T) {
    let json = serde_json::to_string_pretty(results).expect("bench results serialize");
    let reporter = tsa_obs::Reporter::default();
    match std::fs::write(path, json) {
        Ok(()) => reporter.result(&format!(
            "\n[machine-readable results written to {}]",
            path.display()
        )),
        Err(err) => reporter.error(&format!(
            "warning: could not write {}: {err}",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_params_scale() {
        let small = experiment_params(64);
        let large = experiment_params(256);
        assert!(large.lambda() > small.lambda());
        assert_eq!(small.replication, 2);
    }

    #[test]
    fn experiment_scenario_matches_experiment_params() {
        let scenario = experiment_scenario(96);
        assert_eq!(scenario.spec().maintenance_params(), experiment_params(96));
    }
}
