//! # tsa-bench — experiment harness and Criterion benchmarks
//!
//! Each binary in `src/bin/` regenerates one exhibit of the paper (or one
//! quantitative claim of a lemma/theorem); the Criterion benches in `benches/`
//! measure the wall-clock cost of the core operations. `EXPERIMENTS.md` in the
//! repository root records the outputs. Every binary additionally writes its
//! machine-readable results as `BENCH_<exp>.json` (serialized
//! [`tsa_scenario::ScenarioOutcome`]s or experiment-specific rows), so the
//! bench trajectory can be tracked across PRs.
//!
//! | binary            | exhibit / claim |
//! |--------------------|-----------------|
//! | `exp_table1`       | Table 1 — adversary-model comparison, measured as survival under a 2-late targeted attack |
//! | `exp_fig1`         | Figure 1 — LDS neighbourhood structure (swarm sizes, edge counts, swarm property) |
//! | `exp_routing`      | Lemmas 9–12 — delivery, dilation `2λ+2`, congestion `O(k log n)`, trajectory crossings |
//! | `exp_sampling`     | Lemma 13 — sampling uniformity and discard probability |
//! | `exp_maintenance`  | Theorem 14, Lemmas 16/17/20/22/24 — routability under churn, lateness ablation, connect load, congestion scaling |
//! | `exp_ablation`     | Robustness parameter `c`, replication `r` sweeps |

#![warn(missing_docs)]

use serde::Serialize;
use tsa_core::MaintenanceParams;
use tsa_scenario::Scenario;

/// The standard network sizes used by the experiments. They are deliberately
/// modest so every experiment finishes in minutes on a laptop; the asymptotic
/// trends are already visible at these sizes.
pub const EXPERIMENT_SIZES: [usize; 3] = [64, 128, 256];

/// Maintenance-protocol parameters used across the experiments: slightly
/// reduced constants (`c`, `τ`, `r`) keep the message volume manageable while
/// preserving every qualitative property.
pub fn experiment_params(n: usize) -> MaintenanceParams {
    MaintenanceParams::new(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// The maintained-LDS scenario all experiments start from: the same reduced
/// constants as [`experiment_params`], expressed through the builder.
pub fn experiment_scenario(n: usize) -> Scenario {
    Scenario::maintained_lds(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// Writes `results` as pretty-printed JSON to `BENCH_<exp>.json` in the
/// current directory and reports the path on stdout.
pub fn write_bench_json<T: Serialize>(exp: &str, results: &T) {
    let path = format!("BENCH_{exp}.json");
    let json = serde_json::to_string_pretty(results).expect("bench results serialize");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\n[machine-readable results written to {path}]"),
        Err(err) => eprintln!("warning: could not write {path}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_params_scale() {
        let small = experiment_params(64);
        let large = experiment_params(256);
        assert!(large.lambda() > small.lambda());
        assert_eq!(small.replication, 2);
    }

    #[test]
    fn experiment_scenario_matches_experiment_params() {
        let scenario = experiment_scenario(96);
        assert_eq!(scenario.spec().maintenance_params(), experiment_params(96));
    }
}
