//! Criterion benchmark of [`tsa_overlay::SwarmIndex`]: range queries,
//! allocation-free counting, and incremental maintenance versus a full
//! rebuild under join/leave churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tsa_overlay::{Interval, OverlayParams, Position, SwarmIndex};
use tsa_sim::NodeId;

fn positions(n: usize, seed: u64) -> Vec<(NodeId, Position)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| (NodeId(id), Position::new(rng.gen::<f64>())))
        .collect()
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm_index/query");
    group.sample_size(10);
    for &n in &[1024usize, 16384] {
        let index = SwarmIndex::build(positions(n, 42));
        let params = OverlayParams::with_default_c(n);
        let radius = params.swarm_radius();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("within", n), &n, |b, _| {
            b.iter(|| {
                let p = Position::new(rng.gen::<f64>());
                std::hint::black_box(index.within(p, radius).len())
            })
        });
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("count_within", n), &n, |b, _| {
            b.iter(|| {
                let p = Position::new(rng.gen::<f64>());
                std::hint::black_box(index.count_within(p, radius))
            })
        });
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        group.bench_with_input(BenchmarkId::new("wraparound", n), &n, |b, _| {
            b.iter(|| {
                // An interval straddling 0/1: both halves of the ring.
                let interval = Interval::around(Position::new(rng.gen::<f64>() * 0.01), 0.02);
                std::hint::black_box(index.count_in_interval(&interval))
            })
        });
    }
    group.finish();
}

fn bench_churn_maintenance(c: &mut Criterion) {
    // One *round's* worth of churn — the paper's α n events spread over the
    // `4λ + 14` window, i.e. a handful of joins/leaves per round — applied
    // incrementally versus by rebuilding the index from scratch. Incremental
    // maintenance wins exactly in this regime (few events against a large
    // index); a whole window's churn applied at once would favour a rebuild.
    let mut group = c.benchmark_group("swarm_index/churn_round");
    group.sample_size(10);
    for &n in &[1024usize, 16384] {
        let assignment = positions(n, 42);
        let window = 4 * OverlayParams::with_default_c(n).lambda() as usize + 14;
        let batch = (n / 16 / window).max(1);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let mut index = SwarmIndex::build(assignment.iter().copied());
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let mut next_id = n as u64;
            b.iter(|| {
                for _ in 0..batch {
                    let (leave, _) = assignment[rng.gen::<u64>() as usize % n];
                    index.remove(leave);
                    index.insert(NodeId(next_id), Position::new(rng.gen::<f64>()));
                    index.insert(leave, Position::new(rng.gen::<f64>()));
                    index.remove(NodeId(next_id));
                    next_id += 1;
                }
                std::hint::black_box(index.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
            b.iter(|| {
                let index = SwarmIndex::build(assignment.iter().copied());
                std::hint::black_box(index.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries, bench_churn_maintenance);
criterion_main!(benches);
