//! Criterion benchmark of the maintenance protocol: wall-clock cost of one
//! simulated round (bootstrap-included) at different network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tsa_adversary::RandomChurnAdversary;
use tsa_bench::experiment_params;
use tsa_core::MaintenanceHarness;

fn bench_maintenance_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_round");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = experiment_params(n);
            let mut harness =
                MaintenanceHarness::new(params, RandomChurnAdversary::new(1, 3), 7);
            harness.run_bootstrap();
            b.iter(|| {
                harness.step();
                std::hint::black_box(harness.round())
            });
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_phase");
    group.sample_size(10);
    group.bench_function("n48", |b| {
        let params = experiment_params(48);
        b.iter(|| {
            let mut harness = MaintenanceHarness::without_churn(params, 11);
            harness.run_bootstrap();
            std::hint::black_box(harness.report().participating)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_maintenance_round, bench_bootstrap);
criterion_main!(benches);
