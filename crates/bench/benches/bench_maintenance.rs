//! Criterion benchmark of the maintenance protocol: wall-clock cost of one
//! simulated round (bootstrap-included) at different network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tsa_bench::experiment_scenario;
use tsa_scenario::{AdversarySpec, ChurnSpec};

fn bench_maintenance_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_round");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut run = experiment_scenario(n)
                .churn(ChurnSpec::paper())
                .adversary(AdversarySpec::random(1, 3))
                .seed(7)
                .build();
            run.run_bootstrap();
            b.iter(|| {
                run.step();
                std::hint::black_box(run.round())
            });
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_phase");
    group.sample_size(10);
    group.bench_function("n48", |b| {
        b.iter(|| {
            let mut run = experiment_scenario(48)
                .churn(ChurnSpec::none())
                .seed(11)
                .build();
            run.run_bootstrap();
            std::hint::black_box(run.report().participating)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_maintenance_round, bench_bootstrap);
criterion_main!(benches);
