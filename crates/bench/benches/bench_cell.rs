//! Criterion benchmark of one whole sweep cell: `Scenario::from_spec(..)
//! .run(rounds)` end to end — exactly what `tsa-sweep` executes thousands of
//! times per experiment, so this is the multiplier on every sweep, table and
//! CI run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tsa_bench::experiment_spec;
use tsa_scenario::{AdversarySpec, ChurnSpec, Scenario, ScenarioKind, ScenarioSpec};

fn bench_maintained_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell/maintained");
    group.sample_size(10);
    for &n in &[48usize, 96] {
        let mut spec = experiment_spec(n);
        spec.churn = ChurnSpec::fraction(1, 4);
        spec.adversary = AdversarySpec::random(1, 17);
        spec = spec.with_seed(23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(Scenario::from_spec(spec.clone()).run(6).is_routable()))
        });
    }
    group.finish();
}

fn bench_one_shot_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell/one_shot");
    group.sample_size(10);
    let mut sampling = ScenarioSpec::new(ScenarioKind::Sampling, 64);
    sampling.attempts = 2_000;
    group.bench_function("sampling_n64", |b| {
        b.iter(|| {
            std::hint::black_box(
                Scenario::from_spec(sampling.clone())
                    .run(0)
                    .sampling
                    .unwrap()
                    .discard_rate,
            )
        })
    });
    let routing = ScenarioSpec::new(ScenarioKind::Routing, 64).with_seed(3);
    group.bench_function("routing_n64", |b| {
        b.iter(|| {
            std::hint::black_box(
                Scenario::from_spec(routing.clone())
                    .run(0)
                    .routing
                    .unwrap()
                    .delivery_rate,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_maintained_cell, bench_one_shot_cells);
criterion_main!(benches);
