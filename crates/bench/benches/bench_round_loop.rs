//! Criterion benchmark of the engine's round loop in isolation.
//!
//! Two workloads bracket the engine's cost spectrum:
//!
//! * a synthetic flood protocol (every node messages its two id-adjacent
//!   peers) isolates the engine overhead itself — delivery sort, inbox
//!   slicing, outbox draining, metrics — with a near-zero compute phase;
//! * the full maintenance protocol measures a realistic compute phase on
//!   top, at 1 worker thread and at the machine's budget.
//!
//! `TSA_THREADS` bounds the parallel variants exactly as it does everywhere
//! else.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tsa_bench::experiment_scenario;
use tsa_scenario::{AdversarySpec, ChurnSpec};
use tsa_sim::prelude::*;
use tsa_sim::NullAdversary;

/// Every node floods a counter to its two id-adjacent peers each round.
struct Flood;

impl Process for Flood {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        let heard = inbox.len() as u64;
        let me = ctx.id().raw();
        ctx.send(NodeId(me.wrapping_add(1)), heard);
        if me > 0 {
            ctx.send(NodeId(me - 1), heard);
        }
    }
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_loop/flood");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = SimConfig::default()
                .with_seed(5)
                .with_history_window(8)
                .with_parallel(false);
            let mut sim = Simulator::new(config, NullAdversary, Box::new(|_, _| Flood));
            sim.seed_nodes(n);
            sim.run(2); // reach buffer steady state before timing
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.in_flight_count())
            });
        });
    }
    group.finish();
}

fn bench_maintained_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_loop/maintained");
    group.sample_size(10);
    for (label, threads) in [("t1", 1usize), ("budget", rayon::current_num_threads())] {
        group.bench_with_input(BenchmarkId::new(label, 96), &96usize, |b, &n| {
            rayon::with_thread_cap(threads, || {
                let mut run = experiment_scenario(n)
                    .churn(ChurnSpec::paper())
                    .adversary(AdversarySpec::random(1, 3))
                    .seed(7)
                    .build();
                run.run_bootstrap();
                b.iter(|| {
                    run.step();
                    std::hint::black_box(run.round())
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_overhead, bench_maintained_round);
criterion_main!(benches);
