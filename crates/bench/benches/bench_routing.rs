//! Criterion benchmarks of `A_ROUTING` and `A_SAMPLING` (wall-clock cost of
//! the Lemma 9 / Lemma 13 workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_overlay::{Lds, OverlayParams};
use tsa_routing::{sample_many, uniform_workload, RoutableSeries, RoutingConfig, RoutingSim};
use tsa_sim::NodeId;

fn bench_route_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_k1_messages");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let series = RoutableSeries::new(
                OverlayParams::with_default_c(n),
                11,
                (0..n as u64).map(NodeId),
            );
            let messages = uniform_workload(&series, 1, 3);
            let sim = RoutingSim::new(&series, RoutingConfig::default().with_replication(3));
            b.iter(|| std::hint::black_box(sim.route_all(0, &messages).delivered));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_1000_draws");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let overlay = Lds::random(
                OverlayParams::with_default_c(n),
                (0..n as u64).map(NodeId),
                &mut rng,
            );
            b.iter(|| std::hint::black_box(sample_many(&overlay, 1000, 7).delivered()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route_all, bench_sampling);
criterion_main!(benches);
