//! Criterion benchmarks of the overlay substrate: building an LDS snapshot,
//! swarm range queries, and trajectory computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use tsa_overlay::{Lds, OverlayParams, Position, Trajectory};
use tsa_sim::NodeId;

fn bench_lds_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lds_build");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = OverlayParams::with_default_c(n);
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let lds = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);
                std::hint::black_box(lds.len())
            });
        });
    }
    group.finish();
}

fn bench_swarm_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm_query");
    group.sample_size(20);
    for &n in &[1024usize, 8192] {
        let params = OverlayParams::with_default_c(n);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lds = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            b.iter(|| {
                let p = Position::new(rng.gen::<f64>());
                std::hint::black_box(lds.swarm(p).len())
            });
        });
    }
    group.finish();
}

fn bench_trajectory(c: &mut Criterion) {
    c.bench_function("trajectory_lambda_20", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            let v = Position::new(rng.gen::<f64>());
            let p = Position::new(rng.gen::<f64>());
            std::hint::black_box(Trajectory::compute(v, p, 20).len())
        });
    });
}

criterion_group!(
    benches,
    bench_lds_build,
    bench_swarm_queries,
    bench_trajectory
);
criterion_main!(benches);
