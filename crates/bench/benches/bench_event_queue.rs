//! Criterion benchmark of the event engine's hot structures in isolation.
//!
//! Three groups bracket what the `event_loop` row of `exp_perf` measures in
//! aggregate:
//!
//! * `event_queue/churn` — the calendar queue alone, under a steady-state
//!   push/boundary-drain churn at several live depths: the number is the
//!   per-operation cost the wheel replaced the `BinaryHeap` for;
//! * `event_queue/fate_block` — batched fate derivation: one ChaCha8 block
//!   serving 64 consecutive message fates, versus the 64 one-shot `route`
//!   calls it replaces;
//! * `event_queue/engine_round` — one full event-engine round of a lossy,
//!   jittery flood, the end-to-end composition of the two.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tsa_event::queue::{CalendarQueue, Pending};
use tsa_event::{EventConfig, EventSimulator, FateBlock, LatencyModel, NetModel};
use tsa_sim::prelude::*;
use tsa_sim::{NullAdversary, SimConfig};

/// Every node floods a counter to its two id-adjacent peers each round.
struct Flood;

impl Process for Flood {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        let heard = inbox.len() as u64;
        let me = ctx.id().raw();
        ctx.send(NodeId(me.wrapping_add(1)), heard);
        if me > 0 {
            ctx.send(NodeId(me - 1), heard);
        }
    }
}

fn pending(arrival: u64, seq: u64) -> Pending<u64> {
    Pending {
        arrival,
        seq,
        env: Envelope::new(NodeId(0), NodeId(seq % 64), 0, 0),
    }
}

/// Steady-state queue churn: each iteration pushes `depth / 8` events with
/// bounded pseudo-random deltas, advances one bucket, and drains what came
/// due — the live depth hovers around `depth`.
fn bench_queue_churn(c: &mut Criterion) {
    const WIDTH: u64 = 64;
    let mut group = c.benchmark_group("event_queue/churn");
    for &depth in &[256usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut queue: CalendarQueue<u64> = CalendarQueue::new(WIDTH);
            let mut seq = 0u64;
            let mut now = 0u64;
            // Pre-fill to the target depth before timing.
            while queue.len() < depth {
                let delta = (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % (8 * WIDTH);
                queue.push(pending(now + delta, seq));
                seq += 1;
            }
            b.iter(|| {
                for _ in 0..depth / 8 {
                    let delta = (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % (8 * WIDTH);
                    queue.push(pending(now + delta, seq));
                    seq += 1;
                }
                now += WIDTH;
                let mut popped = 0u64;
                while queue.pop_at_or_before(now).is_some() {
                    popped += 1;
                }
                std::hint::black_box(popped)
            });
        });
    }
    group.finish();
}

/// 64 consecutive fates through one cached block versus 64 one-shot
/// `route` calls (each of which derives, uses, and discards a block).
fn bench_fate_block(c: &mut Criterion) {
    let net = NetModel {
        latency: LatencyModel::uniform(100, 2600),
        jitter: 300,
        loss: 0.02,
    };
    let mut group = c.benchmark_group("event_queue/fate_block");
    group.bench_function("batched_64", |b| {
        let mut base = 0u64;
        b.iter(|| {
            let block = FateBlock::containing(5, base);
            let mut delivered = 0u64;
            for seq in base..base + 64 {
                if net.route_with(&block, seq).is_some() {
                    delivered += 1;
                }
            }
            base += 64;
            std::hint::black_box(delivered)
        });
    });
    group.bench_function("one_shot_64", |b| {
        let mut base = 0u64;
        b.iter(|| {
            let mut delivered = 0u64;
            for seq in base..base + 64 {
                if net.route(5, seq).is_some() {
                    delivered += 1;
                }
            }
            base += 64;
            std::hint::black_box(delivered)
        });
    });
    group.finish();
}

/// One full event-engine round: queue drain, inbox dispatch, fate-batched
/// routing of the new sends.
fn bench_engine_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/engine_round");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let net = NetModel {
                latency: LatencyModel::uniform(100, 2600),
                jitter: 300,
                loss: 0.02,
            };
            let config = EventConfig::new(
                SimConfig::default()
                    .with_seed(5)
                    .with_history_window(8)
                    .with_parallel(false),
                net,
            );
            let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Flood));
            sim.seed_nodes(n);
            sim.run(2); // reach queue steady state before timing
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.in_flight_count())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_churn,
    bench_fate_block,
    bench_engine_round
);
criterion_main!(benches);
