//! # tsa-obs — the deterministic observability layer
//!
//! Instrumentation for the three scheduler policies (`tsa-sim` rounds,
//! `tsa-event` virtual time, `tsa-net` loopback transport) and the sweep
//! executor, built around one contract:
//!
//! * **Deterministic measurements** — monotonic counters and fixed-bucket
//!   power-of-two histograms whose contents derive only from protocol state
//!   (messages per round, inbox sizes, churn events, sampling ages). Their
//!   snapshots are byte-identical across hosts, thread counts and runs, so
//!   CI can compare them like any other artifact.
//! * **Wall-clock measurements** — phase spans (deliver/compute/scatter in
//!   the round engine, pop/fate/dispatch in the event loop, encode/poll/
//!   barrier in the transport). These are honest timings and therefore
//!   machine-dependent; they live in a separate [`TimingSnapshot`] that is
//!   never byte-compared.
//!
//! The layer is zero-overhead when off: engines hold an [`ObsHandle`], and a
//! disabled handle ([`ObsHandle::off`]) performs no clock reads, takes no
//! locks and allocates nothing — every probe is a branch on a `None`.
//!
//! Determinism inside [`ObsRecorder`] comes from algebra, not scheduling:
//! every deterministic operation (counter add, bucket increment, maximum) is
//! commutative and associative, so totals are invariant under thread
//! interleaving — and the engines only record from their sequential
//! sections anyway.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Recorder trait and the two stock implementations
// ---------------------------------------------------------------------------

/// A sink for instrumentation events.
///
/// The deterministic methods ([`add`](Recorder::add),
/// [`observe`](Recorder::observe), [`observe_region`](Recorder::observe_region))
/// must only ever receive protocol-derived values; [`span_ns`](Recorder::span_ns)
/// is the wall-clock side and its values must never feed a byte-compared
/// artifact.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Records `value` into the power-of-two histogram `name`.
    fn observe(&self, name: &'static str, value: u64);
    /// Records `value` into the histogram `name` keyed by `region`.
    fn observe_region(&self, name: &'static str, region: u32, value: u64);
    /// Records one completed wall-clock span of `nanos` under `name`.
    fn span_ns(&self, name: &'static str, nanos: u64);
    /// Marks the end of protocol round `index`. Round boundaries are
    /// deterministic punctuation for stream-keeping recorders (the
    /// `tsa-dash` flight recorder); aggregate recorders ignore them, so the
    /// default is a no-op and existing snapshots are byte-unchanged.
    fn round_mark(&self, _index: u64) {}
}

/// A recorder that drops everything: the explicit no-op implementation, for
/// pinning that an attached-but-null recorder perturbs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn observe_region(&self, _name: &'static str, _region: u32, _value: u64) {}
    fn span_ns(&self, _name: &'static str, _nanos: u64) {}
}

/// The bucket a value falls into: its bit length (0 → bucket 0, 1 → 1,
/// 2..=3 → 2, 4..=7 → 3, …). Bucket `b > 0` covers `[2^(b-1), 2^b - 1]`.
pub fn bucket_of(value: u64) -> u32 {
    64 - value.leading_zeros()
}

/// One power-of-two histogram: count/sum/max plus 65 fixed buckets (bucket 0
/// holds the zeros). Merging two histograms is element-wise addition (and a
/// max), so accumulation commutes.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Hist {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.buckets[bucket_of(value) as usize] += 1;
    }
}

#[derive(Debug, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Debug, Default)]
struct DetState {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Hist>,
    region_histograms: BTreeMap<(&'static str, u32), Hist>,
}

/// The collecting recorder: deterministic counters/histograms in one store,
/// wall-clock spans in a strictly separate one, each behind its own lock.
#[derive(Debug, Default)]
pub struct ObsRecorder {
    det: Mutex<DetState>,
    timing: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl ObsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every deterministic counter and histogram, sorted by name
    /// (and region), so equal contents serialize to equal bytes.
    pub fn det_snapshot(&self) -> DetSnapshot {
        let det = self.det.lock().expect("det state lock");
        DetSnapshot {
            counters: det
                .counters
                .iter()
                .map(|(name, value)| CounterSnapshot {
                    name: name.to_string(),
                    value: *value,
                })
                .collect(),
            histograms: det
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnapshot::from_hist(name, h))
                .collect(),
            region_histograms: det
                .region_histograms
                .iter()
                .map(|((name, region), h)| RegionHistogramSnapshot {
                    region: *region,
                    histogram: HistogramSnapshot::from_hist(name, h),
                })
                .collect(),
        }
    }

    /// Snapshot of every wall-clock span aggregate, sorted by name. Honest
    /// timings: machine-dependent by construction, never byte-compared.
    pub fn timing_snapshot(&self) -> TimingSnapshot {
        let timing = self.timing.lock().expect("timing state lock");
        TimingSnapshot {
            spans: timing
                .iter()
                .map(|(name, s)| SpanSnapshot {
                    name: name.to_string(),
                    count: s.count,
                    total_ns: s.total_ns,
                    max_ns: s.max_ns,
                })
                .collect(),
        }
    }
}

impl Recorder for ObsRecorder {
    fn add(&self, name: &'static str, delta: u64) {
        let mut det = self.det.lock().expect("det state lock");
        *det.counters.entry(name).or_insert(0) += delta;
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut det = self.det.lock().expect("det state lock");
        det.histograms.entry(name).or_default().record(value);
    }

    fn observe_region(&self, name: &'static str, region: u32, value: u64) {
        let mut det = self.det.lock().expect("det state lock");
        det.region_histograms
            .entry((name, region))
            .or_default()
            .record(value);
    }

    fn span_ns(&self, name: &'static str, nanos: u64) {
        let mut timing = self.timing.lock().expect("timing state lock");
        let s = timing.entry(name).or_default();
        s.count += 1;
        s.total_ns += nanos;
        s.max_ns = s.max_ns.max(nanos);
    }
}

// ---------------------------------------------------------------------------
// Snapshots (the serializable faces of a recorder)
// ---------------------------------------------------------------------------

/// One monotonic counter's final value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// The counter's name.
    pub name: String,
    /// Its accumulated value.
    pub value: u64,
}

/// One occupied histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// The bucket index: the bit length of the values it covers (bucket
    /// `b > 0` covers `[2^(b-1), 2^b - 1]`; bucket 0 holds zeros).
    pub bucket: u32,
    /// Observations in this bucket.
    pub count: u64,
}

/// One power-of-two histogram's contents (only occupied buckets, in
/// ascending order).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// The histogram's name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// The occupied buckets.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    fn from_hist(name: &str, h: &Hist) -> Self {
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(bucket, count)| BucketCount {
                    bucket: bucket as u32,
                    count: *count,
                })
                .collect(),
        }
    }
}

/// A histogram keyed by region (the per-region probes, e.g. sampling ages).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionHistogramSnapshot {
    /// The region key.
    pub region: u32,
    /// The region's histogram.
    pub histogram: HistogramSnapshot,
}

/// Everything deterministic a recorder collected: byte-identical across
/// hosts, thread counts and repeated runs of the same seed.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All region-keyed histograms, sorted by (name, region).
    pub region_histograms: Vec<RegionHistogramSnapshot>,
}

impl DetSnapshot {
    /// The snapshot restricted to entries whose name starts with `prefix` —
    /// e.g. `"proto."` to compare the scheduler-independent protocol
    /// measurements of two different engines.
    pub fn filtered(&self, prefix: &str) -> DetSnapshot {
        DetSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.name.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
            region_histograms: self
                .region_histograms
                .iter()
                .filter(|r| r.histogram.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// The value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The histogram `name`, if any value was ever observed under it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Every wall-clock span aggregate a recorder collected.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSnapshot {
    /// All spans, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

/// One phase span's aggregate: how often it ran and how long it took.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// The span's name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

// ---------------------------------------------------------------------------
// ObsHandle — what the engines actually hold
// ---------------------------------------------------------------------------

/// The engines' grip on a recorder: `None` is off, and off costs nothing —
/// no clock reads, no locks, no allocation; every probe is one branch.
#[derive(Clone, Default)]
pub struct ObsHandle(Option<Arc<dyn Recorder>>);

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObsHandle(on)"
        } else {
            "ObsHandle(off)"
        })
    }
}

impl ObsHandle {
    /// The disabled handle (the default state of every engine).
    pub fn off() -> Self {
        ObsHandle(None)
    }

    /// A handle delivering to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        ObsHandle(Some(recorder))
    }

    /// Whether a recorder is attached. Engines gate any per-item work
    /// (per-node observations, per-message tallies) on this.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Adds to a counter (no-op when off).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.0 {
            r.add(name, delta);
        }
    }

    /// Records into a histogram (no-op when off).
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(r) = &self.0 {
            r.observe(name, value);
        }
    }

    /// Records into a region-keyed histogram (no-op when off).
    pub fn observe_region(&self, name: &'static str, region: u32, value: u64) {
        if let Some(r) = &self.0 {
            r.observe_region(name, region, value);
        }
    }

    /// Marks a round boundary (no-op when off, and for aggregate-only
    /// recorders).
    pub fn round_mark(&self, index: u64) {
        if let Some(r) = &self.0 {
            r.round_mark(index);
        }
    }

    /// Starts a wall-clock span: reads the clock only when a recorder is
    /// attached. Pair with [`span_end`](ObsHandle::span_end).
    pub fn span_start(&self) -> Option<Instant> {
        self.0.as_ref().map(|_| Instant::now())
    }

    /// Completes a span started by [`span_start`](ObsHandle::span_start)
    /// (no-op when the start was taken while off).
    pub fn span_end(&self, name: &'static str, started: Option<Instant>) {
        if let (Some(r), Some(started)) = (&self.0, started) {
            r.span_ns(name, started.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Reporter and Progress — the human-facing side
// ---------------------------------------------------------------------------

/// Where human-facing output goes: results to stdout, progress notes to
/// stderr, and a `quiet` switch that silences the notes (never the results).
///
/// This is the migration target of the `print_stdout`/`print_stderr` lint
/// gate: library code routes its output through a `Reporter` instead of the
/// denied `println!`/`eprintln!` macros.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reporter {
    quiet: bool,
}

impl Reporter {
    /// A reporter; `quiet` silences progress notes (results still print).
    pub fn new(quiet: bool) -> Self {
        Reporter { quiet }
    }

    /// A reporter that prints nothing but results.
    pub fn silent() -> Self {
        Reporter { quiet: true }
    }

    /// Whether progress notes are silenced.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// A progress note on stderr (dropped under `quiet`; write errors are
    /// ignored, as a broken stderr must never fail a run).
    pub fn note(&self, message: &str) {
        if !self.quiet {
            let _ = writeln!(std::io::stderr().lock(), "{message}");
        }
    }

    /// A result line on stdout (always printed; write errors are ignored).
    pub fn result(&self, message: &str) {
        let _ = writeln!(std::io::stdout().lock(), "{message}");
    }

    /// An error line on stderr (always printed, `quiet` or not).
    pub fn error(&self, message: &str) {
        let _ = writeln!(std::io::stderr().lock(), "{message}");
    }
}

/// Recently completed item details kept for [`ProgressSnapshot`]s. Bounded
/// so a million-cell sweep cannot grow the sidecar without limit.
const PROGRESS_RECENT_CAP: usize = 512;

/// Shared progress over a known number of items: each completion prints one
/// `[done/total, eta]` note through the reporter. Thread-safe — sweep
/// workers call [`item_done`](Progress::item_done) concurrently.
///
/// Beyond the stderr notes, a `Progress` can render its state as a
/// machine-readable [`ProgressSnapshot`] at any time — the sweep executor
/// writes one to a JSON sidecar after every cell, and `--quiet` suppresses
/// only the stderr notes, never the sidecar.
#[derive(Debug)]
pub struct Progress {
    reporter: Reporter,
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    recent: Mutex<Vec<String>>,
}

impl Progress {
    /// Starts tracking `total` items under `label`, with `already_done` of
    /// them pre-completed (resumed from a checkpoint).
    pub fn start(reporter: Reporter, label: &str, total: usize, already_done: usize) -> Self {
        Progress {
            reporter,
            label: label.to_string(),
            total,
            done: AtomicUsize::new(already_done),
            started: Instant::now(),
            recent: Mutex::new(Vec::new()),
        }
    }

    /// Items completed so far (resumed included).
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Marks one item complete and prints `[label k/total, eta] detail`.
    /// The ETA extrapolates from the items completed since `start`.
    pub fn item_done(&self, detail: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        {
            // Keep the rollup for snapshots even under `quiet`: the sidecar
            // is machine-facing and quiet only governs the stderr notes.
            let mut recent = self.recent.lock().expect("progress recent lock");
            if recent.len() == PROGRESS_RECENT_CAP {
                recent.remove(0);
            }
            recent.push(detail.to_string());
        }
        if self.reporter.is_quiet() {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let remaining = self.total.saturating_sub(done);
        let eta = if remaining == 0 {
            String::from("done")
        } else {
            format!("eta {}", fmt_secs(eta_secs(elapsed, done, remaining)))
        };
        self.reporter.note(&format!(
            "[{} {done}/{}, {eta}] {detail}",
            self.label, self.total
        ));
    }

    /// The current state as a serializable snapshot: done/total, elapsed
    /// seconds, an ETA extrapolated the same way the stderr notes do it, and
    /// the most recent per-item rollup lines (bounded).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let done = self.done();
        let elapsed = self.started.elapsed().as_secs_f64();
        let remaining = self.total.saturating_sub(done);
        ProgressSnapshot {
            label: self.label.clone(),
            total: self.total as u64,
            done: done as u64,
            elapsed_secs: if elapsed.is_finite() { elapsed } else { 0.0 },
            eta_secs: eta_secs(elapsed, done, remaining),
            recent: self.recent.lock().expect("progress recent lock").clone(),
        }
    }
}

/// One [`Progress`] state, frozen for machines: what the stderr note says,
/// as data. Contains wall-clock durations, so it is never byte-compared.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// The progress label (typically `exp/sweep`).
    pub label: String,
    /// Total items.
    pub total: u64,
    /// Items completed (resumed included).
    pub done: u64,
    /// Seconds since tracking started.
    pub elapsed_secs: f64,
    /// Extrapolated seconds to completion (0 when done or not started).
    pub eta_secs: f64,
    /// The most recent per-item rollup lines, oldest first (bounded).
    pub recent: Vec<String>,
}

/// Extrapolated seconds to completion, guarded so a zero-duration cell (or
/// any other degenerate timing) can never leak `inf`/`NaN` into the
/// schema-versioned sidecar JSON: 0 items done or 0 remaining yield 0, and a
/// non-finite extrapolation clamps to 0.
fn eta_secs(elapsed: f64, done: usize, remaining: usize) -> f64 {
    if done == 0 || remaining == 0 {
        return 0.0;
    }
    let eta = elapsed / done as f64 * remaining as f64;
    if eta.is_finite() && eta >= 0.0 {
        eta
    } else {
        0.0
    }
}

/// Renders seconds compactly (`42s`, `3m10s`, `1h04m`).
fn fmt_secs(secs: f64) -> String {
    let s = secs.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn recorder_accumulates_and_snapshots_sorted() {
        let r = ObsRecorder::new();
        r.add("z.counter", 2);
        r.add("a.counter", 1);
        r.add("z.counter", 3);
        r.observe("m.hist", 0);
        r.observe("m.hist", 5);
        r.observe("m.hist", 6);
        r.observe_region("p.age", 1, 9);
        r.observe_region("p.age", 0, 2);
        let snap = r.det_snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].name, "a.counter");
        assert_eq!(snap.counters[1].value, 5);
        assert_eq!(snap.counter("z.counter"), 5);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("m.hist").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 11);
        assert_eq!(h.max, 6);
        // 0 → bucket 0; 5 and 6 → bucket 3.
        assert_eq!(
            h.buckets,
            vec![
                BucketCount {
                    bucket: 0,
                    count: 1
                },
                BucketCount {
                    bucket: 3,
                    count: 2
                }
            ]
        );
        // Region histograms sort by (name, region).
        assert_eq!(snap.region_histograms[0].region, 0);
        assert_eq!(snap.region_histograms[1].region, 1);
    }

    #[test]
    fn accumulation_order_is_irrelevant() {
        // The commutativity that makes ObsRecorder thread-count invariant:
        // the same multiset of events in two different orders produces
        // byte-identical snapshots.
        let a = ObsRecorder::new();
        let b = ObsRecorder::new();
        let events: Vec<u64> = vec![3, 0, 17, 17, 255, 4];
        for &v in &events {
            a.add("c", v);
            a.observe("h", v);
        }
        for &v in events.iter().rev() {
            b.add("c", v);
            b.observe("h", v);
        }
        assert_eq!(a.det_snapshot(), b.det_snapshot());
        assert_eq!(
            serde_json::to_string(&a.det_snapshot()).unwrap(),
            serde_json::to_string(&b.det_snapshot()).unwrap()
        );
    }

    #[test]
    fn spans_live_apart_from_the_deterministic_state() {
        let r = ObsRecorder::new();
        r.span_ns("phase", 100);
        r.span_ns("phase", 300);
        assert_eq!(r.det_snapshot(), DetSnapshot::default());
        let t = r.timing_snapshot();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].count, 2);
        assert_eq!(t.spans[0].total_ns, 400);
        assert_eq!(t.spans[0].max_ns, 300);
    }

    #[test]
    fn off_handle_is_inert_and_null_recorder_drops_everything() {
        let off = ObsHandle::off();
        assert!(!off.is_on());
        off.add("c", 1);
        off.observe("h", 1);
        off.observe_region("r", 0, 1);
        assert!(off.span_start().is_none(), "off handles never read clocks");
        off.span_end("s", None);

        let null = Arc::new(NullRecorder);
        let handle = ObsHandle::new(null);
        assert!(handle.is_on());
        handle.add("c", 1);
        handle.span_end("s", handle.span_start());
    }

    #[test]
    fn filtered_keeps_only_the_prefix() {
        let r = ObsRecorder::new();
        r.add("proto.sent", 10);
        r.add("sim.rounds", 3);
        r.observe("proto.inbox", 4);
        r.observe_region("proto.age", 2, 1);
        let full = r.det_snapshot();
        let proto = full.filtered("proto.");
        assert_eq!(proto.counters.len(), 1);
        assert_eq!(proto.counters[0].name, "proto.sent");
        assert_eq!(proto.histograms.len(), 1);
        assert_eq!(proto.region_histograms.len(), 1);
        assert!(full.filtered("nothing.").counters.is_empty());
    }

    #[test]
    fn progress_counts_and_reporter_quiet_mode() {
        let p = Progress::start(Reporter::silent(), "grid", 4, 1);
        assert_eq!(p.done(), 1);
        p.item_done("cell 0");
        p.item_done("cell 1");
        assert_eq!(p.done(), 3);
        assert!(Reporter::silent().is_quiet());
        assert!(!Reporter::new(false).is_quiet());
    }

    #[test]
    fn progress_snapshot_is_machine_readable_even_when_quiet() {
        let p = Progress::start(Reporter::silent(), "exp/sweep", 3, 0);
        p.item_done("n=64 delivered=10");
        let snap = p.snapshot();
        assert_eq!(snap.label, "exp/sweep");
        assert_eq!((snap.total, snap.done), (3, 1));
        assert!(snap.eta_secs >= 0.0);
        // Quiet suppresses stderr notes only — rollups still land here.
        assert_eq!(snap.recent, vec!["n=64 delivered=10".to_string()]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProgressSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.recent, snap.recent);
    }

    #[test]
    fn zero_duration_cells_never_leak_inf_or_nan_into_the_sidecar() {
        // The degenerate timings directly: zero elapsed, zero done, and
        // non-finite extrapolations all clamp to 0 instead of poisoning the
        // schema-versioned JSON.
        assert_eq!(eta_secs(0.0, 0, 10), 0.0);
        assert_eq!(eta_secs(0.0, 1, 10), 0.0);
        assert_eq!(eta_secs(5.0, 3, 0), 0.0);
        assert_eq!(eta_secs(f64::INFINITY, 1, 1), 0.0);
        assert_eq!(eta_secs(f64::NAN, 1, 1), 0.0);
        assert_eq!(eta_secs(-1.0, 1, 1), 0.0);
        assert_eq!(eta_secs(6.0, 3, 2), 4.0);
        // End to end: a snapshot taken the instant tracking starts (the
        // zero-elapsed cell) round-trips through serde with finite fields.
        let p = Progress::start(Reporter::silent(), "exp/sweep", 4, 0);
        p.item_done("cell 0");
        let snap = p.snapshot();
        assert!(snap.elapsed_secs.is_finite());
        assert!(snap.eta_secs.is_finite());
        let json = serde_json::to_string(&snap).unwrap();
        assert!(!json.contains("inf") && !json.contains("NaN") && !json.contains("null"));
        let back: ProgressSnapshot = serde_json::from_str(&json).unwrap();
        assert!(back.eta_secs.is_finite() && back.eta_secs >= 0.0);
        assert_eq!(back.done, 1);
    }

    #[test]
    fn progress_recent_is_bounded() {
        let p = Progress::start(Reporter::silent(), "big", 2000, 0);
        for i in 0..(PROGRESS_RECENT_CAP + 5) {
            p.item_done(&format!("cell {i}"));
        }
        let snap = p.snapshot();
        assert_eq!(snap.recent.len(), PROGRESS_RECENT_CAP);
        assert_eq!(
            snap.recent.last().unwrap(),
            &format!("cell {}", PROGRESS_RECENT_CAP + 4)
        );
    }

    #[test]
    fn round_mark_defaults_to_a_no_op() {
        let r = ObsRecorder::new();
        r.round_mark(7);
        assert_eq!(r.det_snapshot(), DetSnapshot::default());
        let h = ObsHandle::new(Arc::new(ObsRecorder::new()));
        h.round_mark(0);
        ObsHandle::off().round_mark(1);
    }

    #[test]
    fn seconds_format_compactly() {
        assert_eq!(fmt_secs(42.4), "42s");
        assert_eq!(fmt_secs(190.0), "3m10s");
        assert_eq!(fmt_secs(3840.0), "1h04m");
    }
}
