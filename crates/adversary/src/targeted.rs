//! Topology-aware adversaries: the strongest attacks the `(2, b)`-late model
//! allows.
//!
//! Both strategies read the newest communication graph the lateness filter
//! exposes (`G_{t-2}` for the paper's adversary) and concentrate their churn
//! budget on structurally important nodes:
//!
//! * [`TargetedSwarmAdversary`] picks a pivot node and removes the pivot plus
//!   everything it communicated with — in an overlay that does *not* relocate
//!   nodes this wipes out a whole swarm / neighbourhood and partitions the
//!   network; against the maintenance protocol it should be no better than
//!   random churn (Lemma 16), which is exactly what experiment E8 measures.
//! * [`DegreeAttackAdversary`] removes the highest-degree nodes of the observed
//!   graph, the classic "behead the hubs" attack.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_sim::{Adversary, ChurnPlan, CommGraph, KnowledgeView, NodeId, Round};

use crate::util::spread_joins;

/// Churns a pivot node together with its observed communication neighbourhood.
#[derive(Clone, Debug)]
pub struct TargetedSwarmAdversary {
    /// Maximum nodes removed per active round.
    pub departures_per_round: usize,
    /// Whether every departure is matched by a join (keeps `|V_t|` stable).
    pub replace_departures: bool,
    /// Act only every `period` rounds.
    pub period: u64,
    rng: ChaCha8Rng,
}

impl TargetedSwarmAdversary {
    /// Creates a targeted-swarm adversary with the given per-round volume.
    pub fn new(departures_per_round: usize, seed: u64) -> Self {
        TargetedSwarmAdversary {
            departures_per_round,
            replace_departures: true,
            period: 1,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5357_4152),
        }
    }

    /// Acts only every `period` rounds.
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self
    }

    /// Chooses the victim set from the latest visible graph: a random pivot
    /// and its outgoing neighbourhood, breadth-first until the budget is used.
    fn victims(
        &mut self,
        graph: &CommGraph,
        view: &KnowledgeView<'_>,
        limit: usize,
    ) -> Vec<NodeId> {
        let mut members: Vec<NodeId> = graph
            .members
            .iter()
            .copied()
            .filter(|id| view.contains(*id))
            .collect();
        if members.is_empty() {
            return Vec::new();
        }
        members.shuffle(&mut self.rng);
        let mut victims: Vec<NodeId> = Vec::with_capacity(limit);
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut member_iter = members.into_iter();
        while victims.len() < limit {
            let pivot = match frontier.pop() {
                Some(p) => p,
                None => match member_iter.next() {
                    Some(p) => p,
                    None => break,
                },
            };
            if victims.contains(&pivot) {
                continue;
            }
            if view.contains(pivot) {
                victims.push(pivot);
            }
            for succ in graph.successors(pivot) {
                if !victims.contains(&succ) && view.contains(succ) {
                    frontier.push(succ);
                }
            }
        }
        victims
    }
}

impl Adversary for TargetedSwarmAdversary {
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        if !round.is_multiple_of(self.period) {
            return ChurnPlan::none();
        }
        let Some(graph) = view.latest_topology().cloned() else {
            return ChurnPlan::none();
        };
        let budget = view.remaining_budget();
        let half_budget = if self.replace_departures {
            budget / 2
        } else {
            budget
        };
        let limit = half_budget.min(self.departures_per_round);
        let departures = self.victims(&graph, view, limit);
        let joins = if self.replace_departures {
            spread_joins(view, &mut self.rng, departures.len(), &departures, 2)
        } else {
            Vec::new()
        };
        ChurnPlan { departures, joins }
    }

    fn name(&self) -> &'static str {
        "targeted-swarm"
    }
}

/// Removes the highest-degree nodes of the newest visible communication graph.
#[derive(Clone, Debug)]
pub struct DegreeAttackAdversary {
    /// Maximum nodes removed per active round.
    pub departures_per_round: usize,
    /// Whether to replace departures with joins.
    pub replace_departures: bool,
    rng: ChaCha8Rng,
}

impl DegreeAttackAdversary {
    /// Creates a degree-targeting adversary.
    pub fn new(departures_per_round: usize, seed: u64) -> Self {
        DegreeAttackAdversary {
            departures_per_round,
            replace_departures: true,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x4445_4752),
        }
    }
}

impl Adversary for DegreeAttackAdversary {
    fn plan(&mut self, _round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        let Some(graph) = view.latest_topology() else {
            return ChurnPlan::none();
        };
        let budget = view.remaining_budget();
        let half_budget = if self.replace_departures {
            budget / 2
        } else {
            budget
        };
        let limit = half_budget.min(self.departures_per_round);
        let mut by_degree: Vec<(usize, NodeId)> = graph
            .members
            .iter()
            .copied()
            .filter(|id| view.contains(*id))
            .map(|id| (graph.out_degree(id) + graph.in_degree(id), id))
            .collect();
        by_degree.sort_by(|a, b| b.cmp(a));
        let departures: Vec<NodeId> = by_degree
            .into_iter()
            .take(limit)
            .map(|(_, id)| id)
            .collect();
        let joins = if self.replace_departures {
            spread_joins(view, &mut self.rng, departures.len(), &departures, 2)
        } else {
            Vec::new()
        };
        ChurnPlan { departures, joins }
    }

    fn name(&self) -> &'static str {
        "degree-attack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::prelude::*;
    use tsa_sim::ChurnRules;

    /// A star protocol: everyone talks to node 0, so node 0 is the obvious hub.
    struct Star;
    impl Process for Star {
        type Msg = ();
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
            if ctx.id() != NodeId(0) {
                ctx.send(NodeId(0), ());
            }
        }
    }

    fn rules() -> ChurnRules {
        ChurnRules {
            max_events: Some(10_000),
            window: 100,
            ..ChurnRules::default()
        }
    }

    #[test]
    fn degree_attack_kills_the_hub() {
        let adv = DegreeAttackAdversary::new(1, 1);
        let config = SimConfig::default()
            .with_churn_rules(rules())
            .with_lateness(Lateness {
                topology: 2,
                state: 100,
            });
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Star));
        sim.seed_nodes(16);
        sim.run(5);
        assert!(
            !sim.member_ids().contains(&NodeId(0)),
            "the hub must be removed once the adversary can see the topology"
        );
    }

    #[test]
    fn targeted_swarm_respects_budget_and_replaces() {
        let adv = TargetedSwarmAdversary::new(6, 2);
        let config = SimConfig::default()
            .with_churn_rules(ChurnRules {
                max_events: Some(12),
                window: 1000,
                ..ChurnRules::default()
            })
            .with_lateness(Lateness {
                topology: 2,
                state: 100,
            });
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Star));
        sim.seed_nodes(32);
        sim.run(6);
        let total_events: usize = sim
            .metrics()
            .rounds()
            .iter()
            .map(|m| m.departures + m.joins)
            .sum();
        assert!(total_events <= 12);
        assert!(
            sim.node_count() >= 26,
            "departures are replaced where budget allows"
        );
    }

    #[test]
    fn targeted_swarm_does_nothing_when_blind() {
        let adv = TargetedSwarmAdversary::new(8, 3);
        let config = SimConfig::default()
            .with_churn_rules(rules())
            .with_lateness(Lateness::oblivious());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Star));
        sim.seed_nodes(16);
        sim.run(4);
        assert_eq!(
            sim.node_count(),
            16,
            "an oblivious view gives the strategy nothing to target"
        );
    }

    #[test]
    fn adversary_names() {
        assert_eq!(TargetedSwarmAdversary::new(1, 0).name(), "targeted-swarm");
        assert_eq!(DegreeAttackAdversary::new(1, 0).name(), "degree-attack");
    }
}
