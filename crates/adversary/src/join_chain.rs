//! The Lemma 4 attack: joining via one-round-old nodes breaks any overlay.
//!
//! Lemma 4 proves that the model's join restriction (a bootstrap node must be
//! at least two rounds old) is necessary: if a node may join via a node that
//! itself joined only one round ago, even a completely oblivious
//! `(∞,∞)`-late adversary partitions the network. The strategy builds a chain
//! `v_1, v_2, …` where `v_{i+1}` joins via `v_i` and `v_{i-1}` is churned out
//! immediately, so every chain node only ever learns identifiers from the
//! original node set `V_0`; meanwhile the adversary slowly replaces all of
//! `V_0`. Eventually a chain node knows only departed nodes and cannot
//! introduce its successor to anybody — the successor is born disconnected.
//!
//! Experiment E2 runs this strategy once with the weakened join rule
//! (`min_bootstrap_age = 1`, attack succeeds) and once with the paper's rule
//! (`min_bootstrap_age = 2`, the engine rejects the chain joins and the attack
//! collapses into plain random churn).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_sim::{Adversary, ChurnPlan, JoinPlan, KnowledgeView, NodeId, Round};

use crate::util::{oldest_members, spread_joins};

/// The Lemma 4 join-chain adversary.
#[derive(Clone, Debug)]
pub struct JoinChainAdversary {
    /// Round at which the chain starts.
    pub start_round: Round,
    /// How many of the original nodes are replaced per round.
    pub erosion_per_round: usize,
    /// The most recently added chain node (the next join goes through it).
    chain_head: Option<NodeId>,
    /// The previous chain node (churned out as soon as the next link exists).
    chain_prev: Option<NodeId>,
    /// Identifiers of all chain members ever created.
    chain: Vec<NodeId>,
    rng: ChaCha8Rng,
}

impl JoinChainAdversary {
    /// Creates the join-chain attack.
    pub fn new(start_round: Round, erosion_per_round: usize, seed: u64) -> Self {
        JoinChainAdversary {
            start_round,
            erosion_per_round,
            chain_head: None,
            chain_prev: None,
            chain: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC4A1_4C11),
        }
    }

    /// All chain node identifiers created so far (oldest first).
    pub fn chain(&self) -> &[NodeId] {
        &self.chain
    }

    /// The current head of the chain.
    pub fn chain_head(&self) -> Option<NodeId> {
        self.chain_head
    }

    fn newest_member(&self, view: &KnowledgeView<'_>, joined_at: Round) -> Option<NodeId> {
        view.members()
            .filter(|(_, info)| info.joined_at == joined_at)
            .map(|(id, _)| id)
            .max()
    }
}

impl Adversary for JoinChainAdversary {
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        if round < self.start_round {
            return ChurnPlan::none();
        }

        // Bookkeeping: the node that joined last round (if any) becomes the new
        // chain head; the old head becomes "previous" and is churned out now.
        if round > self.start_round {
            if let Some(new_head) = self.newest_member(view, round - 1) {
                if !self.chain.contains(&new_head) && Some(new_head) != self.chain_head {
                    self.chain_prev = self.chain_head;
                    self.chain_head = Some(new_head);
                    self.chain.push(new_head);
                }
            }
        }

        let mut departures: Vec<NodeId> = Vec::new();
        if let Some(prev) = self.chain_prev.take() {
            if view.contains(prev) {
                departures.push(prev);
            }
        }

        // Erode the original stable core.
        let budget = view.remaining_budget() / 2;
        for id in oldest_members(view, self.erosion_per_round) {
            if departures.len() >= budget {
                break;
            }
            if Some(id) != self.chain_head && !departures.contains(&id) {
                departures.push(id);
            }
        }

        // Next chain link: join via the current head if it exists (this is the
        // move the paper's join rule forbids), otherwise start the chain via
        // any eligible bootstrap.
        let mut joins: Vec<JoinPlan> = Vec::new();
        let chain_bootstrap = self
            .chain_head
            .filter(|id| view.contains(*id))
            .or_else(|| view.eligible_bootstraps().first().copied());
        // The replacement joins below must not reuse the chain bootstrap:
        // together with the chain join that could exceed the per-bootstrap
        // fan-in and get the chain join rejected by the engine.
        let mut join_exclude = departures.clone();
        if let Some(bootstrap) = chain_bootstrap {
            if !departures.contains(&bootstrap) {
                joins.push(JoinPlan { bootstrap });
                join_exclude.push(bootstrap);
            }
        }
        // Replace the eroded nodes to keep the population stable.
        let replacements = departures.len().saturating_sub(joins.len());
        joins.extend(spread_joins(
            view,
            &mut self.rng,
            replacements,
            &join_exclude,
            2,
        ));

        ChurnPlan { departures, joins }
    }

    fn name(&self) -> &'static str {
        "join-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::prelude::*;
    use tsa_sim::ChurnRules;

    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {}
    }

    fn rules(min_bootstrap_age: u64) -> ChurnRules {
        ChurnRules {
            max_events: Some(10_000),
            window: 1000,
            min_bootstrap_age,
            ..ChurnRules::default()
        }
    }

    #[test]
    fn chain_grows_under_the_weak_join_rule() {
        let adv = JoinChainAdversary::new(2, 1, 1);
        let config = SimConfig::default().with_churn_rules(rules(1).with_weak_join_rule());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Idle));
        sim.seed_nodes(16);
        sim.run(12);
        let chain = sim.adversary().chain().to_vec();
        assert!(
            chain.len() >= 8,
            "one chain link per round, got {}",
            chain.len()
        );
        // Only the head survives; earlier links are churned out.
        let alive: Vec<NodeId> = chain
            .iter()
            .copied()
            .filter(|id| sim.member_ids().contains(id))
            .collect();
        assert!(
            alive.len() <= 2,
            "at most the newest links survive, got {alive:?}"
        );
    }

    #[test]
    fn paper_join_rule_blocks_the_chain() {
        let adv = JoinChainAdversary::new(2, 0, 2);
        let config = SimConfig::default().with_churn_rules(rules(2));
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Idle));
        sim.seed_nodes(16);
        sim.run(12);
        // Chain joins via one-round-old heads are rejected by the engine, so
        // the chain cannot grow beyond what old bootstrap nodes allow.
        let rejected: usize = sim.metrics().rounds().iter().map(|_| 0usize).sum::<usize>()
            + sim.last_churn_outcome().rejected_joins.len();
        let chain_len = sim.adversary().chain().len();
        assert!(
            chain_len < 12,
            "with the paper's rule the chain cannot add a link every round (len {chain_len}, rejected {rejected})"
        );
    }

    #[test]
    fn erosion_replaces_old_nodes() {
        let adv = JoinChainAdversary::new(0, 2, 3);
        let config = SimConfig::default().with_churn_rules(rules(1).with_weak_join_rule());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Idle));
        sim.seed_nodes(20);
        sim.run(15);
        let survivors_from_v0 = (0..20u64)
            .filter(|i| sim.member_ids().contains(&NodeId(*i)))
            .count();
        assert!(
            survivors_from_v0 < 20,
            "the original node set must shrink under erosion"
        );
        assert!(sim.node_count() >= 18, "population stays roughly stable");
    }
}
