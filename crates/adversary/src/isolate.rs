//! The Lemma 3 attack: a `(0,∞)`-late adversary isolates a newcomer.
//!
//! Lemma 3 shows that if the adversary always has *up-to-date* information
//! about the topology (lateness `a = 0`), it can cut a freshly joined node off
//! from the network in `O(log n)` rounds, no matter what the protocol does:
//!
//! 1. let a node `w` join via a node `v`;
//! 2. immediately churn out `v` and everything `v` contacted, so nobody who
//!    could spread `w`'s identifier survives;
//! 3. from then on churn out every node `w` communicates with, so no new node
//!    ever learns `w`'s identifier;
//! 4. meanwhile erode the original node set `V_0` (which contains everybody
//!    `w` might still know) and replace it with fresh nodes.
//!
//! Once all of `V_0` is gone, `w` only knows departed nodes and nobody knows
//! `w` — the network is partitioned. Experiment E1 runs this strategy against
//! the full maintenance protocol with `a = 0` and reports the number of rounds
//! until isolation; running the same strategy with the paper's `a = 2`
//! demonstrates why two steps of lateness are enough to survive.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_sim::{Adversary, ChurnPlan, JoinPlan, KnowledgeView, NodeId, Round};

use crate::util::{oldest_members, pick_random_members, spread_joins};

/// The phase the attack is currently in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Waiting for the configured start round, then injecting the victim.
    WaitingToInject,
    /// The victim joined last round via `sponsor`; kill the sponsor's
    /// neighbourhood as soon as it becomes visible.
    Injected { sponsor: NodeId },
    /// Steady state: suppress every node the victim talks to and erode `V_0`.
    Suppressing,
}

/// The Lemma 3 newcomer-isolation adversary.
#[derive(Clone, Debug)]
pub struct IsolateNewcomerAdversary {
    /// Round at which the victim is injected.
    pub inject_round: Round,
    /// Budget share used each round to erode the old node set.
    pub erosion_per_round: usize,
    victim: Option<NodeId>,
    phase: Phase,
    rng: ChaCha8Rng,
}

impl IsolateNewcomerAdversary {
    /// Creates the attack; the victim joins at `inject_round`.
    pub fn new(inject_round: Round, erosion_per_round: usize, seed: u64) -> Self {
        IsolateNewcomerAdversary {
            inject_round,
            erosion_per_round,
            victim: None,
            phase: Phase::WaitingToInject,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x1501_A7E0),
        }
    }

    /// The injected victim node, once it exists.
    pub fn victim(&self) -> Option<NodeId> {
        self.victim
    }

    /// Nodes the victim contacted in the newest graph the lateness allows us
    /// to see.
    fn victim_contacts(&self, view: &KnowledgeView<'_>) -> Vec<NodeId> {
        let Some(victim) = self.victim else {
            return Vec::new();
        };
        let mut contacts = Vec::new();
        if let Some(graph) = view.latest_topology() {
            contacts.extend(graph.successors(victim));
            contacts.extend(graph.predecessors(victim));
        }
        contacts.retain(|id| *id != victim && view.contains(*id));
        contacts.sort();
        contacts.dedup();
        contacts
    }
}

impl Adversary for IsolateNewcomerAdversary {
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        match self.phase {
            Phase::WaitingToInject => {
                if round < self.inject_round {
                    return ChurnPlan::none();
                }
                // Inject the victim via an arbitrary eligible bootstrap node.
                let Some(&sponsor) = view.eligible_bootstraps().first() else {
                    return ChurnPlan::none();
                };
                self.phase = Phase::Injected { sponsor };
                ChurnPlan {
                    departures: Vec::new(),
                    joins: vec![JoinPlan { bootstrap: sponsor }],
                }
            }
            Phase::Injected { sponsor } => {
                // The engine allocated the victim's id last round: it is the
                // member with the newest join round.
                if self.victim.is_none() {
                    self.victim = view
                        .members()
                        .filter(|(_, info)| info.joined_at + 1 == round)
                        .map(|(id, _)| id)
                        .max();
                }
                self.phase = Phase::Suppressing;
                // Kill the sponsor and everything the sponsor contacted in the
                // newest graph the lateness lets us see (the proof's set `D_2`).
                // For a 0-late adversary that is the round in which the sponsor
                // introduced the victim, so nobody who could spread the
                // victim's identifier survives; a 2-late adversary reads a
                // graph from before the introduction and removes the wrong set.
                let mut departures = vec![sponsor];
                if let Some(graph) = view.latest_topology() {
                    departures.extend(graph.successors(sponsor));
                }
                departures.sort();
                departures.dedup();
                departures.retain(|id| view.contains(*id) && Some(*id) != self.victim);
                // Spend the whole budget on this critical step: if one of the
                // sponsor's contacts survives, it will spread the victim's
                // identifier and the attack is over.
                departures.truncate(view.remaining_budget());
                ChurnPlan {
                    departures,
                    joins: Vec::new(),
                }
            }
            Phase::Suppressing => {
                let budget = view.remaining_budget();
                let mut departures = self.victim_contacts(view);
                departures.truncate(budget / 2);
                // Erode the old stable core with whatever budget remains.
                let erosion_budget = (budget / 2)
                    .saturating_sub(departures.len())
                    .min(self.erosion_per_round);
                for id in oldest_members(view, erosion_budget + departures.len()) {
                    if departures.len() >= budget / 2 {
                        break;
                    }
                    if Some(id) != self.victim && !departures.contains(&id) {
                        departures.push(id);
                    }
                }
                departures.retain(|id| Some(*id) != self.victim);
                let joins = spread_joins(view, &mut self.rng, departures.len(), &departures, 2);
                ChurnPlan { departures, joins }
            }
        }
    }

    fn name(&self) -> &'static str {
        "isolate-newcomer"
    }
}

/// A helper used by experiment E1 to decide whether the victim is isolated in
/// a given communication graph: nobody sends to it and it sends to nobody that
/// is still a member.
pub fn victim_is_isolated(
    view_members: &[NodeId],
    graph_edges: &[(NodeId, NodeId)],
    victim: NodeId,
) -> bool {
    if !view_members.contains(&victim) {
        return false; // it left the network, which is not the same as isolation
    }
    let talks_to_someone_alive = graph_edges
        .iter()
        .any(|(f, t)| *f == victim && view_members.contains(t) && *t != victim);
    let heard_by_someone = graph_edges.iter().any(|(_, t)| *t == victim);
    !talks_to_someone_alive && !heard_by_someone
}

/// A generic random-erosion helper adversary used by both impossibility
/// experiments: churns old nodes and replaces them, never touching `protected`.
#[derive(Clone, Debug)]
pub struct ErodeOldGuardAdversary {
    /// Nodes eroded per round.
    pub per_round: usize,
    /// Node that must never be churned (the experiment's observation target).
    pub protected: Option<NodeId>,
    rng: ChaCha8Rng,
}

impl ErodeOldGuardAdversary {
    /// Creates an erosion adversary.
    pub fn new(per_round: usize, seed: u64) -> Self {
        ErodeOldGuardAdversary {
            per_round,
            protected: None,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xE20D_E011),
        }
    }
}

impl Adversary for ErodeOldGuardAdversary {
    fn plan(&mut self, _round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        let budget = view.remaining_budget() / 2;
        let mut departures = pick_random_members(
            view,
            &mut self.rng,
            budget.min(self.per_round),
            &self.protected.map(|p| vec![p]).unwrap_or_default(),
        );
        departures.truncate(budget);
        let joins = spread_joins(view, &mut self.rng, departures.len(), &departures, 2);
        ChurnPlan { departures, joins }
    }

    fn name(&self) -> &'static str {
        "erode-old-guard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::prelude::*;
    use tsa_sim::ChurnRules;

    /// Every node keeps talking to everyone it has ever heard from.
    #[derive(Default)]
    struct Gossip {
        known: Vec<NodeId>,
    }
    impl Process for Gossip {
        type Msg = ();
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, inbox: &[Envelope<()>]) {
            for env in inbox {
                if !self.known.contains(&env.from) {
                    self.known.push(env.from);
                }
            }
            // Contact a couple of well-known identifiers plus everyone heard from.
            let me = ctx.id();
            for id in [NodeId(0), NodeId(1), NodeId(2)] {
                if id != me {
                    ctx.send(id, ());
                }
            }
            let known = self.known.clone();
            for id in known {
                if id != me {
                    ctx.send(id, ());
                }
            }
        }
    }

    fn rules() -> ChurnRules {
        ChurnRules {
            max_events: Some(10_000),
            window: 1000,
            ..ChurnRules::default()
        }
    }

    #[test]
    fn attack_injects_exactly_one_victim() {
        let adv = IsolateNewcomerAdversary::new(2, 2, 1);
        let config = SimConfig::default()
            .with_churn_rules(rules())
            .with_lateness(Lateness::zero_late_topology());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Gossip::default()));
        sim.seed_nodes(16);
        sim.run(6);
        let victim = sim.adversary().victim();
        assert!(victim.is_some(), "a victim must have been injected");
        assert!(
            sim.member_ids().contains(&victim.unwrap()),
            "the victim itself is never churned"
        );
    }

    #[test]
    fn suppression_churns_victim_contacts() {
        let adv = IsolateNewcomerAdversary::new(2, 4, 2);
        let config = SimConfig::default()
            .with_churn_rules(rules())
            .with_lateness(Lateness::zero_late_topology());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Gossip::default()));
        sim.seed_nodes(24);
        sim.run(12);
        let churned: usize = sim.metrics().rounds().iter().map(|m| m.departures).sum();
        assert!(churned > 0, "the attack must spend churn");
        // Node 0 is contacted by everyone (including the victim), so the
        // suppression phase removes it quickly.
        assert!(!sim.member_ids().contains(&NodeId(0)));
    }

    #[test]
    fn isolation_predicate() {
        let members = vec![NodeId(1), NodeId(2), NodeId(3)];
        let edges = vec![(NodeId(1), NodeId(2))];
        assert!(victim_is_isolated(&members, &edges, NodeId(3)));
        assert!(
            !victim_is_isolated(&members, &edges, NodeId(1)),
            "node 1 talks to node 2"
        );
        assert!(
            !victim_is_isolated(&members, &edges, NodeId(2)),
            "node 2 is heard by node 1"
        );
        assert!(
            !victim_is_isolated(&members, &edges, NodeId(9)),
            "non-members are not isolated"
        );
    }

    #[test]
    fn erosion_adversary_protects_its_target() {
        let mut adv = ErodeOldGuardAdversary::new(4, 3);
        adv.protected = Some(NodeId(0));
        let config = SimConfig::default().with_churn_rules(rules());
        let mut sim = Simulator::new(config, adv, Box::new(|_, _| Gossip::default()));
        sim.seed_nodes(16);
        sim.run(20);
        assert!(sim.member_ids().contains(&NodeId(0)));
        assert!(
            sim.metrics()
                .rounds()
                .iter()
                .map(|m| m.departures)
                .sum::<usize>()
                > 10
        );
    }
}
