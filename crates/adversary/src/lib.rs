//! # tsa-adversary — attack strategies for the `(a,b)`-late churn model
//!
//! Concrete implementations of the [`tsa_sim::Adversary`] trait:
//!
//! * [`RandomChurnAdversary`] — oblivious uniform churn (the control group);
//! * [`TargetedSwarmAdversary`] / [`DegreeAttackAdversary`] — the strongest
//!   attacks a topology-late adversary can mount: wipe out observed
//!   neighbourhoods or hubs;
//! * [`IsolateNewcomerAdversary`] — the Lemma 3 impossibility strategy that a
//!   `(0,∞)`-late adversary uses to cut a newcomer off;
//! * [`JoinChainAdversary`] — the Lemma 4 impossibility strategy exploiting a
//!   weakened join rule;
//! * [`ErodeOldGuardAdversary`] — background erosion of the stable core, used
//!   as a building block by the impossibility experiments.
//!
//! Every strategy only acts through the lateness-filtered
//! [`tsa_sim::KnowledgeView`], so an experiment that hands the same strategy a
//! different lateness automatically measures how much that knowledge is worth.

#![deny(missing_docs)]

pub mod isolate;
pub mod join_chain;
pub mod random_churn;
pub mod targeted;
pub mod util;

pub use isolate::{victim_is_isolated, ErodeOldGuardAdversary, IsolateNewcomerAdversary};
pub use join_chain::JoinChainAdversary;
pub use random_churn::RandomChurnAdversary;
pub use targeted::{DegreeAttackAdversary, TargetedSwarmAdversary};
