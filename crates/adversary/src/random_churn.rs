//! An oblivious adversary that churns uniformly random nodes.
//!
//! This is the weakest adversary in Table 1's spectrum and the control group
//! for the lateness ablation (experiment E8): because the maintenance protocol
//! makes the adversary's topology knowledge useless (Lemma 16), a 2-late
//! targeted adversary should do no better than this one.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_sim::{Adversary, ChurnPlan, KnowledgeView, Round};

use crate::util::{pick_random_members, spread_joins};

/// Churns a fixed number of uniformly random nodes per round and immediately
/// replaces them with the same number of joins, keeping the population stable.
#[derive(Clone, Debug)]
pub struct RandomChurnAdversary {
    /// Nodes to remove per active round.
    pub departures_per_round: usize,
    /// Nodes to add per active round (usually equal to `departures_per_round`).
    pub joins_per_round: usize,
    /// Only act every `period` rounds (1 = every round).
    pub period: u64,
    /// Maximum joins routed through the same bootstrap node.
    pub max_joins_per_bootstrap: usize,
    rng: ChaCha8Rng,
}

impl RandomChurnAdversary {
    /// Creates an adversary that replaces `churn_per_round` nodes each round.
    pub fn new(churn_per_round: usize, seed: u64) -> Self {
        RandomChurnAdversary {
            departures_per_round: churn_per_round,
            joins_per_round: churn_per_round,
            period: 1,
            max_joins_per_bootstrap: 2,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5241_4E44),
        }
    }

    /// Acts only every `period` rounds.
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self
    }

    /// Uses different departure and join volumes (shrinking or growing the
    /// network over time).
    pub fn with_rates(mut self, departures: usize, joins: usize) -> Self {
        self.departures_per_round = departures;
        self.joins_per_round = joins;
        self
    }
}

impl Adversary for RandomChurnAdversary {
    fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
        if !round.is_multiple_of(self.period) {
            return ChurnPlan::none();
        }
        let budget = view.remaining_budget();
        let departures_budget = budget.min(self.departures_per_round);
        let departures = pick_random_members(view, &mut self.rng, departures_budget, &[]);
        let joins_budget = budget
            .saturating_sub(departures.len())
            .min(self.joins_per_round);
        let joins = spread_joins(
            view,
            &mut self.rng,
            joins_budget,
            &departures,
            self.max_joins_per_bootstrap,
        );
        ChurnPlan { departures, joins }
    }

    fn name(&self) -> &'static str {
        "random-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::prelude::*;
    use tsa_sim::ChurnRules;

    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {}
    }

    fn run(
        adversary: RandomChurnAdversary,
        rules: ChurnRules,
        rounds: u64,
    ) -> Simulator<Idle, RandomChurnAdversary> {
        let config = SimConfig::default().with_churn_rules(rules);
        let mut sim = Simulator::new(config, adversary, Box::new(|_, _| Idle));
        sim.seed_nodes(64);
        sim.run(rounds);
        sim
    }

    #[test]
    fn population_stays_stable_under_balanced_churn() {
        let adv = RandomChurnAdversary::new(4, 1);
        // A short bootstrap phase so that eligible bootstrap nodes exist by the
        // time churn starts (the paper always assumes one).
        let rules = ChurnRules {
            max_events: Some(1000),
            window: 10,
            bootstrap_rounds: 2,
            ..ChurnRules::default()
        };
        let sim = run(adv, rules, 10);
        assert_eq!(sim.node_count(), 64, "joins replace departures");
        assert!(sim
            .metrics()
            .rounds()
            .iter()
            .skip(2)
            .any(|m| m.departures > 0));
    }

    #[test]
    fn budget_limits_are_respected() {
        let adv = RandomChurnAdversary::new(50, 2);
        let rules = ChurnRules {
            max_events: Some(8),
            window: 1000,
            ..ChurnRules::default()
        };
        let sim = run(adv, rules, 5);
        let total_churn: usize = sim
            .metrics()
            .rounds()
            .iter()
            .map(|m| m.departures + m.joins)
            .sum();
        assert!(total_churn <= 8, "churn {total_churn} exceeded budget 8");
    }

    #[test]
    fn period_gates_activity() {
        let adv = RandomChurnAdversary::new(4, 3).with_period(4);
        let rules = ChurnRules {
            max_events: Some(1000),
            window: 10,
            ..ChurnRules::default()
        };
        let sim = run(adv, rules, 8);
        let active_rounds = sim
            .metrics()
            .rounds()
            .iter()
            .filter(|m| m.departures > 0 || m.joins > 0)
            .count();
        assert!(
            active_rounds <= 2,
            "only rounds 0 and 4 may churn, got {active_rounds}"
        );
    }

    #[test]
    fn asymmetric_rates_shrink_the_network() {
        let adv = RandomChurnAdversary::new(0, 4).with_rates(2, 0);
        let rules = ChurnRules {
            max_events: Some(1000),
            window: 10,
            ..ChurnRules::default()
        };
        let sim = run(adv, rules, 5);
        assert_eq!(sim.node_count(), 64 - 10);
    }
}
