//! Shared helpers for adversary strategies.

use rand::seq::SliceRandom;
use rand::Rng;
use tsa_sim::{JoinPlan, KnowledgeView, NodeId};

/// Picks up to `count` distinct current members uniformly at random,
/// excluding `exclude`.
pub fn pick_random_members<R: Rng + ?Sized>(
    view: &KnowledgeView<'_>,
    rng: &mut R,
    count: usize,
    exclude: &[NodeId],
) -> Vec<NodeId> {
    let mut candidates: Vec<NodeId> = view
        .members()
        .map(|(id, _)| id)
        .filter(|id| !exclude.contains(id))
        .collect();
    candidates.shuffle(rng);
    candidates.truncate(count);
    candidates
}

/// Builds `count` join plans spread over eligible bootstrap nodes, excluding
/// the nodes in `exclude` (e.g. nodes about to be churned out) and respecting
/// the per-bootstrap fan-in `max_per_bootstrap`.
pub fn spread_joins<R: Rng + ?Sized>(
    view: &KnowledgeView<'_>,
    rng: &mut R,
    count: usize,
    exclude: &[NodeId],
    max_per_bootstrap: usize,
) -> Vec<JoinPlan> {
    let mut bootstraps: Vec<NodeId> = view
        .eligible_bootstraps()
        .into_iter()
        .filter(|id| !exclude.contains(id))
        .collect();
    if bootstraps.is_empty() || max_per_bootstrap == 0 {
        return Vec::new();
    }
    bootstraps.shuffle(rng);
    let mut joins = Vec::with_capacity(count);
    let mut idx = 0usize;
    let mut used_on_current = 0usize;
    while joins.len() < count {
        if idx >= bootstraps.len() {
            break; // every bootstrap is saturated
        }
        joins.push(JoinPlan {
            bootstrap: bootstraps[idx],
        });
        used_on_current += 1;
        if used_on_current >= max_per_bootstrap {
            idx += 1;
            used_on_current = 0;
        }
    }
    joins
}

/// The oldest members first (by join round, ties by id): the adversary often
/// wants to erode the stable core `V_0`.
pub fn oldest_members(view: &KnowledgeView<'_>, count: usize) -> Vec<NodeId> {
    let mut members: Vec<(u64, NodeId)> = view
        .members()
        .map(|(id, info)| (info.joined_at, id))
        .collect();
    members.sort();
    members.into_iter().take(count).map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;
    use tsa_sim::{Lateness, MemberInfo};

    fn members(n: u64) -> BTreeMap<NodeId, MemberInfo> {
        (0..n)
            .map(|i| (NodeId(i), MemberInfo { joined_at: i / 4 }))
            .collect()
    }

    #[test]
    fn pick_random_members_respects_count_and_exclusions() {
        let m = members(20);
        let records = Vec::new();
        let view = KnowledgeView::new(10, Lateness::oblivious(), &records, &m, 100, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let picked = pick_random_members(&view, &mut rng, 5, &[NodeId(0), NodeId(1)]);
        assert_eq!(picked.len(), 5);
        assert!(!picked.contains(&NodeId(0)));
        assert!(!picked.contains(&NodeId(1)));
        let all = pick_random_members(&view, &mut rng, 100, &[]);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn spread_joins_honours_fanin() {
        let m = members(8);
        let records = Vec::new();
        let view = KnowledgeView::new(10, Lateness::oblivious(), &records, &m, 100, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let joins = spread_joins(&view, &mut rng, 10, &[], 2);
        assert_eq!(joins.len(), 10);
        for b in view.eligible_bootstraps() {
            let uses = joins.iter().filter(|j| j.bootstrap == b).count();
            assert!(uses <= 2, "bootstrap {b} used {uses} times");
        }
        assert!(spread_joins(&view, &mut rng, 3, &[], 0).is_empty());
    }

    #[test]
    fn oldest_members_sorts_by_join_round() {
        let m = members(12);
        let records = Vec::new();
        let view = KnowledgeView::new(10, Lateness::oblivious(), &records, &m, 100, 2);
        let oldest = oldest_members(&view, 4);
        assert_eq!(oldest, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }
}
