//! Summary statistics used by every experiment.

use serde::Serialize;

/// Summary of a sample of real values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of `values`. Returns an all-zero summary for an
    /// empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 0.5),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }

    /// Computes the summary of integer counts.
    pub fn of_counts<I: IntoIterator<Item = usize>>(values: I) -> Summary {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

/// The `q`-th percentile of an already sorted slice (nearest-rank).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// A fixed-width histogram over `[min, max)`.
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    /// Left edge of the first bucket.
    pub min: f64,
    /// Right edge of the last bucket.
    pub max: f64,
    /// Bucket counts.
    pub buckets: Vec<usize>,
    /// Samples below `min` or at/above `max`.
    pub outliers: usize,
}

impl Histogram {
    /// Builds a histogram with `buckets` equal-width buckets.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        Histogram {
            min,
            max,
            buckets: vec![0; buckets.max(1)],
            outliers: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, value: f64) {
        if value < self.min || value >= self.max {
            self.outliers += 1;
            return;
        }
        let width = (self.max - self.min) / self.buckets.len() as f64;
        let idx = ((value - self.min) / width) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total in-range samples.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }
}

/// Least-squares fit of `y ≈ a · x` (through the origin): returns `a` and the
/// coefficient of determination `R²`. Used to check claims of the form
/// "congestion grows like `k log^3 n`".
pub fn fit_proportional(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx == 0.0 {
        return (0.0, 0.0);
    }
    let a = sxy / sxx;
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - a * x).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!(s.std_dev > 1.0 && s.std_dev < 1.2);
        assert!(s.median >= 2.0 && s.median <= 3.0);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([1usize, 3, 5]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let sorted: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100.0);
        assert!((percentile_sorted(&sorted, 0.5) - 50.0).abs() <= 1.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_buckets_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[4], 1);
    }

    #[test]
    fn proportional_fit_recovers_slope() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let (a, r2) = fit_proportional(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!(r2 > 0.999);
        assert_eq!(fit_proportional(&[], &[]), (0.0, 0.0));
    }
}
