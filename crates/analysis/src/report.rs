//! Rendering experiment results as markdown tables (the "prints the same rows
//! the paper reports" part of the benchmark harness).

/// A simple markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a boolean as a check mark / cross, as used in Table 1.
pub fn fmt_bool(v: bool) -> String {
    if v {
        "yes".to_string()
    } else {
        "no".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(123.456), "123");
        assert_eq!(fmt_f(2.46913), "2.47");
        assert_eq!(fmt_f(0.12345), "0.1235");
        assert_eq!(fmt_bool(true), "yes");
        assert_eq!(fmt_bool(false), "no");
    }
}
