//! Aggregation of seed replicates: the statistics layer parameter sweeps fold
//! their per-cell outcomes through.
//!
//! A [`Replicates`] collects one metric's values across the seed replicates of
//! a grid cell and reports mean, spread, percentiles and a normal-theory 95%
//! confidence half-width. The `tsa-sweep` crate builds its per-axis summary
//! tables on top of this.

use serde::{Deserialize, Serialize};

use crate::stats::percentile_sorted;

/// One metric's values across the seed replicates of a sweep cell.
#[derive(Clone, Debug, Default)]
pub struct Replicates {
    values: Vec<f64>,
}

impl Replicates {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one replicate's value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of replicates collected.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Smallest value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sample standard deviation (Bessel-corrected; 0 for fewer than two
    /// replicates).
    pub fn std_dev(&self) -> f64 {
        let k = self.values.len();
        if k < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (k - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the normal-theory 95% confidence interval of the mean:
    /// `1.96 · s / √k`. Zero for fewer than two replicates (no spread
    /// estimate).
    pub fn ci95_half_width(&self) -> f64 {
        let k = self.values.len();
        if k < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (k as f64).sqrt()
    }

    /// The `q`-th percentile (nearest rank) of the replicate values.
    pub fn percentile(&self, q: f64) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile_sorted(&sorted, q)
    }

    /// Folds into the serializable [`MetricSummary`] under `name`.
    pub fn summarize(&self, name: &str) -> MetricSummary {
        MetricSummary {
            name: name.to_string(),
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            ci95: self.ci95_half_width(),
        }
    }
}

/// The serializable summary of one metric across seed replicates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// The metric's name.
    pub name: String,
    /// Number of replicates.
    pub count: usize,
    /// Mean over replicates.
    pub mean: f64,
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
    /// Half-width of the 95% confidence interval of the mean (0 for a single
    /// replicate).
    pub ci95: f64,
}

impl MetricSummary {
    /// Renders as `mean ± ci [min, max]` (the ± and range parts only when
    /// they are informative).
    pub fn display(&self) -> String {
        let f = crate::report::fmt_f;
        if self.count < 2 {
            return f(self.mean);
        }
        format!(
            "{} ± {} [{}, {}]",
            f(self.mean),
            f(self.ci95),
            f(self.min),
            f(self.max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_statistics() {
        let mut r = Replicates::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.push(v);
        }
        assert_eq!(r.count(), 4);
        assert!((r.mean() - 2.5).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 4.0);
        // Sample sd of 1..4 is sqrt(5/3).
        assert!((r.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let hw = r.ci95_half_width();
        assert!((hw - 1.96 * (5.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.percentile(1.0), 4.0);
    }

    #[test]
    fn degenerate_replicates_are_safe() {
        let empty = Replicates::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
        assert_eq!(empty.ci95_half_width(), 0.0);
        let mut one = Replicates::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.std_dev(), 0.0);
        assert_eq!(one.ci95_half_width(), 0.0);
        assert_eq!(one.summarize("x").display(), "7.00");
    }

    #[test]
    fn summaries_serialize() {
        let mut r = Replicates::new();
        r.push(0.5);
        r.push(0.7);
        let s = r.summarize("delivery_rate");
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(s.display().contains("±"), "{}", s.display());
    }
}
