//! Uniformity tests for the peer-sampling experiment (Lemma 13).

use std::collections::HashMap;

/// Result of comparing an empirical distribution over `n` categories against
/// the uniform distribution.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct UniformityReport {
    /// Number of categories (nodes).
    pub categories: usize,
    /// Total samples.
    pub samples: usize,
    /// Pearson chi-square statistic against the uniform distribution.
    pub chi_square: f64,
    /// Degrees of freedom (`categories - 1`).
    pub degrees_of_freedom: usize,
    /// Total-variation distance to the uniform distribution, in `[0, 1]`.
    pub total_variation: f64,
    /// Ratio of the largest to the smallest category count (∞ if a category
    /// was never hit, encoded as `f64::INFINITY`).
    pub max_min_ratio: f64,
}

impl UniformityReport {
    /// A crude acceptance rule: chi-square within `k` standard deviations of
    /// its expectation (`df ± k·sqrt(2·df)`) and small total variation.
    pub fn looks_uniform(&self, k: f64, tv_threshold: f64) -> bool {
        let df = self.degrees_of_freedom as f64;
        let dev = (2.0 * df).sqrt();
        self.chi_square <= df + k * dev && self.total_variation <= tv_threshold
    }
}

/// Compares hit counts (over exactly `categories` possible outcomes, missing
/// entries count as zero) against the uniform distribution.
pub fn uniformity<K: std::hash::Hash + Eq>(
    hits: &HashMap<K, usize>,
    categories: usize,
) -> UniformityReport {
    let samples: usize = hits.values().sum();
    if categories == 0 || samples == 0 {
        return UniformityReport {
            categories,
            samples,
            chi_square: 0.0,
            degrees_of_freedom: categories.saturating_sub(1),
            total_variation: 0.0,
            max_min_ratio: 1.0,
        };
    }
    let expected = samples as f64 / categories as f64;
    let mut chi = 0.0;
    let mut tv = 0.0;
    let mut max = 0usize;
    let mut min = usize::MAX;
    let mut seen = 0usize;
    // Sum in a fixed order: HashMap iteration order is randomized per
    // process, and float addition is not associative, so summing in hash
    // order would make the last bits of the statistics differ between
    // otherwise identical runs.
    let mut counts: Vec<usize> = hits.values().copied().collect();
    counts.sort_unstable();
    for count in counts {
        chi += (count as f64 - expected).powi(2) / expected;
        tv += (count as f64 / samples as f64 - 1.0 / categories as f64).abs();
        max = max.max(count);
        min = min.min(count);
        seen += 1;
    }
    // Categories never hit.
    let missing = categories.saturating_sub(seen);
    chi += missing as f64 * expected;
    tv += missing as f64 / categories as f64;
    if missing > 0 {
        min = 0;
    }
    UniformityReport {
        categories,
        samples,
        chi_square: chi,
        degrees_of_freedom: categories - 1,
        total_variation: tv / 2.0,
        max_min_ratio: if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn perfectly_uniform_counts_pass() {
        let hits: HashMap<u64, usize> = (0..100u64).map(|i| (i, 50)).collect();
        let r = uniformity(&hits, 100);
        assert_eq!(r.samples, 5000);
        assert!(r.chi_square < 1e-9);
        assert!(r.total_variation < 1e-9);
        assert_eq!(r.max_min_ratio, 1.0);
        assert!(r.looks_uniform(3.0, 0.05));
    }

    #[test]
    fn random_uniform_sampling_passes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let categories = 200usize;
        let mut hits: HashMap<u64, usize> = HashMap::new();
        for _ in 0..40_000 {
            *hits.entry(rng.gen_range(0..categories as u64)).or_insert(0) += 1;
        }
        let r = uniformity(&hits, categories);
        assert!(r.looks_uniform(4.0, 0.1), "uniform sample rejected: {r:?}");
    }

    #[test]
    fn heavily_skewed_counts_fail() {
        let mut hits: HashMap<u64, usize> = HashMap::new();
        hits.insert(0, 9_000);
        for i in 1..100u64 {
            hits.insert(i, 10);
        }
        let r = uniformity(&hits, 100);
        assert!(!r.looks_uniform(4.0, 0.1));
        assert!(r.total_variation > 0.5);
    }

    #[test]
    fn missing_categories_are_penalized() {
        let hits: HashMap<u64, usize> = (0..50u64).map(|i| (i, 100)).collect();
        let r = uniformity(&hits, 100);
        assert_eq!(r.max_min_ratio, f64::INFINITY);
        assert!(r.total_variation > 0.4);
    }

    #[test]
    fn empty_input_is_safe() {
        let hits: HashMap<u64, usize> = HashMap::new();
        let r = uniformity(&hits, 0);
        assert_eq!(r.samples, 0);
        assert_eq!(r.chi_square, 0.0);
    }
}
