//! # tsa-analysis — measurement toolkit for the reproduction experiments
//!
//! Summary statistics, histograms, proportional fits, uniformity tests and
//! markdown table rendering shared by the experiment binaries in `tsa-bench`
//! and the integration tests.

#![warn(missing_docs)]

pub mod aggregate;
pub mod report;
pub mod stats;
pub mod uniformity;

pub use aggregate::{MetricSummary, Replicates};
pub use report::{fmt_bool, fmt_f, Table};
pub use stats::{fit_proportional, percentile_sorted, Histogram, Summary};
pub use uniformity::{uniformity, UniformityReport};
