//! Overlay parameters shared by every component.
//!
//! The paper assumes every node knows `n` (a lower bound on the network size)
//! and `κ` (so that `|V_t| ∈ [n, κn]`), and defines `λ := log(κn)`. The swarm
//! radius is `cλ/n` for a robustness parameter `c > 1` (Lemma 17 uses
//! `c ≥ 36k`, where `k` is the "with high probability" exponent; in simulation
//! far smaller constants already give the behaviour the asymptotics promise,
//! so `c` is configurable).

use serde::{Deserialize, Serialize};

/// Global parameters of an LDS-style overlay.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlayParams {
    /// Lower bound `n` on the number of nodes.
    pub n: usize,
    /// Upper bound factor `κ`: the network never exceeds `κn` nodes.
    pub kappa: f64,
    /// Robustness parameter `c > 1` controlling the swarm radius `cλ/n`.
    pub c: f64,
}

impl OverlayParams {
    /// Parameters with the paper's convenience choice `κ = 1 + 1/16`.
    pub fn new(n: usize, c: f64) -> Self {
        OverlayParams {
            n,
            kappa: 1.0 + 1.0 / 16.0,
            c,
        }
    }

    /// A sensible default robustness parameter for simulation (`c = 2`).
    pub fn with_default_c(n: usize) -> Self {
        Self::new(n, 2.0)
    }

    /// `λ = ceil(log2(κ n))`, the number of address bits (the paper assumes λ
    /// is an integer for convenience; we round up).
    pub fn lambda(&self) -> u32 {
        let v = (self.kappa * self.n as f64).max(2.0);
        v.log2().ceil() as u32
    }

    /// The ratio `λ / n` that every radius below is a multiple of.
    fn lambda_over_n(&self) -> f64 {
        self.lambda() as f64 / self.n as f64
    }

    /// The swarm radius `cλ/n`: `v ∈ S(p)` iff `d(v, p) ≤ cλ/n`.
    pub fn swarm_radius(&self) -> f64 {
        self.c * self.lambda_over_n()
    }

    /// The list-edge radius `2cλ/n` of Definition 5.
    pub fn list_radius(&self) -> f64 {
        2.0 * self.c * self.lambda_over_n()
    }

    /// The long-distance (de Bruijn) edge radius `3cλ/(2n)` of Definition 5.
    pub fn debruijn_radius(&self) -> f64 {
        1.5 * self.c * self.lambda_over_n()
    }

    /// Expected number of nodes in a swarm when `m` nodes are placed uniformly.
    pub fn expected_swarm_size(&self, m: usize) -> f64 {
        (2.0 * self.swarm_radius()).min(1.0) * m as f64
    }

    /// The paper's freshness threshold `λ' = 2λ + 4`: nodes younger than this
    /// are *fresh*, older nodes are *mature*.
    pub fn maturity_age(&self) -> u64 {
        2 * self.lambda() as u64 + 4
    }

    /// The paper's adversary state-lateness `b = 2λ + 7`.
    pub fn state_lateness(&self) -> u64 {
        2 * self.lambda() as u64 + 7
    }

    /// The paper's churn window `T = 4λ + 14`.
    pub fn churn_window(&self) -> u64 {
        4 * self.lambda() as u64 + 14
    }

    /// The paper's churn budget `αn = n/16` per churn window.
    pub fn churn_budget(&self) -> usize {
        self.n / 16
    }

    /// Routing dilation `2λ + 2` (Lemma 9): the exact number of rounds after
    /// which `A_ROUTING` delivers a message.
    pub fn dilation(&self) -> u64 {
        2 * self.lambda() as u64 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grows_logarithmically() {
        let p256 = OverlayParams::with_default_c(256);
        let p1024 = OverlayParams::with_default_c(1024);
        assert!(p256.lambda() >= 8);
        assert_eq!(p1024.lambda(), p256.lambda() + 2);
    }

    #[test]
    fn radii_have_the_right_ratios() {
        let p = OverlayParams::new(1000, 2.0);
        let s = p.swarm_radius();
        assert!((p.list_radius() - 2.0 * s).abs() < 1e-12);
        assert!((p.debruijn_radius() - 1.5 * s).abs() < 1e-12);
    }

    #[test]
    fn expected_swarm_size_scales_with_members() {
        let p = OverlayParams::new(1000, 2.0);
        let e = p.expected_swarm_size(1000);
        // 2cλ = 2 * 2 * 10 = 40.
        assert!((e - 2.0 * p.c * p.lambda() as f64).abs() < 1e-9);
    }

    #[test]
    fn paper_derived_quantities() {
        let p = OverlayParams::new(1600, 2.0);
        let l = p.lambda() as u64;
        assert_eq!(p.maturity_age(), 2 * l + 4);
        assert_eq!(p.state_lateness(), 2 * l + 7);
        assert_eq!(p.churn_window(), 4 * l + 14);
        assert_eq!(p.churn_budget(), 100);
        assert_eq!(p.dilation(), 2 * l + 2);
    }

    #[test]
    fn kappa_default_matches_paper() {
        let p = OverlayParams::new(64, 1.5);
        assert!((p.kappa - 17.0 / 16.0).abs() < 1e-12);
    }
}
