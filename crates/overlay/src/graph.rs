//! Graph snapshots and structural analysis helpers.
//!
//! Overlay topologies (LDS, LDG, the baselines) all produce an [`OverlayGraph`]
//! snapshot: a directed graph whose vertices are node identifiers. The
//! impossibility experiments and the maintenance experiments need connectivity,
//! largest-component and degree statistics over such snapshots.

use std::collections::{HashMap, HashSet, VecDeque};

use tsa_sim::NodeId;

/// A directed graph snapshot over node identifiers.
#[derive(Clone, Debug, Default)]
pub struct OverlayGraph {
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl OverlayGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with the given vertices and no edges.
    pub fn with_vertices<I: IntoIterator<Item = NodeId>>(vertices: I) -> Self {
        let adjacency = vertices.into_iter().map(|v| (v, Vec::new())).collect();
        OverlayGraph { adjacency }
    }

    /// Adds a vertex (no-op if present).
    pub fn add_vertex(&mut self, v: NodeId) {
        self.adjacency.entry(v).or_default();
    }

    /// Adds the directed edge `from → to`, creating missing vertices.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.adjacency.entry(to).or_default();
        let out = self.adjacency.entry(from).or_default();
        if !out.contains(&to) {
            out.push(to);
        }
    }

    /// Adds both `a → b` and `b → a`.
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|v| v.len()).sum()
    }

    /// All vertices (unordered).
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.adjacency.get(&v).map(|n| n.as_slice()).unwrap_or(&[])
    }

    /// `true` if the edge `from → to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.adjacency
            .get(&from)
            .map(|n| n.contains(&to))
            .unwrap_or(false)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        self.adjacency.values().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Mean out-degree over all vertices.
    pub fn mean_out_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        self.edge_count() as f64 / self.vertex_count() as f64
    }

    /// Connected components of the *undirected* version of the graph
    /// (treating every edge as bidirectional), as sets of vertices.
    pub fn undirected_components(&self) -> Vec<Vec<NodeId>> {
        // Build an undirected adjacency view.
        let mut undirected: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (&v, outs) in &self.adjacency {
            undirected.entry(v).or_default();
            for &w in outs {
                undirected.entry(v).or_default().push(w);
                undirected.entry(w).or_default().push(v);
            }
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut components = Vec::new();
        for &start in undirected.keys() {
            if seen.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen.insert(start);
            while let Some(v) = queue.pop_front() {
                component.push(v);
                for &w in undirected.get(&v).into_iter().flatten() {
                    if seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
            component.sort();
            components.push(component);
        }
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        components
    }

    /// `true` if the undirected version of the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        let comps = self.undirected_components();
        comps.len() <= 1
    }

    /// Fraction of vertices in the largest undirected component (1.0 for an
    /// empty graph).
    pub fn largest_component_fraction(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 1.0;
        }
        let comps = self.undirected_components();
        comps[0].len() as f64 / self.vertex_count() as f64
    }

    /// BFS hop distances from `start` following directed edges; unreachable
    /// vertices are absent from the map.
    pub fn bfs_distances(&self, start: NodeId) -> HashMap<NodeId, usize> {
        let mut dist = HashMap::new();
        if !self.adjacency.contains_key(&start) {
            return dist;
        }
        dist.insert(start, 0);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            for &w in self.neighbors(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The eccentricity of `start` (longest BFS distance to any reachable
    /// vertex), used to estimate the diameter.
    pub fn eccentricity(&self, start: NodeId) -> usize {
        self.bfs_distances(start)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Restricts the graph to the vertices in `keep` (simulating churn: all
    /// other vertices disappear along with their edges).
    pub fn restrict_to(&self, keep: &HashSet<NodeId>) -> OverlayGraph {
        let mut g = OverlayGraph::new();
        for (&v, outs) in &self.adjacency {
            if !keep.contains(&v) {
                continue;
            }
            g.add_vertex(v);
            for &w in outs {
                if keep.contains(&w) {
                    g.add_edge(v, w);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = OverlayGraph::new();
        assert!(g.is_connected());
        assert_eq!(g.largest_component_fraction(), 1.0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn edges_and_degrees() {
        let mut g = OverlayGraph::new();
        g.add_edge(n(1), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(1), n(2)); // duplicate ignored
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(n(1)), 2);
        assert_eq!(g.max_out_degree(), 2);
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(2), n(1)));
        assert!((g.mean_out_degree() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn components_detect_partition() {
        let mut g = OverlayGraph::new();
        g.add_undirected_edge(n(1), n(2));
        g.add_undirected_edge(n(3), n(4));
        g.add_vertex(n(5));
        let comps = g.undirected_components();
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected());
        assert!((g.largest_component_fraction() - 0.4).abs() < 1e-12);
        g.add_undirected_edge(n(2), n(3));
        g.add_undirected_edge(n(4), n(5));
        assert!(g.is_connected());
    }

    #[test]
    fn bfs_distances_and_eccentricity() {
        let mut g = OverlayGraph::new();
        for i in 0..5 {
            g.add_edge(n(i), n(i + 1));
        }
        let d = g.bfs_distances(n(0));
        assert_eq!(d[&n(5)], 5);
        assert_eq!(g.eccentricity(n(0)), 5);
        assert_eq!(
            g.bfs_distances(n(5)).len(),
            1,
            "directed edges only go forward"
        );
        assert!(g.bfs_distances(n(99)).is_empty());
    }

    #[test]
    fn restriction_removes_vertices_and_edges() {
        let mut g = OverlayGraph::new();
        g.add_undirected_edge(n(1), n(2));
        g.add_undirected_edge(n(2), n(3));
        let keep: HashSet<NodeId> = [n(1), n(2)].into_iter().collect();
        let r = g.restrict_to(&keep);
        assert_eq!(r.vertex_count(), 2);
        assert!(r.has_edge(n(1), n(2)));
        assert!(!r.has_edge(n(2), n(3)));
    }

    #[test]
    fn with_vertices_initializes_isolated_nodes() {
        let g = OverlayGraph::with_vertices([n(1), n(2), n(3)]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
    }
}
