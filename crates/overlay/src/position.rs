//! Positions on the `[0,1)` ring and the paper's distance function.
//!
//! Every node chooses a position `p_v ∈ [0,1)` uniformly at random (Section 3).
//! The distance between two positions is the shorter way around the ring:
//!
//! ```text
//! d(v, w) = |v - w|       if |v - w| <= 1/2
//!           1 - |v - w|   otherwise
//! ```

use std::fmt;

/// A point on the unit ring `[0, 1)`.
///
/// The type maintains the invariant `0.0 <= value < 1.0`; all constructors and
/// arithmetic wrap around the ring.
#[derive(Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Position(f64);

impl Position {
    /// Wraps `value` into `[0, 1)`.
    #[inline]
    pub fn new(value: f64) -> Self {
        let mut v = value.rem_euclid(1.0);
        // rem_euclid can return 1.0 for tiny negative inputs due to rounding.
        if v >= 1.0 {
            v = 0.0;
        }
        Position(v)
    }

    /// The raw value in `[0, 1)`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The ring distance `d(self, other)` from Section 3.
    #[inline]
    pub fn distance(self, other: Position) -> f64 {
        let diff = (self.0 - other.0).abs();
        if diff <= 0.5 {
            diff
        } else {
            1.0 - diff
        }
    }

    /// The first de Bruijn image `p / 2`.
    #[inline]
    pub fn half(self) -> Position {
        Position(self.0 / 2.0)
    }

    /// The second de Bruijn image `(p + 1) / 2`.
    #[inline]
    pub fn half_plus(self) -> Position {
        Position((self.0 + 1.0) / 2.0)
    }

    /// The de Bruijn image `(p + i) / 2` for bit `i ∈ {0, 1}`.
    #[inline]
    pub fn debruijn_image(self, bit: u8) -> Position {
        if bit == 0 {
            self.half()
        } else {
            self.half_plus()
        }
    }

    /// The de Bruijn *pre*-image `2p mod 1` (the inverse of pushing a bit).
    #[inline]
    pub fn double(self) -> Position {
        Position::new(self.0 * 2.0)
    }

    /// Moves `delta` along the ring (positive = clockwise / to the right).
    #[inline]
    pub fn offset(self, delta: f64) -> Position {
        Position::new(self.0 + delta)
    }

    /// `true` if `self` is *left of* `other` in the paper's sense: for
    /// `|u - v| <= 1/2` the smaller value is left; if the two points are more
    /// than half the ring apart the relation reverses.
    #[inline]
    pub fn is_left_of(self, other: Position) -> bool {
        if self == other {
            return false;
        }
        let diff = (self.0 - other.0).abs();
        if diff <= 0.5 {
            self.0 < other.0
        } else {
            self.0 > other.0
        }
    }

    /// `true` if `self` is right of `other` (and distinct).
    #[inline]
    pub fn is_right_of(self, other: Position) -> bool {
        self != other && !self.is_left_of(other)
    }

    /// The `lambda` most significant bits of the binary expansion of the
    /// position, packed into the low bits of a `u64` (most significant bit of
    /// the expansion first). Used by trajectories (Definition 7).
    #[inline]
    pub fn to_bits(self, lambda: u32) -> u64 {
        debug_assert!(lambda <= 52, "lambda must fit a double's mantissa");
        let scaled = self.0 * (1u64 << lambda) as f64;
        (scaled as u64).min((1u64 << lambda) - 1)
    }

    /// Reconstructs a position from `lambda` bits produced by [`Self::to_bits`]
    /// (the midpoint of the corresponding dyadic interval).
    #[inline]
    pub fn from_bits(bits: u64, lambda: u32) -> Position {
        let denom = (1u64 << lambda) as f64;
        Position::new((bits as f64 + 0.5) / denom)
    }

    /// The `i`-th most significant bit (1-indexed, `1 ..= lambda`) of the
    /// binary expansion.
    #[inline]
    pub fn bit(self, i: u32, lambda: u32) -> u8 {
        let bits = self.to_bits(lambda);
        ((bits >> (lambda - i)) & 1) as u8
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl From<f64> for Position {
    fn from(v: f64) -> Self {
        Position::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_wraps_into_unit_interval() {
        assert_eq!(Position::new(1.25).value(), 0.25);
        assert_eq!(Position::new(-0.25).value(), 0.75);
        assert_eq!(Position::new(0.0).value(), 0.0);
        assert!(Position::new(1.0).value() < 1.0);
    }

    #[test]
    fn distance_is_shorter_arc() {
        let a = Position::new(0.1);
        let b = Position::new(0.9);
        assert!((a.distance(b) - 0.2).abs() < 1e-12, "wraps around 0");
        let c = Position::new(0.4);
        assert!((a.distance(c) - 0.3).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn debruijn_images_match_definition() {
        let p = Position::new(0.6);
        assert!((p.half().value() - 0.3).abs() < 1e-12);
        assert!((p.half_plus().value() - 0.8).abs() < 1e-12);
        assert_eq!(p.debruijn_image(0), p.half());
        assert_eq!(p.debruijn_image(1), p.half_plus());
    }

    #[test]
    fn double_inverts_debruijn_images() {
        let p = Position::new(0.37);
        assert!(p.half().double().distance(p) < 1e-12);
        assert!(p.half_plus().double().distance(p) < 1e-12);
    }

    #[test]
    fn left_right_relation() {
        let a = Position::new(0.1);
        let b = Position::new(0.2);
        assert!(a.is_left_of(b));
        assert!(b.is_right_of(a));
        // Across the wrap point the relation reverses: 0.95 is "left of" 0.05.
        let c = Position::new(0.95);
        let d = Position::new(0.05);
        assert!(c.is_left_of(d));
        assert!(d.is_right_of(c));
        assert!(!a.is_left_of(a));
    }

    #[test]
    fn bit_extraction_matches_binary_expansion() {
        // 0.625 = 0.101 in binary.
        let p = Position::new(0.625);
        assert_eq!(p.bit(1, 3), 1);
        assert_eq!(p.bit(2, 3), 0);
        assert_eq!(p.bit(3, 3), 1);
        assert_eq!(p.to_bits(3), 0b101);
    }

    #[test]
    fn from_bits_is_close_to_original() {
        let p = Position::new(0.317);
        let q = Position::from_bits(p.to_bits(20), 20);
        assert!(p.distance(q) < 1.0 / (1 << 19) as f64);
    }

    proptest! {
        #[test]
        fn prop_distance_is_symmetric_and_bounded(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let pa = Position::new(a);
            let pb = Position::new(b);
            let d1 = pa.distance(pb);
            let d2 = pb.distance(pa);
            prop_assert!((d1 - d2).abs() < 1e-15);
            prop_assert!(d1 <= 0.5 + 1e-15);
            prop_assert!(d1 >= 0.0);
        }

        #[test]
        fn prop_triangle_inequality(a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0) {
            let (pa, pb, pc) = (Position::new(a), Position::new(b), Position::new(c));
            prop_assert!(pa.distance(pc) <= pa.distance(pb) + pb.distance(pc) + 1e-12);
        }

        #[test]
        fn prop_halving_halves_distance(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            // Lemma 6 case 1: d(p/2, v/2) = d(p, v) / 2 when |p - v| <= 1/2.
            let pa = Position::new(a);
            let pb = Position::new(b);
            if (a - b).abs() <= 0.5 {
                let d = pa.half().distance(pb.half());
                prop_assert!((d - pa.distance(pb) / 2.0).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_offset_round_trips(a in 0.0f64..1.0, delta in -2.0f64..2.0) {
            let p = Position::new(a);
            let q = p.offset(delta).offset(-delta);
            prop_assert!(p.distance(q) < 1e-9);
        }

        #[test]
        fn prop_left_xor_right(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let pa = Position::new(a);
            let pb = Position::new(b);
            if pa != pb {
                prop_assert!(!(pa.is_left_of(pb) ^ pa.is_right_of(pb)) || pa.is_left_of(pb) != pa.is_right_of(pb));
                prop_assert!(pa.is_left_of(pb) != pb.is_left_of(pa));
            }
        }
    }
}
