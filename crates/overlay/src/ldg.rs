//! The classical Linearized DeBruijn Graph (Richa et al. \\[9\\], Feldmann &
//! Scheideler \\[10\\]) — the non-redundant topology the LDS generalizes.
//!
//! In the classical LDG every node connects only to its closest list
//! neighbours (left and right) and to the node *closest* to each of its two
//! de Bruijn images. The LDS replaces each of these single nodes by a whole
//! swarm, which is the source of its churn resistance; keeping the LDG around
//! lets the experiments quantify exactly that difference.

use std::collections::HashMap;

use rand::Rng;
use tsa_sim::NodeId;

use crate::graph::OverlayGraph;
use crate::position::Position;
use crate::swarm::SwarmIndex;

/// A snapshot of a classical Linearized DeBruijn Graph.
#[derive(Clone, Debug)]
pub struct Ldg {
    index: SwarmIndex,
    positions: HashMap<NodeId, Position>,
}

impl Ldg {
    /// Builds an LDG from explicit position assignments.
    pub fn build<I>(assignments: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Position)>,
    {
        let positions: HashMap<NodeId, Position> = assignments.into_iter().collect();
        let index = SwarmIndex::build(positions.iter().map(|(id, p)| (*id, *p)));
        Ldg { index, positions }
    }

    /// Builds an LDG with uniformly random positions.
    pub fn random<I, R>(nodes: I, rng: &mut R) -> Self
    where
        I: IntoIterator<Item = NodeId>,
        R: Rng + ?Sized,
    {
        Self::build(
            nodes
                .into_iter()
                .map(|id| (id, Position::new(rng.gen::<f64>()))),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of a node, if present.
    pub fn position(&self, node: NodeId) -> Option<Position> {
        self.positions.get(&node).copied()
    }

    /// The closest node to an arbitrary point, excluding `exclude`.
    fn closest_excluding(&self, p: Position, exclude: NodeId) -> Option<NodeId> {
        self.index
            .iter()
            .filter(|(id, _)| *id != exclude)
            .min_by(|a, b| p.distance(a.1).partial_cmp(&p.distance(b.1)).unwrap())
            .map(|(id, _)| id)
    }

    /// The neighbours of `node` in the classical LDG: its ring predecessor and
    /// successor plus the nodes closest to `p/2` and `(p+1)/2`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let Some(p) = self.position(node) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(4);
        // Ring predecessor and successor: the two closest other nodes, one on
        // each side.
        let mut best_left: Option<(f64, NodeId)> = None;
        let mut best_right: Option<(f64, NodeId)> = None;
        for (id, q) in self.index.iter() {
            if id == node {
                continue;
            }
            let d = p.distance(q);
            if q.is_left_of(p) {
                if best_left.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best_left = Some((d, id));
                }
            } else if best_right.map(|(bd, _)| d < bd).unwrap_or(true) {
                best_right = Some((d, id));
            }
        }
        out.extend(best_left.map(|(_, id)| id));
        out.extend(best_right.map(|(_, id)| id));
        out.extend(self.closest_excluding(p.half(), node));
        out.extend(self.closest_excluding(p.half_plus(), node));
        out.sort();
        out.dedup();
        out
    }

    /// Materializes the directed edge set as a graph snapshot.
    pub fn to_graph(&self) -> OverlayGraph {
        let mut g = OverlayGraph::with_vertices(self.positions.keys().copied());
        for &id in self.positions.keys() {
            for w in self.neighbors(id) {
                g.add_edge(id, w);
            }
        }
        g
    }

    /// Maximum out-degree; constant (≤ 4) by construction, in contrast to the
    /// LDS whose degree is `Θ(log n)`.
    pub fn max_degree(&self) -> usize {
        self.positions
            .keys()
            .map(|&id| self.neighbors(id).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_ldg(n: usize, seed: u64) -> Ldg {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Ldg::random((0..n as u64).map(NodeId), &mut rng)
    }

    #[test]
    fn degree_is_constant() {
        let ldg = random_ldg(200, 1);
        assert!(ldg.max_degree() <= 4);
        assert_eq!(ldg.len(), 200);
    }

    #[test]
    fn ldg_graph_is_connected() {
        // The list edges alone form a ring, so the LDG is always connected.
        let ldg = random_ldg(100, 2);
        assert!(ldg.to_graph().is_connected());
    }

    #[test]
    fn neighbors_include_ring_successor_and_predecessor() {
        let ldg = Ldg::build([
            (NodeId(0), Position::new(0.1)),
            (NodeId(1), Position::new(0.2)),
            (NodeId(2), Position::new(0.3)),
            (NodeId(3), Position::new(0.7)),
        ]);
        let n0 = ldg.neighbors(NodeId(0));
        assert!(n0.contains(&NodeId(1)), "ring successor");
        assert!(n0.contains(&NodeId(3)), "ring predecessor (wrapping)");
    }

    #[test]
    fn empty_and_missing_nodes() {
        let ldg = Ldg::build(std::iter::empty());
        assert!(ldg.is_empty());
        assert_eq!(ldg.max_degree(), 0);
        assert!(ldg.neighbors(NodeId(1)).is_empty());
        assert!(ldg.position(NodeId(1)).is_none());
    }
}
