//! Trajectories (Definition 7): the sequence of points a message visits when
//! routed by bit-wise address adaption in a de Bruijn topology.
//!
//! For a start position `v`, a target `p` and `λ` address bits, the trajectory
//! is `x_0, …, x_{λ+1}` with `x_0 = v`, `x_{λ+1} = p` and
//!
//! ```text
//! x_i = ( p_{λ-i+1} … p_λ  v_1 … v_{λ-i} )   as a binary fraction,
//! ```
//!
//! i.e. in step `i` the `i`-th *least* significant of the target's `λ` most
//! significant bits is pushed in front, which is the same as applying the
//! de Bruijn image `x ↦ (x + bit)/2`.

use crate::position::Position;

/// A message trajectory: `λ + 2` points from source to target.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    points: Vec<Position>,
    lambda: u32,
}

impl Trajectory {
    /// Computes the trajectory `τ(v, p)` for `lambda` address bits.
    pub fn compute(v: Position, p: Position, lambda: u32) -> Self {
        let mut points = Vec::with_capacity(lambda as usize + 2);
        points.push(v);
        let mut current = v;
        for i in 1..=lambda {
            // Step i pushes bit p_{λ-i+1}: the i-th least significant of the
            // target's λ most significant bits.
            let bit = p.bit(lambda - i + 1, lambda);
            current = current.debruijn_image(bit);
            points.push(current);
        }
        points.push(p);
        Trajectory { points, lambda }
    }

    /// The number of address bits used.
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// The points `x_0, …, x_{λ+1}`.
    pub fn points(&self) -> &[Position] {
        &self.points
    }

    /// The `i`-th point (`0 ≤ i ≤ λ+1`).
    pub fn point(&self, i: usize) -> Position {
        self.points[i]
    }

    /// Number of points (`λ + 2`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Trajectories are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The distance between the last de Bruijn point `x_λ` and the target
    /// `p = x_{λ+1}`. The routing analysis relies on this being at most
    /// `2^{-λ}` plus the start position's contribution, i.e. `O(1/n)` — well
    /// inside the target swarm.
    pub fn final_gap(&self) -> f64 {
        let l = self.points.len();
        self.points[l - 2].distance(self.points[l - 1])
    }

    /// Returns the index of the first trajectory point that lies within
    /// `radius` of the target (useful for measuring how early a message could
    /// already be delivered).
    pub fn first_point_within(&self, radius: f64) -> usize {
        let target = *self.points.last().unwrap();
        self.points
            .iter()
            .position(|x| x.distance(target) <= radius)
            .unwrap_or(self.points.len() - 1)
    }
}

/// The bit pushed at step `i` (1-indexed) when routing towards `p` with
/// `lambda` address bits — exposed separately because the routing protocol
/// needs it without materializing the whole trajectory.
#[inline]
pub fn step_bit(p: Position, i: u32, lambda: u32) -> u8 {
    p.bit(lambda - i + 1, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trajectory_has_lambda_plus_two_points() {
        let t = Trajectory::compute(Position::new(0.3), Position::new(0.8), 10);
        assert_eq!(t.len(), 12);
        assert_eq!(t.lambda(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.point(0), Position::new(0.3));
        assert_eq!(t.point(11), Position::new(0.8));
    }

    #[test]
    fn each_step_is_a_debruijn_image() {
        let t = Trajectory::compute(Position::new(0.123), Position::new(0.789), 8);
        for i in 1..=8usize {
            let prev = t.point(i - 1);
            let cur = t.point(i);
            let is_image =
                prev.half().distance(cur) < 1e-12 || prev.half_plus().distance(cur) < 1e-12;
            assert!(is_image, "step {i} is not a de Bruijn image");
        }
    }

    #[test]
    fn final_point_converges_to_target_bits() {
        // After λ steps the position's λ most significant bits equal the
        // target's λ most significant bits.
        let lambda = 12;
        let v = Position::new(0.37);
        let p = Position::new(0.642);
        let t = Trajectory::compute(v, p, lambda);
        let x_lambda = t.point(lambda as usize);
        assert_eq!(x_lambda.to_bits(lambda), p.to_bits(lambda));
        assert!(t.final_gap() <= 1.0 / (1u64 << lambda) as f64 + 1e-12);
    }

    #[test]
    fn step_bit_matches_trajectory_construction() {
        let p = Position::new(0.625); // binary 0.101
                                      // λ = 3: bits are (1, 0, 1). Step 1 pushes p_3 = 1, step 2 pushes p_2 = 0,
                                      // step 3 pushes p_1 = 1.
        assert_eq!(step_bit(p, 1, 3), 1);
        assert_eq!(step_bit(p, 2, 3), 0);
        assert_eq!(step_bit(p, 3, 3), 1);
    }

    #[test]
    fn first_point_within_detects_early_arrival() {
        let p = Position::new(0.5);
        let t = Trajectory::compute(p, p, 6);
        // Starting at the target, the first point is already within any radius.
        assert_eq!(t.first_point_within(0.01), 0);
    }

    proptest! {
        #[test]
        fn prop_trajectory_ends_within_target_swarm(v in 0.0f64..1.0, p in 0.0f64..1.0) {
            let lambda = 10u32;
            let t = Trajectory::compute(Position::new(v), Position::new(p), lambda);
            // 2^-λ = 1/1024; any reasonable swarm radius (cλ/n with n ≤ 2^λ/ (cλ))
            // is far larger than the final gap.
            prop_assert!(t.final_gap() <= 1.0 / 1024.0 + 1e-12);
        }

        #[test]
        fn prop_all_points_valid_positions(v in 0.0f64..1.0, p in 0.0f64..1.0, lambda in 1u32..16) {
            let t = Trajectory::compute(Position::new(v), Position::new(p), lambda);
            prop_assert_eq!(t.len() as u32, lambda + 2);
            for x in t.points() {
                prop_assert!(x.value() >= 0.0 && x.value() < 1.0);
            }
        }
    }
}
