//! Swarms and a position index for efficient range queries on the ring.
//!
//! For a point `p ∈ [0,1)` the *swarm* `S(p)` is the set of nodes within ring
//! distance `cλ/n` of `p` (Section 3). Swarms — not individual nodes — are the
//! building blocks of the overlay: a message is always held by a whole swarm,
//! which is what makes the construction survive churn.

use tsa_sim::NodeId;

use crate::interval::Interval;
use crate::params::OverlayParams;
use crate::position::Position;

/// A sorted index from positions to node identifiers supporting wrap-around
/// range queries, nearest-neighbour queries and swarm extraction.
///
/// The index is **incrementally maintainable**: [`SwarmIndex::insert`] and
/// [`SwarmIndex::remove`] keep the sorted order under join/leave churn, so
/// callers tracking a changing membership never rebuild from scratch.
/// `insert` locates its slot by binary search; `remove` scans linearly for
/// the node (positions, not identifiers, are the sort key); both shift the
/// tail, so each operation is `O(n)` worst case — for the handful of churn
/// events one round actually brings, far cheaper than an `O(n log n)`
/// rebuild (measured by `bench_swarm_index`). An incrementally maintained
/// index is always byte-identical to a fresh [`SwarmIndex::build`] over the
/// same membership (pinned by a property test below).
#[derive(Clone, Debug, Default)]
pub struct SwarmIndex {
    /// Entries sorted by `(position value, node id)`.
    entries: Vec<(f64, NodeId)>,
}

impl SwarmIndex {
    /// Builds an index from `(node, position)` pairs.
    pub fn build<I>(assignments: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Position)>,
    {
        let mut entries: Vec<(f64, NodeId)> = assignments
            .into_iter()
            .map(|(id, p)| (p.value(), id))
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        SwarmIndex { entries }
    }

    /// Inserts `node` at position `p`, keeping the index sorted. A node that
    /// is already indexed (at any position) is moved to `p`.
    pub fn insert(&mut self, node: NodeId, p: Position) {
        self.remove(node);
        let key = (p.value(), node);
        let at = self.entries.partition_point(|&(v, id)| (v, id) < key);
        self.entries.insert(at, (key.0, key.1));
    }

    /// Removes `node` from the index. Returns its position, or `None` if the
    /// node was not indexed. Locating the node scans linearly (positions are
    /// the sort key, not identifiers); the index stays sorted.
    pub fn remove(&mut self, node: NodeId) -> Option<Position> {
        let at = self.entries.iter().position(|&(_, id)| id == node)?;
        let (v, _) = self.entries.remove(at);
        Some(Position::new(v))
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the index contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(node, position)` pairs in position order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Position)> + '_ {
        self.entries.iter().map(|(v, id)| (*id, Position::new(*v)))
    }

    /// All nodes whose position lies in `interval`.
    pub fn in_interval(&self, interval: &Interval) -> Vec<NodeId> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        if interval.is_full_ring() {
            return self.entries.iter().map(|(_, id)| *id).collect();
        }
        let lo = interval.left_end().value();
        let hi = interval.right_end().value();
        let mut out = Vec::new();
        if lo <= hi {
            self.collect_range(lo, hi, &mut out);
        } else {
            // Wraps around 0/1.
            self.collect_range(lo, 1.0, &mut out);
            self.collect_range(0.0, hi, &mut out);
        }
        out
    }

    fn collect_range(&self, lo: f64, hi: f64, out: &mut Vec<NodeId>) {
        let start = self.entries.partition_point(|(v, _)| *v < lo - 1e-15);
        for &(v, id) in &self.entries[start..] {
            if v > hi + 1e-15 {
                break;
            }
            out.push(id);
        }
    }

    /// Number of nodes whose position lies in `interval` — the counting
    /// counterpart of [`SwarmIndex::in_interval`]: two binary searches, no
    /// allocation, identical tolerance semantics.
    pub fn count_in_interval(&self, interval: &Interval) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        if interval.is_full_ring() {
            return self.entries.len();
        }
        let lo = interval.left_end().value();
        let hi = interval.right_end().value();
        if lo <= hi {
            self.count_range(lo, hi)
        } else {
            // Wraps around 0/1.
            self.count_range(lo, 1.0) + self.count_range(0.0, hi)
        }
    }

    fn count_range(&self, lo: f64, hi: f64) -> usize {
        let start = self.entries.partition_point(|(v, _)| *v < lo - 1e-15);
        let end = self.entries.partition_point(|(v, _)| *v <= hi + 1e-15);
        end.saturating_sub(start)
    }

    /// Number of nodes within `radius` of `p` (allocation-free
    /// [`SwarmIndex::within`]).
    pub fn count_within(&self, p: Position, radius: f64) -> usize {
        self.count_in_interval(&Interval::around(p, radius))
    }

    /// The swarm `S(p)` under `params`: all nodes within `cλ/n` of `p`.
    pub fn swarm(&self, p: Position, params: &OverlayParams) -> Vec<NodeId> {
        self.in_interval(&Interval::around(p, params.swarm_radius()))
    }

    /// All nodes within `radius` of `p`.
    pub fn within(&self, p: Position, radius: f64) -> Vec<NodeId> {
        self.in_interval(&Interval::around(p, radius))
    }

    /// The node closest to `p` (ties broken by identifier), if any.
    pub fn nearest(&self, p: Position) -> Option<(NodeId, Position)> {
        self.iter().min_by(|a, b| {
            p.distance(a.1)
                .partial_cmp(&p.distance(b.1))
                .unwrap()
                .then(a.0.cmp(&b.0))
        })
    }

    /// The position of `node`, if indexed. Linear scan: only used in tests and
    /// analysis code, never on protocol hot paths.
    pub fn position_of(&self, node: NodeId) -> Option<Position> {
        self.entries
            .iter()
            .find(|(_, id)| *id == node)
            .map(|(v, _)| Position::new(*v))
    }

    /// Sizes of the swarms around every indexed node (used by experiment F1).
    /// Counts via binary search instead of materializing each swarm.
    pub fn swarm_size_distribution(&self, params: &OverlayParams) -> Vec<usize> {
        let radius = params.swarm_radius();
        self.iter()
            .map(|(_, p)| self.count_within(p, radius))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idx(positions: &[f64]) -> SwarmIndex {
        SwarmIndex::build(
            positions
                .iter()
                .enumerate()
                .map(|(i, &p)| (NodeId(i as u64), Position::new(p))),
        )
    }

    #[test]
    fn range_query_simple() {
        let s = idx(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let hits = s.in_interval(&Interval::around(Position::new(0.3), 0.11));
        assert_eq!(hits, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn range_query_wraps_around() {
        let s = idx(&[0.05, 0.5, 0.95]);
        let hits = s.in_interval(&Interval::around(Position::new(0.0), 0.1));
        assert!(hits.contains(&NodeId(0)));
        assert!(hits.contains(&NodeId(2)));
        assert!(!hits.contains(&NodeId(1)));
    }

    #[test]
    fn full_ring_interval_returns_everyone() {
        let s = idx(&[0.1, 0.4, 0.8]);
        let hits = s.in_interval(&Interval::around(Position::new(0.2), 0.7));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn nearest_prefers_closest() {
        let s = idx(&[0.1, 0.45, 0.9]);
        let (id, _) = s.nearest(Position::new(0.05)).unwrap();
        assert_eq!(id, NodeId(0));
        let (id, _) = s.nearest(Position::new(0.99)).unwrap();
        assert_eq!(id, NodeId(2));
        assert!(idx(&[]).nearest(Position::new(0.5)).is_none());
    }

    #[test]
    fn swarm_uses_param_radius() {
        let params = OverlayParams::new(100, 1.0); // radius = λ/n = 7/100
        let s = idx(&[0.10, 0.14, 0.18, 0.30]);
        let members = s.swarm(Position::new(0.12), &params);
        assert!(members.contains(&NodeId(0)));
        assert!(members.contains(&NodeId(1)));
        assert!(members.contains(&NodeId(2)));
        assert!(!members.contains(&NodeId(3)));
    }

    #[test]
    fn position_of_finds_nodes() {
        let s = idx(&[0.3, 0.6]);
        assert!(
            s.position_of(NodeId(1))
                .unwrap()
                .distance(Position::new(0.6))
                < 1e-12
        );
        assert!(s.position_of(NodeId(9)).is_none());
    }

    #[test]
    fn swarm_size_distribution_has_one_entry_per_node() {
        let params = OverlayParams::new(10, 1.0);
        let s = idx(&[0.0, 0.1, 0.2, 0.9]);
        let dist = s.swarm_size_distribution(&params);
        assert_eq!(dist.len(), 4);
        assert!(
            dist.iter().all(|&x| x >= 1),
            "every node is in its own swarm"
        );
    }

    #[test]
    fn insert_and_remove_maintain_sorted_order() {
        let mut s = SwarmIndex::default();
        s.insert(NodeId(2), Position::new(0.5));
        s.insert(NodeId(0), Position::new(0.9));
        s.insert(NodeId(1), Position::new(0.1));
        let order: Vec<NodeId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(0)]);
        // Re-inserting moves a node instead of duplicating it.
        s.insert(NodeId(2), Position::new(0.95));
        assert_eq!(s.len(), 3);
        let order: Vec<NodeId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![NodeId(1), NodeId(0), NodeId(2)]);
        // Removal returns the position; absent nodes are a no-op.
        let p = s.remove(NodeId(0)).unwrap();
        assert!(p.distance(Position::new(0.9)) < 1e-12);
        assert!(s.remove(NodeId(0)).is_none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn count_within_matches_materialized_queries() {
        let s = idx(&[0.05, 0.1, 0.2, 0.5, 0.95]);
        for (center, radius) in [(0.1, 0.06), (0.0, 0.11), (0.5, 0.0), (0.7, 0.5)] {
            let interval = Interval::around(Position::new(center), radius);
            assert_eq!(
                s.count_in_interval(&interval),
                s.in_interval(&interval).len(),
                "center {center}, radius {radius}"
            );
        }
        assert_eq!(
            SwarmIndex::default().count_within(Position::new(0.5), 0.2),
            0
        );
    }

    /// One step of an interleaved churn/query workload for the property test.
    #[derive(Clone, Debug)]
    enum Op {
        Join(u64, f64),
        Leave(u64),
        Query(f64, f64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..40, 0.0f64..1.0).prop_map(|(id, p)| Op::Join(id, p)),
            (0u64..40).prop_map(Op::Leave),
            (0.0f64..1.0, 0.0f64..0.6).prop_map(|(c, r)| Op::Query(c, r)),
        ]
    }

    proptest! {
        /// The incremental index equals a from-scratch rebuild after arbitrary
        /// interleaved join/leave/query sequences — every query (wrap-around
        /// and interior alike) answers identically, and the final entry order
        /// is byte-identical.
        #[test]
        fn prop_incremental_index_equals_rebuild(
            ops in proptest::collection::vec(op_strategy(), 1..120),
        ) {
            let mut incremental = SwarmIndex::default();
            let mut membership: Vec<(NodeId, Position)> = Vec::new();
            for op in ops {
                match op {
                    Op::Join(id, p) => {
                        let (id, p) = (NodeId(id), Position::new(p));
                        membership.retain(|(m, _)| *m != id);
                        membership.push((id, p));
                        incremental.insert(id, p);
                    }
                    Op::Leave(id) => {
                        let id = NodeId(id);
                        membership.retain(|(m, _)| *m != id);
                        incremental.remove(id);
                    }
                    Op::Query(center, radius) => {
                        let rebuilt = SwarmIndex::build(membership.iter().copied());
                        let interval = Interval::around(Position::new(center), radius);
                        prop_assert_eq!(
                            incremental.in_interval(&interval),
                            rebuilt.in_interval(&interval)
                        );
                        prop_assert_eq!(
                            incremental.count_in_interval(&interval),
                            rebuilt.count_in_interval(&interval)
                        );
                    }
                }
            }
            let rebuilt = SwarmIndex::build(membership.iter().copied());
            let a: Vec<(NodeId, Position)> = incremental.iter().collect();
            let b: Vec<(NodeId, Position)> = rebuilt.iter().collect();
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }

        #[test]
        fn prop_in_interval_matches_bruteforce(
            positions in proptest::collection::vec(0.0f64..1.0, 1..60),
            center in 0.0f64..1.0,
            radius in 0.0f64..0.5,
        ) {
            let s = idx(&positions);
            let interval = Interval::around(Position::new(center), radius);
            let mut fast = s.in_interval(&interval);
            fast.sort();
            let mut slow: Vec<NodeId> = positions
                .iter()
                .enumerate()
                .filter(|(_, &p)| Position::new(center).distance(Position::new(p)) <= radius + 1e-15)
                .map(|(i, _)| NodeId(i as u64))
                .collect();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_every_node_is_in_its_own_swarm(
            positions in proptest::collection::vec(0.0f64..1.0, 1..50),
        ) {
            let params = OverlayParams::with_default_c(positions.len().max(2));
            let s = idx(&positions);
            for (id, p) in s.iter() {
                prop_assert!(s.swarm(p, &params).contains(&id));
            }
        }
    }
}
