//! Swarms and a position index for efficient range queries on the ring.
//!
//! For a point `p ∈ [0,1)` the *swarm* `S(p)` is the set of nodes within ring
//! distance `cλ/n` of `p` (Section 3). Swarms — not individual nodes — are the
//! building blocks of the overlay: a message is always held by a whole swarm,
//! which is what makes the construction survive churn.

use tsa_sim::NodeId;

use crate::interval::Interval;
use crate::params::OverlayParams;
use crate::position::Position;

/// A sorted index from positions to node identifiers supporting wrap-around
/// range queries, nearest-neighbour queries and swarm extraction.
#[derive(Clone, Debug, Default)]
pub struct SwarmIndex {
    /// Entries sorted by position value.
    entries: Vec<(f64, NodeId)>,
}

impl SwarmIndex {
    /// Builds an index from `(node, position)` pairs.
    pub fn build<I>(assignments: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Position)>,
    {
        let mut entries: Vec<(f64, NodeId)> = assignments
            .into_iter()
            .map(|(id, p)| (p.value(), id))
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        SwarmIndex { entries }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the index contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(node, position)` pairs in position order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Position)> + '_ {
        self.entries.iter().map(|(v, id)| (*id, Position::new(*v)))
    }

    /// All nodes whose position lies in `interval`.
    pub fn in_interval(&self, interval: &Interval) -> Vec<NodeId> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        if interval.is_full_ring() {
            return self.entries.iter().map(|(_, id)| *id).collect();
        }
        let lo = interval.left_end().value();
        let hi = interval.right_end().value();
        let mut out = Vec::new();
        if lo <= hi {
            self.collect_range(lo, hi, &mut out);
        } else {
            // Wraps around 0/1.
            self.collect_range(lo, 1.0, &mut out);
            self.collect_range(0.0, hi, &mut out);
        }
        out
    }

    fn collect_range(&self, lo: f64, hi: f64, out: &mut Vec<NodeId>) {
        let start = self.entries.partition_point(|(v, _)| *v < lo - 1e-15);
        for &(v, id) in &self.entries[start..] {
            if v > hi + 1e-15 {
                break;
            }
            out.push(id);
        }
    }

    /// The swarm `S(p)` under `params`: all nodes within `cλ/n` of `p`.
    pub fn swarm(&self, p: Position, params: &OverlayParams) -> Vec<NodeId> {
        self.in_interval(&Interval::around(p, params.swarm_radius()))
    }

    /// All nodes within `radius` of `p`.
    pub fn within(&self, p: Position, radius: f64) -> Vec<NodeId> {
        self.in_interval(&Interval::around(p, radius))
    }

    /// The node closest to `p` (ties broken by identifier), if any.
    pub fn nearest(&self, p: Position) -> Option<(NodeId, Position)> {
        self.iter().min_by(|a, b| {
            p.distance(a.1)
                .partial_cmp(&p.distance(b.1))
                .unwrap()
                .then(a.0.cmp(&b.0))
        })
    }

    /// The position of `node`, if indexed. Linear scan: only used in tests and
    /// analysis code, never on protocol hot paths.
    pub fn position_of(&self, node: NodeId) -> Option<Position> {
        self.entries
            .iter()
            .find(|(_, id)| *id == node)
            .map(|(v, _)| Position::new(*v))
    }

    /// Sizes of the swarms around every indexed node (used by experiment F1).
    pub fn swarm_size_distribution(&self, params: &OverlayParams) -> Vec<usize> {
        self.iter()
            .map(|(_, p)| self.swarm(p, params).len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idx(positions: &[f64]) -> SwarmIndex {
        SwarmIndex::build(
            positions
                .iter()
                .enumerate()
                .map(|(i, &p)| (NodeId(i as u64), Position::new(p))),
        )
    }

    #[test]
    fn range_query_simple() {
        let s = idx(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let hits = s.in_interval(&Interval::around(Position::new(0.3), 0.11));
        assert_eq!(hits, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn range_query_wraps_around() {
        let s = idx(&[0.05, 0.5, 0.95]);
        let hits = s.in_interval(&Interval::around(Position::new(0.0), 0.1));
        assert!(hits.contains(&NodeId(0)));
        assert!(hits.contains(&NodeId(2)));
        assert!(!hits.contains(&NodeId(1)));
    }

    #[test]
    fn full_ring_interval_returns_everyone() {
        let s = idx(&[0.1, 0.4, 0.8]);
        let hits = s.in_interval(&Interval::around(Position::new(0.2), 0.7));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn nearest_prefers_closest() {
        let s = idx(&[0.1, 0.45, 0.9]);
        let (id, _) = s.nearest(Position::new(0.05)).unwrap();
        assert_eq!(id, NodeId(0));
        let (id, _) = s.nearest(Position::new(0.99)).unwrap();
        assert_eq!(id, NodeId(2));
        assert!(idx(&[]).nearest(Position::new(0.5)).is_none());
    }

    #[test]
    fn swarm_uses_param_radius() {
        let params = OverlayParams::new(100, 1.0); // radius = λ/n = 7/100
        let s = idx(&[0.10, 0.14, 0.18, 0.30]);
        let members = s.swarm(Position::new(0.12), &params);
        assert!(members.contains(&NodeId(0)));
        assert!(members.contains(&NodeId(1)));
        assert!(members.contains(&NodeId(2)));
        assert!(!members.contains(&NodeId(3)));
    }

    #[test]
    fn position_of_finds_nodes() {
        let s = idx(&[0.3, 0.6]);
        assert!(
            s.position_of(NodeId(1))
                .unwrap()
                .distance(Position::new(0.6))
                < 1e-12
        );
        assert!(s.position_of(NodeId(9)).is_none());
    }

    #[test]
    fn swarm_size_distribution_has_one_entry_per_node() {
        let params = OverlayParams::new(10, 1.0);
        let s = idx(&[0.0, 0.1, 0.2, 0.9]);
        let dist = s.swarm_size_distribution(&params);
        assert_eq!(dist.len(), 4);
        assert!(
            dist.iter().all(|&x| x >= 1),
            "every node is in its own swarm"
        );
    }

    proptest! {
        #[test]
        fn prop_in_interval_matches_bruteforce(
            positions in proptest::collection::vec(0.0f64..1.0, 1..60),
            center in 0.0f64..1.0,
            radius in 0.0f64..0.5,
        ) {
            let s = idx(&positions);
            let interval = Interval::around(Position::new(center), radius);
            let mut fast = s.in_interval(&interval);
            fast.sort();
            let mut slow: Vec<NodeId> = positions
                .iter()
                .enumerate()
                .filter(|(_, &p)| Position::new(center).distance(Position::new(p)) <= radius + 1e-15)
                .map(|(i, _)| NodeId(i as u64))
                .collect();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_every_node_is_in_its_own_swarm(
            positions in proptest::collection::vec(0.0f64..1.0, 1..50),
        ) {
            let params = OverlayParams::with_default_c(positions.len().max(2));
            let s = idx(&positions);
            for (id, p) in s.iter() {
                prop_assert!(s.swarm(p, &params).contains(&id));
            }
        }
    }
}
