//! Intervals on the `[0,1)` ring.
//!
//! The paper writes `⟨p ± r⟩` for the set of points within ring distance `r`
//! of `p`, and `⟨v, w⟩` for the set of points right of `v` and left of `w`.
//! [`Interval`] models both as a center/radius pair, which is the only shape
//! the algorithms need.

use crate::position::Position;

/// A closed arc of the ring, given by its center and radius (half-width).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    center: Position,
    radius: f64,
}

impl Interval {
    /// The arc `⟨center ± radius⟩`. Radii of `0.5` or more cover the whole ring.
    pub fn around(center: Position, radius: f64) -> Self {
        Interval {
            center,
            radius: radius.max(0.0),
        }
    }

    /// The arc from `a` to `b` going clockwise (through increasing values),
    /// i.e. the set of points `x` with `a ≤ x ≤ b` on the ring.
    pub fn from_endpoints(a: Position, b: Position) -> Self {
        let len = (b.value() - a.value()).rem_euclid(1.0);
        let center = a.offset(len / 2.0);
        Interval {
            center,
            radius: len / 2.0,
        }
    }

    /// The interval's center.
    pub fn center(&self) -> Position {
        self.center
    }

    /// The interval's radius (half its length).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Total arc length covered (capped at 1).
    pub fn length(&self) -> f64 {
        (2.0 * self.radius).min(1.0)
    }

    /// Whether the interval covers the entire ring.
    pub fn is_full_ring(&self) -> bool {
        self.radius >= 0.5
    }

    /// `true` if `p` lies inside the interval.
    #[inline]
    pub fn contains(&self, p: Position) -> bool {
        self.center.distance(p) <= self.radius + 1e-15
    }

    /// The left endpoint (counter-clockwise boundary).
    pub fn left_end(&self) -> Position {
        self.center.offset(-self.radius)
    }

    /// The right endpoint (clockwise boundary).
    pub fn right_end(&self) -> Position {
        self.center.offset(self.radius)
    }

    /// `true` if the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.center.distance(other.center) <= self.radius + other.radius + 1e-15
    }

    /// Length of the overlap of two intervals (0 if disjoint). Used in the
    /// Lemma 19 argument that any two future neighbours share a witness.
    pub fn overlap_length(&self, other: &Interval) -> f64 {
        if self.is_full_ring() {
            return other.length();
        }
        if other.is_full_ring() {
            return self.length();
        }
        let d = self.center.distance(other.center);
        let overlap = (self.radius + other.radius - d).max(0.0);
        overlap.min(self.length()).min(other.length())
    }

    /// The image of this interval under the de Bruijn map `x ↦ (x + bit)/2`:
    /// the center maps and the radius halves.
    pub fn debruijn_image(&self, bit: u8) -> Interval {
        Interval {
            center: self.center.debruijn_image(bit),
            radius: self.radius / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_handles_wraparound() {
        let i = Interval::around(Position::new(0.02), 0.05);
        assert!(i.contains(Position::new(0.99)));
        assert!(i.contains(Position::new(0.05)));
        assert!(!i.contains(Position::new(0.5)));
    }

    #[test]
    fn endpoints_are_consistent() {
        let i = Interval::around(Position::new(0.5), 0.1);
        assert!((i.left_end().value() - 0.4).abs() < 1e-12);
        assert!((i.right_end().value() - 0.6).abs() < 1e-12);
        assert!((i.length() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_endpoints_wraps() {
        let i = Interval::from_endpoints(Position::new(0.9), Position::new(0.1));
        assert!((i.length() - 0.2).abs() < 1e-12);
        assert!(i.contains(Position::new(0.95)));
        assert!(i.contains(Position::new(0.05)));
        assert!(!i.contains(Position::new(0.5)));
    }

    #[test]
    fn overlap_length_cases() {
        let a = Interval::around(Position::new(0.1), 0.1);
        let b = Interval::around(Position::new(0.25), 0.1);
        assert!(a.overlaps(&b));
        assert!((a.overlap_length(&b) - 0.05).abs() < 1e-12);
        let c = Interval::around(Position::new(0.6), 0.05);
        assert!(!a.overlaps(&c));
        assert_eq!(a.overlap_length(&c), 0.0);
    }

    #[test]
    fn full_ring_interval() {
        let i = Interval::around(Position::new(0.3), 0.6);
        assert!(i.is_full_ring());
        assert!(i.contains(Position::new(0.9)));
        assert_eq!(i.length(), 1.0);
        let j = Interval::around(Position::new(0.0), 0.01);
        assert!((i.overlap_length(&j) - j.length()).abs() < 1e-12);
    }

    #[test]
    fn debruijn_image_halves_radius() {
        let i = Interval::around(Position::new(0.6), 0.2);
        let img = i.debruijn_image(0);
        assert!((img.radius() - 0.1).abs() < 1e-12);
        assert!((img.center().value() - 0.3).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_contains_iff_within_radius(c in 0.0f64..1.0, r in 0.0f64..0.5, p in 0.0f64..1.0) {
            let i = Interval::around(Position::new(c), r);
            let pos = Position::new(p);
            prop_assert_eq!(i.contains(pos), Position::new(c).distance(pos) <= r + 1e-15);
        }

        #[test]
        fn prop_endpoints_are_contained(c in 0.0f64..1.0, r in 0.0f64..0.49) {
            let i = Interval::around(Position::new(c), r);
            prop_assert!(i.contains(i.left_end()));
            prop_assert!(i.contains(i.right_end()));
            prop_assert!(i.contains(i.center()));
        }

        #[test]
        fn prop_overlap_is_symmetric(c1 in 0.0f64..1.0, r1 in 0.0f64..0.4, c2 in 0.0f64..1.0, r2 in 0.0f64..0.4) {
            let a = Interval::around(Position::new(c1), r1);
            let b = Interval::around(Position::new(c2), r2);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert!((a.overlap_length(&b) - b.overlap_length(&a)).abs() < 1e-12);
        }
    }
}
