//! # tsa-overlay — the Linearized DeBruijn Swarm and friends
//!
//! Topology layer of the reproduction of *"Always be Two Steps Ahead of Your
//! Enemy"*. It provides:
//!
//! * [`Position`] / [`Interval`]: arithmetic on the `[0,1)` ring (Section 3);
//! * [`OverlayParams`]: `n`, `κ`, `c` and every derived quantity (`λ`, swarm
//!   radius, maturity age, churn window, dilation);
//! * [`SwarmIndex`]: efficient wrap-around range queries over node positions;
//! * [`Lds`]: the Linearized DeBruijn Swarm of Definition 5 with swarm-property
//!   and goodness checks (Lemma 6, Definition 8);
//! * [`Ldg`]: the classical Linearized DeBruijn Graph baseline;
//! * [`Trajectory`]: Definition 7, the backbone of the routing algorithm;
//! * [`OverlayGraph`]: graph snapshots with connectivity and degree analysis.
//!
//! ```
//! use tsa_overlay::{Lds, OverlayParams, Position};
//! use tsa_sim::NodeId;
//! use rand::SeedableRng;
//!
//! let params = OverlayParams::with_default_c(64);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let lds = Lds::random(params, (0..64).map(NodeId), &mut rng);
//! assert!(lds.to_graph().is_connected());
//! assert!(lds.swarm_property_holds_at(Position::new(0.25)));
//! ```

#![deny(missing_docs)]

pub mod graph;
pub mod interval;
pub mod ldg;
pub mod lds;
pub mod params;
pub mod position;
pub mod swarm;
pub mod trajectory;

pub use graph::OverlayGraph;
pub use interval::Interval;
pub use ldg::Ldg;
pub use lds::{GoodnessStats, Lds};
pub use params::OverlayParams;
pub use position::Position;
pub use swarm::SwarmIndex;
pub use trajectory::{step_bit, Trajectory};
