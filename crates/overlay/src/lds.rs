//! The Linearized DeBruijn Swarm (Definition 5) and its structural checks.
//!
//! A LDS over a set of positioned nodes has two kinds of edges:
//!
//! * **list edges** `E_L`: `(v, w) ∈ E_L` iff `d(v, w) ≤ 2cλ/n`;
//! * **long-distance (de Bruijn) edges** `E_DB`: `(v, w) ∈ E_DB` iff
//!   `d((v + i)/2, w) ≤ 3cλ/(2n)` for some `i ∈ {0, 1}`.
//!
//! The *swarm property* (Lemma 6) then guarantees that every swarm `S(p)` is
//! adjacent to the swarms `S(p/2)` and `S((p+1)/2)`, which is what the routing
//! algorithm relies on.

use std::collections::{HashMap, HashSet};

use rand::Rng;
use tsa_sim::NodeId;

use crate::graph::OverlayGraph;
use crate::interval::Interval;
use crate::params::OverlayParams;
use crate::position::Position;
use crate::swarm::SwarmIndex;

/// A snapshot of a Linearized DeBruijn Swarm: node positions plus the derived
/// edge sets.
#[derive(Clone, Debug)]
pub struct Lds {
    params: OverlayParams,
    index: SwarmIndex,
    positions: HashMap<NodeId, Position>,
}

impl Lds {
    /// Builds an LDS from explicit position assignments.
    pub fn build<I>(params: OverlayParams, assignments: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Position)>,
    {
        let positions: HashMap<NodeId, Position> = assignments.into_iter().collect();
        let index = SwarmIndex::build(positions.iter().map(|(id, p)| (*id, *p)));
        Lds {
            params,
            index,
            positions,
        }
    }

    /// Builds an LDS by placing every node uniformly at random.
    pub fn random<I, R>(params: OverlayParams, nodes: I, rng: &mut R) -> Self
    where
        I: IntoIterator<Item = NodeId>,
        R: Rng + ?Sized,
    {
        Self::build(
            params,
            nodes
                .into_iter()
                .map(|id| (id, Position::new(rng.gen::<f64>()))),
        )
    }

    /// Builds the LDS for overlay epoch `epoch` where node `v` sits at
    /// `h(v, epoch)` — exactly how the maintenance protocol places nodes.
    pub fn from_hash<I>(params: OverlayParams, nodes: I, hash_seed: u64, epoch: u64) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        Self::build(
            params,
            nodes.into_iter().map(|id| {
                (
                    id,
                    Position::new(tsa_sim::rng::position_hash(hash_seed, id, epoch)),
                )
            }),
        )
    }

    /// The overlay parameters.
    pub fn params(&self) -> &OverlayParams {
        &self.params
    }

    /// Adds (or moves) `node` at position `p`, incrementally maintaining the
    /// position index — no rebuild. Equivalent to rebuilding the LDS from the
    /// updated assignment set.
    pub fn insert(&mut self, node: NodeId, p: Position) {
        self.positions.insert(node, p);
        self.index.insert(node, p);
    }

    /// Removes `node`, incrementally maintaining the position index. Returns
    /// its position, or `None` if it was not a member.
    pub fn remove(&mut self, node: NodeId) -> Option<Position> {
        let p = self.positions.remove(&node)?;
        self.index.remove(node);
        Some(p)
    }

    /// The underlying position index.
    pub fn index(&self) -> &SwarmIndex {
        &self.index
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All member identifiers.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.positions.keys().copied()
    }

    /// The position of `node`, if it is a member.
    pub fn position(&self, node: NodeId) -> Option<Position> {
        self.positions.get(&node).copied()
    }

    /// The swarm `S(p)`.
    pub fn swarm(&self, p: Position) -> Vec<NodeId> {
        self.index.swarm(p, &self.params)
    }

    /// The list neighbours of `node`: every other node within `2cλ/n`.
    pub fn list_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let Some(p) = self.position(node) else {
            return Vec::new();
        };
        let mut out = self.index.within(p, self.params.list_radius());
        out.retain(|&id| id != node);
        out
    }

    /// The long-distance neighbours of `node`: every node within `3cλ/(2n)` of
    /// one of the two de Bruijn images of its position.
    pub fn debruijn_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let Some(p) = self.position(node) else {
            return Vec::new();
        };
        let r = self.params.debruijn_radius();
        let mut out = self.index.within(p.half(), r);
        out.extend(self.index.within(p.half_plus(), r));
        out.sort();
        out.dedup();
        out.retain(|&id| id != node);
        out
    }

    /// All neighbours (list ∪ long-distance) of `node`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = self.list_neighbors(node);
        out.extend(self.debruijn_neighbors(node));
        out.sort();
        out.dedup();
        out
    }

    /// The intervals a node at position `p` must know to fulfil Definition 5:
    /// `⟨p ± 2cλ/n⟩`, `⟨p/2 ± 3cλ/2n⟩` and `⟨(p+1)/2 ± 3cλ/2n⟩`.
    ///
    /// These are exactly the intervals the maintenance protocol (Listing 3)
    /// spreads join requests over.
    pub fn responsibility_intervals(params: &OverlayParams, p: Position) -> [Interval; 3] {
        [
            Interval::around(p, params.list_radius()),
            Interval::around(p.half(), params.debruijn_radius()),
            Interval::around(p.half_plus(), params.debruijn_radius()),
        ]
    }

    /// Materializes the full directed edge set as a graph snapshot.
    pub fn to_graph(&self) -> OverlayGraph {
        let mut g = OverlayGraph::with_vertices(self.members());
        for id in self.members() {
            for w in self.neighbors(id) {
                g.add_edge(id, w);
            }
        }
        g
    }

    /// Precomputes the neighbour set of every member in one pass. Checks that
    /// probe many points against the same snapshot (e.g. the Figure-1 swarm
    /// property sweep in `exp_fig1`) should compute this once and pass it to
    /// [`Lds::swarm_property_holds_at_with`] instead of re-deriving each
    /// node's neighbourhood per probe.
    pub fn neighbor_sets(&self) -> HashMap<NodeId, HashSet<NodeId>> {
        self.members()
            .map(|v| (v, self.neighbors(v).into_iter().collect()))
            .collect()
    }

    /// Checks the swarm property (Lemma 6) at point `p`: every node of `S(p)`
    /// has an edge to every node of `S(p/2)` and of `S((p+1)/2)`. One-shot
    /// form: derives the (few) needed neighbour sets on the fly; repeated
    /// probes should precompute [`Lds::neighbor_sets`] and use
    /// [`Lds::swarm_property_holds_at_with`].
    pub fn swarm_property_holds_at(&self, p: Position) -> bool {
        let source = self.swarm(p);
        for image in [p.half(), p.half_plus()] {
            let target = self.swarm(image);
            for &v in &source {
                let nbrs: HashSet<NodeId> = self.neighbors(v).into_iter().collect();
                for &w in &target {
                    if w != v && !nbrs.contains(&w) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// [`Lds::swarm_property_holds_at`] against precomputed
    /// [`Lds::neighbor_sets`] — the allocation-light form for repeated
    /// probing.
    pub fn swarm_property_holds_at_with(
        &self,
        p: Position,
        neighbor_sets: &HashMap<NodeId, HashSet<NodeId>>,
    ) -> bool {
        let source = self.swarm(p);
        for image in [p.half(), p.half_plus()] {
            let target = self.swarm(image);
            for &v in &source {
                let Some(nbrs) = neighbor_sets.get(&v) else {
                    return false;
                };
                for &w in &target {
                    if w != v && !nbrs.contains(&w) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Checks swarm adjacency between two arbitrary points: every node of
    /// `S(p)` has an edge to every node of `S(q)`.
    pub fn swarms_adjacent(&self, p: Position, q: Position) -> bool {
        let source = self.swarm(p);
        let target = self.swarm(q);
        source.iter().all(|&v| {
            let nbrs: HashSet<NodeId> = self.neighbors(v).into_iter().collect();
            target.iter().all(|&w| w == v || nbrs.contains(&w))
        })
    }

    /// The goodness of the swarm at `p` given the set of nodes that survive
    /// into the relevant later round (Definition 8 asks for a 3/4 fraction).
    pub fn swarm_good_fraction(&self, p: Position, survivors: &HashSet<NodeId>) -> f64 {
        let swarm = self.swarm(p);
        if swarm.is_empty() {
            return 0.0;
        }
        let alive = swarm.iter().filter(|id| survivors.contains(id)).count();
        alive as f64 / swarm.len() as f64
    }

    /// Evaluates goodness at every member position and returns
    /// `(minimum fraction, share of positions whose swarm is ≥ threshold-good,
    /// minimum swarm size)`.
    pub fn goodness_stats(&self, survivors: &HashSet<NodeId>, threshold: f64) -> GoodnessStats {
        let mut min_fraction: f64 = 1.0;
        let mut good = 0usize;
        let mut total = 0usize;
        let mut min_size = usize::MAX;
        for (_, p) in self.index.iter() {
            let swarm = self.swarm(p);
            min_size = min_size.min(swarm.len());
            let frac = self.swarm_good_fraction(p, survivors);
            min_fraction = min_fraction.min(frac);
            if frac >= threshold {
                good += 1;
            }
            total += 1;
        }
        if total == 0 {
            min_fraction = 0.0;
            min_size = 0;
        }
        GoodnessStats {
            min_fraction,
            good_share: if total == 0 {
                0.0
            } else {
                good as f64 / total as f64
            },
            min_swarm_size: min_size,
            sampled_points: total,
        }
    }

    /// `true` if the overlay is *good* per Definition 8: every sampled swarm
    /// retains at least `threshold` of its members among `survivors`.
    pub fn is_good(&self, survivors: &HashSet<NodeId>, threshold: f64) -> bool {
        let stats = self.goodness_stats(survivors, threshold);
        stats.sampled_points > 0 && stats.min_fraction >= threshold
    }
}

/// Result of evaluating swarm goodness over an overlay (Lemma 17 / experiment E9).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct GoodnessStats {
    /// Smallest surviving fraction over all sampled swarms.
    pub min_fraction: f64,
    /// Share of sampled swarms meeting the goodness threshold.
    pub good_share: f64,
    /// Smallest sampled swarm size.
    pub min_swarm_size: usize,
    /// Number of sampled points.
    pub sampled_points: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_lds(n: usize, c: f64, seed: u64) -> Lds {
        let params = OverlayParams::new(n, c);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Lds::random(params, (0..n as u64).map(NodeId), &mut rng)
    }

    #[test]
    fn build_and_basic_queries() {
        let lds = random_lds(128, 2.0, 1);
        assert_eq!(lds.len(), 128);
        assert!(!lds.is_empty());
        let id = NodeId(5);
        assert!(lds.position(id).is_some());
        assert!(lds.position(NodeId(9999)).is_none());
        assert!(!lds.neighbors(id).is_empty());
    }

    #[test]
    fn list_neighbors_are_within_list_radius() {
        let lds = random_lds(128, 2.0, 2);
        let v = NodeId(3);
        let pv = lds.position(v).unwrap();
        for w in lds.list_neighbors(v) {
            let pw = lds.position(w).unwrap();
            assert!(pv.distance(pw) <= lds.params().list_radius() + 1e-12);
            assert_ne!(w, v);
        }
    }

    #[test]
    fn debruijn_neighbors_are_near_images() {
        let lds = random_lds(128, 2.0, 3);
        let v = NodeId(7);
        let pv = lds.position(v).unwrap();
        let r = lds.params().debruijn_radius();
        for w in lds.debruijn_neighbors(v) {
            let pw = lds.position(w).unwrap();
            let near_half = pv.half().distance(pw) <= r + 1e-12;
            let near_half_plus = pv.half_plus().distance(pw) <= r + 1e-12;
            assert!(near_half || near_half_plus);
        }
    }

    #[test]
    fn swarm_property_holds_at_random_points() {
        // Lemma 6: with a reasonable c the property holds deterministically,
        // not just w.h.p., because it follows from the triangle inequality.
        let lds = random_lds(256, 2.0, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let p = Position::new(rng.gen::<f64>());
            assert!(
                lds.swarm_property_holds_at(p),
                "swarm property violated at {p}"
            );
        }
    }

    #[test]
    fn graph_snapshot_is_connected_for_reasonable_c() {
        let lds = random_lds(256, 2.0, 5);
        let g = lds.to_graph();
        assert!(g.is_connected());
        assert_eq!(g.vertex_count(), 256);
    }

    #[test]
    fn goodness_with_full_survival_is_one() {
        let lds = random_lds(128, 2.0, 6);
        let survivors: HashSet<NodeId> = lds.members().collect();
        let stats = lds.goodness_stats(&survivors, 0.75);
        assert_eq!(stats.min_fraction, 1.0);
        assert_eq!(stats.good_share, 1.0);
        assert!(lds.is_good(&survivors, 0.75));
        assert!(stats.min_swarm_size >= 1);
    }

    #[test]
    fn goodness_degrades_when_half_the_nodes_die() {
        let lds = random_lds(128, 2.0, 7);
        let survivors: HashSet<NodeId> = lds.members().filter(|id| id.raw() % 2 == 0).collect();
        let stats = lds.goodness_stats(&survivors, 0.75);
        assert!(stats.min_fraction < 0.9);
        assert!(!lds.is_good(&survivors, 0.95));
    }

    #[test]
    fn from_hash_positions_match_the_shared_hash() {
        let params = OverlayParams::new(32, 2.0);
        let lds = Lds::from_hash(params, (0..32).map(NodeId), 77, 5);
        for id in lds.members() {
            let expected = Position::new(tsa_sim::rng::position_hash(77, id, 5));
            assert!(lds.position(id).unwrap().distance(expected) < 1e-15);
        }
    }

    #[test]
    fn responsibility_intervals_cover_neighbors() {
        let lds = random_lds(128, 2.0, 8);
        let v = NodeId(11);
        let pv = lds.position(v).unwrap();
        let intervals = Lds::responsibility_intervals(lds.params(), pv);
        for w in lds.neighbors(v) {
            let pw = lds.position(w).unwrap();
            assert!(
                intervals.iter().any(|i| i.contains(pw)),
                "neighbour {w} at {pw} outside all responsibility intervals of {v}"
            );
        }
    }

    #[test]
    fn incremental_membership_equals_rebuild() {
        let params = OverlayParams::new(64, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut live = Lds::random(params, (0..64).map(NodeId), &mut rng);
        // Interleave leaves and joins, then compare against a from-scratch
        // build over the surviving assignment set.
        for id in (0..64u64).step_by(3) {
            assert!(live.remove(NodeId(id)).is_some());
        }
        assert!(live.remove(NodeId(0)).is_none(), "double-leave is a no-op");
        for id in 100..110u64 {
            live.insert(NodeId(id), Position::new((id as f64) / 128.0));
        }
        let rebuilt = Lds::build(
            params,
            live.members().map(|id| (id, live.position(id).unwrap())),
        );
        assert_eq!(live.len(), rebuilt.len());
        for id in live.members() {
            assert_eq!(live.neighbors(id), rebuilt.neighbors(id), "node {id}");
        }
        let sets = live.neighbor_sets();
        for p in [0.1, 0.45, 0.99] {
            let p = Position::new(p);
            assert_eq!(
                live.swarm_property_holds_at(p),
                live.swarm_property_holds_at_with(p, &sets)
            );
        }
    }

    #[test]
    fn empty_lds_is_handled() {
        let params = OverlayParams::new(16, 2.0);
        let lds = Lds::build(params, std::iter::empty());
        assert!(lds.is_empty());
        let survivors = HashSet::new();
        assert!(!lds.is_good(&survivors, 0.75));
        assert_eq!(lds.goodness_stats(&survivors, 0.75).sampled_points, 0);
    }
}
