//! Direction-sensitivity regressions: a per-link override and a fault rule
//! both name a *directed* link `from → to`, and neither may ever leak onto
//! the reverse direction. The protocol under test floods `id ± 1`, so the
//! pair `1 ↔ 2` exercises both directions of one link every round.

use tsa_event::{
    EventConfig, EventSimulator, FaultAction, FaultAdapter, FaultPlan, FaultRule, LatencyModel,
    LinkOverride, NetModel, NodeSelector, Topology,
};
use tsa_sim::prelude::*;
use tsa_sim::SimConfig;

/// Floods `(me << 32) | round` to `id ± 1` each round; the high tag bits
/// name the sender, so who-heard-whom is directly observable.
#[derive(Default)]
struct Ping {
    heard: Vec<u64>,
}

impl Process for Ping {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        for env in inbox {
            self.heard.push(env.payload);
        }
        let me = ctx.id().raw();
        let tag = (me << 32) | ctx.round();
        ctx.send(NodeId(me.wrapping_add(1)), tag);
        if me > 0 {
            ctx.send(NodeId(me - 1), tag);
        }
    }
    fn state_digest(&self) -> u64 {
        self.heard.len() as u64
    }
}

const ADAPTER: FaultAdapter<u64> = FaultAdapter {
    kind_of: |m| (*m & 0x7) as u8,
    mutate: |m, entropy| {
        *m ^= entropy | 1;
        true
    },
};

fn senders_heard_by(sim: &EventSimulator<Ping, NullAdversary>, id: u64) -> Vec<u64> {
    let mut senders: Vec<u64> = sim
        .node(NodeId(id))
        .unwrap()
        .heard
        .iter()
        .map(|tag| tag >> 32)
        .collect();
    senders.sort_unstable();
    senders.dedup();
    senders
}

#[test]
fn per_link_overrides_are_direction_sensitive() {
    // Kill the directed link 1 → 2 only: node 2 must go deaf to node 1 while
    // node 1 keeps hearing node 2 over the untouched reverse direction.
    let base = NetModel::new(LatencyModel::constant(0));
    let cut = NetModel {
        latency: LatencyModel::constant(0),
        jitter: 0,
        loss: 1.0,
    };
    let topology = Topology::per_link(
        base,
        vec![LinkOverride {
            from: NodeId(1),
            to: NodeId(2),
            net: cut,
        }],
    );
    // The resolver itself is asymmetric...
    assert_eq!(topology.net_for(0, NodeId(1), NodeId(2)), cut, "overridden");
    assert_eq!(topology.net_for(0, NodeId(2), NodeId(1)), base, "reverse");
    assert_eq!(topology.net_for(0, NodeId(2), NodeId(3)), base, "others");

    // ...and so is the engine behavior built on it.
    let config = EventConfig::with_topology(SimConfig::default().with_seed(5), topology);
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
    sim.seed_nodes(4);
    sim.run(6);
    assert_eq!(senders_heard_by(&sim, 2), vec![3], "2 never hears 1");
    assert_eq!(senders_heard_by(&sim, 1), vec![0, 2], "1 still hears 2");
    let stats = sim.net_stats();
    assert!(stats.lost > 0, "the override actually dropped frames");
}

#[test]
fn fault_rules_drop_one_direction_only() {
    // The same asymmetry through the fault layer: an unconditional drop rule
    // scoped to `from #1 → to #2` must censor exactly that direction.
    let plan = FaultPlan::new().with_rule(
        FaultRule::every(FaultAction::Drop)
            .from(NodeSelector::Id { id: 1 })
            .to(NodeSelector::Id { id: 2 }),
    );
    let config = EventConfig::new(
        SimConfig::default().with_seed(5),
        NetModel::new(LatencyModel::constant(0)),
    );
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
    sim.set_faults(plan, ADAPTER);
    sim.seed_nodes(4);
    sim.run(6);
    assert_eq!(senders_heard_by(&sim, 2), vec![3], "2 never hears 1");
    assert_eq!(senders_heard_by(&sim, 1), vec![0, 2], "1 still hears 2");
    let fs = sim.fault_stats();
    assert_eq!(fs.dropped, 6, "one censored send per round");
    assert_eq!(fs.total(), fs.dropped, "no other action fired");
    assert_eq!(
        sim.net_stats().lost,
        fs.dropped,
        "fault drops are charged to the network loss counter"
    );
}
