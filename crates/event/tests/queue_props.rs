//! Byte-identity properties of the calendar queue and the batched fate
//! streams.
//!
//! The refactor's contract is that neither the timing wheel nor the
//! 64-message fate blocks change a single popped event or sampled fate:
//!
//! * the calendar queue must pop the exact `(arrival, seq, receiver)` order
//!   of a reference `BinaryHeap<Pending>` under dense, sparse, far-future
//!   and duplicate-arrival tick distributions, at thread caps 1/2/4;
//! * an engine run's recorded trace (derived through the engine's *cached*
//!   fate block) must equal the fates predicted by fresh one-shot
//!   [`NetModel::route`] calls, message by message;
//! * a cached [`FaultCoins`] must agree with the one-shot
//!   [`FaultPlan::decide`] for every sequence number.

use std::collections::BinaryHeap;

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
use tsa_event::queue::{CalendarQueue, Pending};
use tsa_event::{
    EventConfig, EventSimulator, FaultAction, FaultCoins, FaultPlan, FaultRule, LatencyModel,
    MessageFate, NetModel,
};
use tsa_sim::prelude::*;
use tsa_sim::SimConfig;

/// Which arrival-tick distribution a generated workload draws from.
#[derive(Clone, Copy, Debug)]
enum Dist {
    /// Deltas within a couple of bucket widths: every event lands in the
    /// wheel's near ring.
    Dense,
    /// Few events, deltas spread over ~100 buckets: most ring slots stay
    /// empty and the wheel has to skip them.
    Sparse,
    /// A mix of near deltas and absolute far-future arrivals (up to
    /// `u64::MAX`): events park in the overflow list and must fold back in
    /// order as the horizon advances.
    FarFuture,
    /// Deltas from a 3-value set so many events share one arrival tick, and
    /// occasional duplicated `(arrival, seq)` pairs with distinct receivers
    /// exercise the receiver tie-break.
    DuplicateArrival,
}

/// One generated workload: a bucket width and per-boundary push batches of
/// `(arrival, seq, receiver)`.
#[derive(Clone, Debug)]
struct Workload {
    width: u64,
    batches: Vec<Vec<(u64, u64, u64)>>,
}

struct WorkloadTree {
    dist: Dist,
}

impl Strategy for WorkloadTree {
    type Value = Workload;

    fn generate(&self, rng: &mut TestRng) -> Workload {
        let width = [1u64, 7, 250, 1000][(rng.next_u64() % 4) as usize];
        let rounds = 4 + (rng.next_u64() % 12);
        let mut seq = 0u64;
        let mut batches = Vec::new();
        for r in 0..rounds {
            let now = r * width;
            let count = match self.dist {
                Dist::Sparse => rng.next_u64() % 3,
                _ => rng.next_u64() % 24,
            };
            let mut batch = Vec::new();
            for _ in 0..count {
                let arrival = match self.dist {
                    Dist::Dense => now + rng.next_u64() % (2 * width + 1),
                    Dist::Sparse => now + rng.next_u64() % (100 * width + 1),
                    Dist::FarFuture => {
                        if rng.next_u64().is_multiple_of(4) {
                            // Absolute far future, overflowing the wheel —
                            // including the saturation point itself.
                            u64::MAX - rng.next_u64() % 1000
                        } else {
                            now + rng.next_u64() % (70 * width + 1)
                        }
                    }
                    Dist::DuplicateArrival => {
                        now + [0, width, 2 * width][(rng.next_u64() % 3) as usize]
                    }
                };
                let to = rng.next_u64() % 8;
                batch.push((arrival, seq, to));
                if matches!(self.dist, Dist::DuplicateArrival) && rng.next_u64().is_multiple_of(5) {
                    // Same (arrival, seq), different receiver: the final
                    // tie-break level, which a live engine never produces
                    // but the order must still be total over.
                    batch.push((arrival, seq, (to + 1) % 8));
                }
                seq += 1;
            }
            batches.push(batch);
        }
        Workload { width, batches }
    }
}

fn pending(arrival: u64, seq: u64, to: u64) -> Pending<u64> {
    Pending {
        arrival,
        seq,
        env: Envelope::new(NodeId(0), NodeId(to), 0, 0),
    }
}

/// Drives the calendar queue and a reference heap through the identical
/// push/boundary-drain schedule, asserting the popped keys match one for
/// one, and returns the full pop order.
fn drive(w: &Workload) -> Result<Vec<(u64, u64, NodeId)>, String> {
    let mut cal = CalendarQueue::new(w.width);
    let mut heap: BinaryHeap<Pending<u64>> = BinaryHeap::new();
    let mut order = Vec::new();
    let drain = |cal: &mut CalendarQueue<u64>,
                 heap: &mut BinaryHeap<Pending<u64>>,
                 now: u64,
                 order: &mut Vec<(u64, u64, NodeId)>|
     -> Result<(), String> {
        loop {
            let c = cal.pop_at_or_before(now);
            let h = if heap.peek().is_some_and(|p| p.arrival <= now) {
                heap.pop()
            } else {
                None
            };
            match (c, h) {
                (None, None) => return Ok(()),
                (Some(a), Some(b)) => {
                    if a.cmp_key() != b.cmp_key() {
                        return Err(format!(
                            "pop order diverged at now={now}: calendar {:?}, heap {:?}",
                            a.cmp_key(),
                            b.cmp_key()
                        ));
                    }
                    order.push(a.cmp_key());
                }
                (c, h) => {
                    return Err(format!(
                        "due-set diverged at now={now}: calendar {:?}, heap {:?}",
                        c.map(|p| p.cmp_key()),
                        h.map(|p| p.cmp_key())
                    ))
                }
            }
        }
    };
    for (r, batch) in w.batches.iter().enumerate() {
        let now = (r as u64).saturating_mul(w.width);
        for &(arrival, seq, to) in batch {
            cal.push(pending(arrival, seq, to));
            heap.push(pending(arrival, seq, to));
        }
        if cal.len() != heap.len() {
            return Err(format!("len diverged: {} vs {}", cal.len(), heap.len()));
        }
        drain(&mut cal, &mut heap, now, &mut order)?;
    }
    drain(&mut cal, &mut heap, u64::MAX, &mut order)?;
    if !cal.is_empty() || !heap.is_empty() {
        return Err("a queue kept events past the final drain".to_string());
    }
    Ok(order)
}

fn check_dist(w: &Workload) -> Result<(), String> {
    let baseline = drive(w)?;
    // The queue is sequential state; an ambient thread cap (as imposed on
    // sweep workers) must not perturb a single popped key.
    for cap in [1usize, 2, 4] {
        let capped = rayon::with_thread_cap(cap, || drive(w))?;
        if capped != baseline {
            return Err(format!("pop order diverged under thread cap {cap}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_workloads_pop_exactly_like_a_heap(w in WorkloadTree { dist: Dist::Dense }) {
        if let Err(e) = check_dist(&w) {
            prop_assert!(false, "{} ({:?})", e, w);
        }
    }

    #[test]
    fn sparse_workloads_pop_exactly_like_a_heap(w in WorkloadTree { dist: Dist::Sparse }) {
        if let Err(e) = check_dist(&w) {
            prop_assert!(false, "{} ({:?})", e, w);
        }
    }

    #[test]
    fn far_future_workloads_pop_exactly_like_a_heap(w in WorkloadTree { dist: Dist::FarFuture }) {
        if let Err(e) = check_dist(&w) {
            prop_assert!(false, "{} ({:?})", e, w);
        }
    }

    #[test]
    fn duplicate_arrivals_pop_exactly_like_a_heap(
        w in WorkloadTree { dist: Dist::DuplicateArrival },
    ) {
        if let Err(e) = check_dist(&w) {
            prop_assert!(false, "{} ({:?})", e, w);
        }
    }

    #[test]
    fn cached_fault_coins_agree_with_one_shot_decisions(
        seed in 0u64..256,
        prob_idx in 0usize..3,
    ) {
        // One cache reused across a monotone seq walk (the hot-loop shape,
        // crossing several 64-message block boundaries) must equal a fresh
        // one-shot decide per message.
        const PROBS: [f64; 3] = [0.25, 0.5, 0.9];
        let plan = FaultPlan::new()
            .with_rule(FaultRule::every(FaultAction::Drop).with_prob(PROBS[prob_idx]))
            .with_rule(FaultRule::every(FaultAction::Duplicate).with_prob(0.5));
        let mut coins = FaultCoins::new(seed);
        for seq in 0u64..300 {
            let one_shot = plan.decide(seed, seq, 3, NodeId(1), NodeId(2), 0);
            let cached = plan.decide_with(&mut coins, seq, 3, NodeId(1), NodeId(2), 0);
            prop_assert_eq!(cached, one_shot, "coin diverged at seq {}", seq);
        }
    }
}

/// The flood protocol the engine tests pin traces with.
#[derive(Default)]
struct Ping;

impl Process for Ping {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[Envelope<u64>]) {
        let me = ctx.id().raw();
        ctx.send(NodeId(me.wrapping_add(1)), me);
        if me > 0 {
            ctx.send(NodeId(me - 1), me);
        }
    }
}

/// The engine derives fates through a cached 64-message block; every fate it
/// records must equal the one a fresh one-shot `route` predicts. This is the
/// equivalence that keeps `exp_profile`'s (and every other experiment's)
/// deterministic section unchanged by the batching.
#[test]
fn recorded_traces_match_one_shot_route_predictions() {
    let seed = 42;
    let net = NetModel {
        latency: LatencyModel::uniform(100, 3500),
        jitter: 400,
        loss: 0.1,
    };
    let config = EventConfig::new(SimConfig::default().with_seed(seed), net);
    let tpr = config.ticks_per_round;
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping));
    sim.record_trace();
    sim.seed_nodes(12);
    sim.run(8);
    let sent = sim.net_stats().sent;
    assert!(sent > 64, "cross at least one fate-block boundary");
    // Reconstruct each seq's send round from the per-round send counts
    // (sequence numbers are assigned in send order).
    let mut send_round = Vec::with_capacity(sent as usize);
    for row in sim.metrics().rounds() {
        send_round.extend(std::iter::repeat_n(row.round, row.messages_sent));
    }
    assert_eq!(send_round.len() as u64, sent);
    let trace = sim.take_trace().unwrap();
    for seq in 0..sent {
        let t = send_round[seq as usize];
        let expected = match net.route(seed, seq) {
            None => MessageFate::Lost,
            Some(delay) => MessageFate::Delivered {
                at_round: (t * tpr + delay).div_ceil(tpr).max(t + 1),
            },
        };
        assert_eq!(
            trace.fate(seq),
            Some(expected),
            "engine fate for seq {seq} diverged from the one-shot route"
        );
    }
}
