//! Property tests for the fault-plan language: every representable plan must
//! serde round-trip byte-exactly, every decision must be a pure function of
//! `(plan, seed, seq, round, endpoints, kind)` — at any ambient thread
//! budget — and no hostile or degenerate plan (inverted windows, saturating
//! delays, out-of-range probabilities, empty kind lists) may ever panic the
//! decision procedure or the engine it is installed in.
//!
//! Probabilities in the *serde* strategies stay finite: `NaN` breaks
//! `PartialEq` and JSON alike, so the non-finite coins get their own
//! dedicated never-panic block at the bottom instead.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
use tsa_event::{
    EventConfig, EventSimulator, FaultAction, FaultAdapter, FaultCoins, FaultPlan, FaultRule,
    LatencyModel, NetModel, NodeSelector, RegionAssign, RoundWindow,
};
use tsa_sim::prelude::*;
use tsa_sim::SimConfig;

/// Random fault plans with at most `max_rules` rules drawn from the whole
/// plan grammar: full/suffix/bounded windows (including empty and inverted
/// spans), id and region selectors, all four actions, kind filters, and
/// finite probabilities on either side of the `[0, 1]` range.
struct PlanTree {
    max_rules: u64,
}

impl Strategy for PlanTree {
    type Value = FaultPlan;

    fn generate(&self, rng: &mut TestRng) -> FaultPlan {
        let rules = rng.next_u64() % (self.max_rules + 1);
        let mut plan = FaultPlan::new();
        for _ in 0..rules {
            plan = plan.with_rule(gen_rule(rng));
        }
        plan
    }
}

fn gen_rule(rng: &mut TestRng) -> FaultRule {
    let mut rule = FaultRule::every(gen_action(rng));
    rule = match rng.next_u64() % 4 {
        0 => rule,
        1 => rule.in_window(RoundWindow::starting_at(rng.next_u64() % 16)),
        // Bounded spans — half of them empty or inverted, which must simply
        // match nothing.
        2 => rule.in_window(RoundWindow::between(
            rng.next_u64() % 32,
            rng.next_u64() % 32,
        )),
        _ => rule.in_window(RoundWindow::between(rng.next_u64(), rng.next_u64())),
    };
    rule = rule.from(gen_selector(rng)).to(gen_selector(rng));
    if rng.next_u64().is_multiple_of(2) {
        let kinds: Vec<u8> = (0..rng.next_u64() % 4)
            .map(|_| (rng.next_u64() % 8) as u8)
            .collect();
        rule = rule.kinds(kinds);
    }
    if rng.next_u64().is_multiple_of(2) {
        const PROBS: [f64; 6] = [0.0, 0.25, 0.5, 0.9, 1.0, 2.0];
        rule = rule.with_prob(PROBS[(rng.next_u64() % PROBS.len() as u64) as usize]);
    }
    rule
}

fn gen_selector(rng: &mut TestRng) -> NodeSelector {
    match rng.next_u64() % 4 {
        0 | 1 => NodeSelector::Any,
        2 => NodeSelector::Id {
            id: rng.next_u64() % 32,
        },
        _ => NodeSelector::Region {
            assign: if rng.next_u64().is_multiple_of(2) {
                RegionAssign::halves(rng.next_u64() % 16)
            } else {
                // width/k of 0 are degenerate by construction; region_of
                // must treat them as 1.
                RegionAssign::bands(rng.next_u64() % 8, (rng.next_u64() % 4) as u32)
            },
            region: (rng.next_u64() % 4) as u32,
        },
    }
}

fn gen_action(rng: &mut TestRng) -> FaultAction {
    match rng.next_u64() % 4 {
        0 => FaultAction::Drop,
        1 => FaultAction::Delay {
            ticks: rng.next_u64() % 4000,
        },
        2 => FaultAction::Duplicate,
        _ => FaultAction::Mutate,
    }
}

/// The same flood protocol the engine's own tests pin traces with: each node
/// pushes every heard payload and tags id ± 1 with `(me << 32) | round`, so
/// delivery *order* is part of every fingerprint.
#[derive(Default)]
struct Ping {
    heard: Vec<u64>,
}

impl Process for Ping {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        for env in inbox {
            self.heard.push(env.payload);
        }
        let me = ctx.id().raw();
        let tag = (me << 32) | ctx.round();
        ctx.send(NodeId(me.wrapping_add(1)), tag);
        if me > 0 {
            ctx.send(NodeId(me - 1), tag);
        }
    }
    fn state_digest(&self) -> u64 {
        self.heard.len() as u64
    }
}

/// A fault adapter for the raw `u64` payloads: the low bits tag the kind,
/// mutation XORs the entropy word in (always a change, `entropy | 1` keeps
/// it nonzero).
const ADAPTER: FaultAdapter<u64> = FaultAdapter {
    kind_of: |m| (*m & 0x7) as u8,
    mutate: |m, entropy| {
        *m ^= entropy | 1;
        true
    },
};

/// One engine run with `plan` installed, fingerprinted down to per-node
/// heard sequences, fault counters and network counters.
fn faulted_fingerprint(plan: &FaultPlan, seed: u64, n: usize, rounds: u64) -> String {
    let config = EventConfig::new(
        SimConfig::default().with_seed(seed),
        NetModel::new(LatencyModel::uniform(100, 1800)),
    );
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
    sim.set_faults(plan.clone(), ADAPTER);
    sim.seed_nodes(n);
    sim.run(rounds);
    let heard: Vec<(NodeId, Vec<u64>)> = sim
        .member_ids()
        .iter()
        .map(|&id| (id, sim.node(id).unwrap().heard.clone()))
        .collect();
    format!(
        "{heard:?}|{:?}|{:?}",
        sim.fault_stats(),
        sim.net_stats().lost
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_plan_round_trips_byte_exactly(plan in PlanTree { max_rules: 4 }) {
        let json = serde_json::to_string(&plan).expect("every plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("every plan deserializes");
        prop_assert_eq!(&back, &plan, "round trip is lossless");
        let json2 = serde_json::to_string(&back).expect("round-tripped plan re-serializes");
        prop_assert_eq!(json2, json, "re-serialization is byte-exact");
    }

    #[test]
    fn decisions_are_pure_functions_of_their_inputs(
        plan in PlanTree { max_rules: 4 },
        seed in 0u64..1024,
        seq in 0u64..4096,
        round in 0u64..64,
        from in 0u64..32,
        to in 0u64..32,
        kind in 0u8..8,
    ) {
        let a = plan.decide(seed, seq, round, NodeId(from), NodeId(to), kind);
        let b = plan.decide(seed, seq, round, NodeId(from), NodeId(to), kind);
        prop_assert_eq!(a, b, "same inputs must give the same decision");
        let mut coins = FaultCoins::new(seed);
        let c = plan.decide_with(&mut coins, seq, round, NodeId(from), NodeId(to), kind);
        prop_assert_eq!(c, a, "the cached coin path must agree with the one-shot path");
        prop_assert_eq!(
            FaultPlan::mutation_entropy(seed, seq),
            FaultPlan::mutation_entropy(seed, seq),
            "mutation entropy is pure too"
        );
    }
}

proptest! {
    // Engine runs are heavier than bare decisions; fewer cases, same grammar.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_runs_ignore_the_ambient_thread_budget(
        plan in PlanTree { max_rules: 3 },
        seed in 0u64..64,
    ) {
        // The sweep driver caps worker threads (TSA_THREADS does the same
        // from the environment, through the identical rayon shim path); no
        // cap may perturb a single bit of a faulted run.
        let baseline = faulted_fingerprint(&plan, seed, 10, 5);
        for cap in [1usize, 2, 4] {
            let capped =
                rayon::with_thread_cap(cap, || faulted_fingerprint(&plan, seed, 10, 5));
            prop_assert_eq!(&capped, &baseline, "divergence under thread cap {}", cap);
        }
    }

    #[test]
    fn hostile_plans_never_panic(
        plan in PlanTree { max_rules: 3 },
        hostile_prob in 0usize..6,
        seed in 0u64..64,
    ) {
        // Worst-case rules stacked onto a random plan: non-finite and
        // out-of-range coins, saturating delays, inverted windows, an empty
        // kind filter, and selectors past the id space.
        const HOSTILE_PROBS: [f64; 6] =
            [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 2.0, 0.0];
        let hostile = plan
            .with_rule(
                FaultRule::every(FaultAction::Delay { ticks: u64::MAX })
                    .with_prob(HOSTILE_PROBS[hostile_prob]),
            )
            .with_rule(
                FaultRule::every(FaultAction::Drop)
                    .in_window(RoundWindow::between(u64::MAX, 0))
                    .kinds([]),
            )
            .with_rule(
                FaultRule::every(FaultAction::Mutate).from(NodeSelector::Id { id: u64::MAX }),
            );

        // Bare decisions at the extremes of every argument.
        for (seq, round) in [(0, 0), (u64::MAX, u64::MAX), (1, u64::MAX - 1)] {
            let _ = hostile.decide(seed, seq, round, NodeId(u64::MAX), NodeId(0), u8::MAX);
        }

        // A short engine run with the hostile plan installed: saturating
        // delay arithmetic, never-firing rules and all.
        let fp = faulted_fingerprint(&hostile, seed, 6, 3);
        prop_assert!(!fp.is_empty(), "the run completes");
    }
}

/// Regression: a hostile `Delay { ticks: u64::MAX }` plan used to wrap the
/// arrival tick (`now + latency + delay`) back into the past, reordering
/// the queue and re-delivering history. With saturating tick arithmetic the
/// message parks at the end of time instead: counted, in flight, and never
/// delivered.
#[test]
fn u64_max_delays_park_messages_instead_of_wrapping() {
    let plan = FaultPlan::new().with_rule(FaultRule::every(FaultAction::Delay { ticks: u64::MAX }));
    let config = EventConfig::new(
        SimConfig::default().with_seed(7),
        NetModel::new(LatencyModel::constant(500)),
    );
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
    sim.set_faults(plan, ADAPTER);
    sim.seed_nodes(6);
    sim.run(5);
    let stats = sim.net_stats();
    assert!(stats.sent > 0);
    assert_eq!(stats.lost, 0);
    let delivered: usize = sim
        .metrics()
        .rounds()
        .iter()
        .map(|m| m.messages_delivered)
        .sum();
    assert_eq!(delivered, 0, "every message is parked at the end of time");
    assert_eq!(sim.in_flight_count() as u64, stats.sent);
    assert_eq!(sim.fault_stats().delayed, stats.sent);
    assert_eq!(stats.max_delay_ticks, u64::MAX, "the delay saturated");
}

/// Regression: a huge `ticks_per_round` used to panic the engine at the
/// second boundary (`round × ticks_per_round` was a checked multiply). The
/// clock now saturates: boundaries keep firing, sub-round traffic keeps
/// flowing, and the virtual clock pins at `u64::MAX`.
#[test]
fn huge_ticks_per_round_saturates_the_clock_instead_of_panicking() {
    let mut config = EventConfig::new(
        SimConfig::default().with_seed(3),
        NetModel::new(LatencyModel::constant(1)),
    );
    config.ticks_per_round = u64::MAX / 2 + 3;
    let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
    sim.seed_nodes(4);
    sim.run(4);
    assert_eq!(sim.virtual_time(), u64::MAX);
    let delivered: usize = sim
        .metrics()
        .rounds()
        .iter()
        .map(|m| m.messages_delivered)
        .sum();
    assert!(
        delivered > 0,
        "sub-round delays still deliver at boundaries"
    );
}
