//! The fault-injection plan language.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultRule`]s. Every message the
//! engine hands to the network is matched against the rules in order — by
//! round window, sender/receiver selector and message kind — and the first
//! rule that matches *and* whose probability coin fires decides the
//! message's fault: dropped, delayed, duplicated or mutated. Unmatched
//! messages pass through untouched.
//!
//! # Determinism
//!
//! A rule's probability coin is one lane of a private ChaCha8 block keyed on
//! `(master seed, seq / 64, rule index)` — 64 consecutive sequence numbers
//! share one stream, never any shared RNG state — so the decision for a
//! message is a pure function of `(seed, seq)` and the plan itself. The same
//! plan therefore injects the same faults into the same messages on the
//! event engine and on the loopback transport (which assign identical
//! sequence numbers), at any thread cap, on any host; both engines cache the
//! current block in a [`FaultCoins`] so the key schedule runs once per 64
//! messages instead of once per message. Mutation entropy comes from the
//! same domain-separated label, so a mutated payload is byte-identical
//! across engines too.
//!
//! # Fault semantics at the two boundaries
//!
//! * **Drop** — the message never reaches the network (counted as `lost`).
//! * **Delay** — extra ticks on top of the sampled network delay
//!   (`tsa-event`), or the frame is held back for the equivalent number of
//!   whole rounds before it is written (`tsa-net`).
//! * **Duplicate** — a second copy is sent to the same receiver; the copy
//!   consumes the next sequence number and then takes its own independent
//!   network fate.
//! * **Mutate** — the payload is corrupted in place through the protocol's
//!   [`FaultAdapter`] before it is sent. Mutation may touch payload *claims*
//!   (positions, trajectory points) but never the receiver, the message
//!   kind, or the number of messages — those are delivery facts the twin
//!   trace depends on.
//!
//! When the event engine replays a recorded transport trace, Drop and Delay
//! decisions are skipped (the trace already encodes every fate) while
//! Duplicate and Mutate are re-applied, which keeps the sequence-number
//! assignment and the payload bytes of the replay aligned with the
//! recording.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsa_sim::rng::mix;
use tsa_sim::{NodeId, Round};

use crate::model::{unit_f64, RegionAssign};

/// Domain-separation label of the per-message fault streams.
const FAULT_LABEL: u64 = 0x4641_554C_5450_4C4E; // "FAULTPLN"

/// Consecutive sequence numbers served by one cached coin block.
const COIN_BLOCK_LANES: u64 = 64;

/// A cache of per-rule probability-coin blocks.
///
/// Rule `idx`'s coin for message `seq` is lane `seq % 64` of a ChaCha8
/// block keyed on `(seed, seq / 64, rule index)`. Hot loops hand out
/// sequence numbers monotonically, so caching the current block per rule
/// amortizes the RNG key schedule over 64 messages. The coin values are a
/// pure function of `(seed, seq, idx)` — the cache changes *when* blocks
/// are generated, never *what* a coin is, so [`FaultPlan::decide`] (which
/// builds a throwaway cache) and [`FaultPlan::decide_with`] agree exactly.
#[derive(Clone, Debug)]
pub struct FaultCoins {
    seed: u64,
    /// Per-rule `(block index, lanes)`. `u64::MAX` marks an unfilled entry
    /// (unreachable as a real index: `seq / 64 ≤ 2^58`).
    blocks: Vec<(u64, Box<[u64; COIN_BLOCK_LANES as usize]>)>,
}

impl FaultCoins {
    /// An empty cache for runs under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultCoins {
            seed,
            blocks: Vec::new(),
        }
    }

    /// The raw coin word of `(seq, rule idx)`, from the cached block when
    /// it is current, regenerating it otherwise.
    fn word(&mut self, seq: u64, idx: usize) -> u64 {
        let block = seq / COIN_BLOCK_LANES;
        while self.blocks.len() <= idx {
            self.blocks
                .push((u64::MAX, Box::new([0u64; COIN_BLOCK_LANES as usize])));
        }
        let entry = &mut self.blocks[idx];
        if entry.0 != block {
            let mut rng =
                ChaCha8Rng::seed_from_u64(mix(&[self.seed, block, FAULT_LABEL, idx as u64]));
            for w in entry.1.iter_mut() {
                *w = rng.next_u64();
            }
            entry.0 = block;
        }
        entry.1[(seq % COIN_BLOCK_LANES) as usize]
    }
}

/// A half-open round window `[from, until)`. `until = u64::MAX` means
/// "forever"; the default window matches every round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundWindow {
    /// First round the window covers.
    pub from: Round,
    /// First round past the window (exclusive).
    pub until: Round,
}

impl RoundWindow {
    /// The window covering every round.
    pub fn all() -> Self {
        RoundWindow {
            from: 0,
            until: u64::MAX,
        }
    }

    /// The window `[from, ∞)`.
    pub fn starting_at(from: Round) -> Self {
        RoundWindow {
            from,
            until: u64::MAX,
        }
    }

    /// The window `[from, until)`. An empty or inverted window matches
    /// nothing.
    pub fn between(from: Round, until: Round) -> Self {
        RoundWindow { from, until }
    }

    /// `true` if this is the match-everything window (the serde default).
    pub fn is_all(&self) -> bool {
        *self == RoundWindow::all()
    }

    /// `true` if `round` falls inside the window.
    pub fn contains(&self, round: Round) -> bool {
        self.from <= round && round < self.until
    }

    /// A compact label, e.g. `@8..` or `@8..20`; empty for the full window.
    pub fn label(&self) -> String {
        if self.is_all() {
            String::new()
        } else if self.until == u64::MAX {
            format!("@{}..", self.from)
        } else {
            format!("@{}..{}", self.from, self.until)
        }
    }
}

impl Default for RoundWindow {
    fn default() -> Self {
        RoundWindow::all()
    }
}

/// Selects the senders or receivers a rule applies to. Every variant is a
/// pure function of the node id, so selection is identical on every host
/// and at every thread configuration.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum NodeSelector {
    /// Matches every node.
    #[default]
    Any,
    /// Matches exactly one node id.
    Id {
        /// The raw node id to match.
        id: u64,
    },
    /// Matches every node a [`RegionAssign`] places in `region`.
    Region {
        /// The region assignment to evaluate.
        assign: RegionAssign,
        /// The region whose members match.
        region: u32,
    },
}

impl NodeSelector {
    /// `true` if this is the match-everything selector (the serde default).
    pub fn is_any(&self) -> bool {
        matches!(self, NodeSelector::Any)
    }

    /// `true` if the selector matches `node`.
    pub fn matches(&self, node: NodeId) -> bool {
        match self {
            NodeSelector::Any => true,
            NodeSelector::Id { id } => node.raw() == *id,
            NodeSelector::Region { assign, region } => assign.region_of(node) == *region,
        }
    }

    /// A compact label, e.g. `*`, `#5`, `r1`.
    pub fn label(&self) -> String {
        match self {
            NodeSelector::Any => "*".to_string(),
            NodeSelector::Id { id } => format!("#{id}"),
            NodeSelector::Region { region, .. } => format!("r{region}"),
        }
    }
}

/// What happens to a message matched by a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The message never reaches the network.
    Drop,
    /// The message is held back.
    Delay {
        /// Extra delay in virtual ticks
        /// ([`TICKS_PER_ROUND`](crate::TICKS_PER_ROUND) ticks per round).
        /// The transport rounds the hold-back up to whole rounds.
        ticks: u64,
    },
    /// A second copy is sent to the same receiver (it consumes the next
    /// sequence number and takes its own network fate).
    Duplicate,
    /// The payload is corrupted in place through the protocol's
    /// [`FaultAdapter`] before sending.
    Mutate,
}

impl FaultAction {
    /// A one-letter label: `d`rop, de`l`ay, d`u`plicate, `m`utate.
    pub fn letter(&self) -> char {
        match self {
            FaultAction::Drop => 'd',
            FaultAction::Delay { .. } => 'l',
            FaultAction::Duplicate => 'u',
            FaultAction::Mutate => 'm',
        }
    }
}

/// One ordered rule of a [`FaultPlan`]: a match (window, sender, receiver,
/// kinds) and the action taken when the match fires.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Rounds the rule is active in (default: every round).
    #[serde(default, skip_serializing_if = "RoundWindow::is_all")]
    pub window: RoundWindow,
    /// Senders the rule applies to (default: every sender).
    #[serde(default, skip_serializing_if = "NodeSelector::is_any")]
    pub from: NodeSelector,
    /// Receivers the rule applies to (default: every receiver).
    #[serde(default, skip_serializing_if = "NodeSelector::is_any")]
    pub to: NodeSelector,
    /// Message-kind tags the rule applies to (the protocol's
    /// [`FaultAdapter::kind_of`] tags); empty means every kind.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub kinds: Vec<u8>,
    /// Probability the rule fires when it matches; `None` means always
    /// (probability 1). The coin is a pure function of
    /// `(seed, seq, rule index)`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub prob: Option<f64>,
    /// The action taken when the rule fires.
    pub action: FaultAction,
}

impl FaultRule {
    /// An unconditional rule: every message, every round, probability 1.
    pub fn every(action: FaultAction) -> Self {
        FaultRule {
            window: RoundWindow::all(),
            from: NodeSelector::Any,
            to: NodeSelector::Any,
            kinds: Vec::new(),
            prob: None,
            action,
        }
    }

    /// The effective firing probability (`None` means 1).
    pub fn fire_prob(&self) -> f64 {
        self.prob.unwrap_or(1.0)
    }

    /// Restricts the rule to a round window.
    pub fn in_window(mut self, window: RoundWindow) -> Self {
        self.window = window;
        self
    }

    /// Restricts the rule to matching senders.
    pub fn from(mut self, from: NodeSelector) -> Self {
        self.from = from;
        self
    }

    /// Restricts the rule to matching receivers.
    pub fn to(mut self, to: NodeSelector) -> Self {
        self.to = to;
        self
    }

    /// Restricts the rule to the given message-kind tags.
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = u8>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Sets the firing probability.
    pub fn with_prob(mut self, prob: f64) -> Self {
        self.prob = Some(prob);
        self
    }

    /// `true` if the rule's static match (window, selectors, kinds) covers
    /// the message — the probability coin is separate.
    fn matches(&self, round: Round, from: NodeId, to: NodeId, kind: u8) -> bool {
        self.window.contains(round)
            && self.from.matches(from)
            && self.to.matches(to)
            && (self.kinds.is_empty() || self.kinds.contains(&kind))
    }
}

/// The decision a [`FaultPlan`] makes for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// No rule fired: the message is untouched.
    Pass,
    /// The message never reaches the network.
    Drop,
    /// The message is held back by the given number of extra ticks.
    Delay(u64),
    /// A second copy is sent (consuming the next sequence number).
    Duplicate,
    /// The payload is corrupted in place before sending.
    Mutate,
}

/// A serde-round-trippable fault-injection plan: ordered rules applied at
/// the delivery boundary of the event engine and the frame boundary of the
/// loopback transport. The default plan is empty and injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The rules, in priority order (first match that fires wins).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends a rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// `true` if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fault for message `seq` sent in `round` from `from` to
    /// `to` with kind tag `kind`, under master seed `seed`.
    ///
    /// A pure function: the rules are scanned in order, each matching rule
    /// flips its private coin (one lane of the `(seed, seq / 64, rule
    /// index)` block — no shared stream), and the first rule whose coin
    /// fires decides. Hostile plans (empty, overlapping windows, all-match
    /// selectors) degrade to ordinary rule priority and can never panic.
    ///
    /// This one-shot form builds a throwaway coin cache; hot loops keep a
    /// [`FaultCoins`] across messages and call
    /// [`decide_with`](Self::decide_with) instead, for the identical result.
    pub fn decide(
        &self,
        seed: u64,
        seq: u64,
        round: Round,
        from: NodeId,
        to: NodeId,
        kind: u8,
    ) -> FaultDecision {
        self.decide_with(&mut FaultCoins::new(seed), seq, round, from, to, kind)
    }

    /// [`decide`](Self::decide) with an explicit coin cache (seeded with the
    /// same master seed) — the hot-loop form both engines use.
    // The negated comparisons are deliberate: they send NaN probabilities
    // into the never-fires arm instead of the always-fires one.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn decide_with(
        &self,
        coins: &mut FaultCoins,
        seq: u64,
        round: Round,
        from: NodeId,
        to: NodeId,
        kind: u8,
    ) -> FaultDecision {
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(round, from, to, kind) {
                continue;
            }
            let prob = rule.fire_prob();
            // Written so NaN falls into the never-fires arm.
            if !(prob >= 1.0) {
                if !(prob > 0.0) {
                    continue;
                }
                if unit_f64(coins.word(seq, idx)) >= prob {
                    continue;
                }
            }
            return match rule.action {
                FaultAction::Drop => FaultDecision::Drop,
                FaultAction::Delay { ticks } => FaultDecision::Delay(ticks),
                FaultAction::Duplicate => FaultDecision::Duplicate,
                FaultAction::Mutate => FaultDecision::Mutate,
            };
        }
        FaultDecision::Pass
    }

    /// The entropy word a [`FaultAdapter::mutate`] receives for message
    /// `seq`: a pure function of `(seed, seq)`, shared by both engines so a
    /// mutated payload is byte-identical across them.
    pub fn mutation_entropy(seed: u64, seq: u64) -> u64 {
        mix(&[seed, seq, FAULT_LABEL])
    }

    /// A compact label for tables and sweep axes, e.g. `f0` (empty) or
    /// `fd*l*` (one drop rule, one delay rule).
    pub fn label(&self) -> String {
        if self.rules.is_empty() {
            return "f0".to_string();
        }
        let mut label = "f".to_string();
        for rule in &self.rules {
            label.push(rule.action.letter());
            label.push_str(&rule.to.label());
        }
        label
    }
}

/// The engine-side bridge between the generic fault machinery and a concrete
/// protocol message type: plain function pointers, so the engines need no
/// extra trait bounds and the adapter is trivially `Copy`.
pub struct FaultAdapter<M> {
    /// Maps a message to the kind tag [`FaultRule::kinds`] matches against.
    pub kind_of: fn(&M) -> u8,
    /// Corrupts a payload in place using the given entropy word; returns
    /// `true` if anything changed. Must only touch payload claims — never
    /// anything that decides where or whether the message is delivered.
    pub mutate: fn(&mut M, u64) -> bool,
}

impl<M> Clone for FaultAdapter<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for FaultAdapter<M> {}

impl<M> std::fmt::Debug for FaultAdapter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultAdapter").finish_non_exhaustive()
    }
}

/// Whole-run counters of injected faults. Deliberately separate from
/// [`NetStats`](crate::NetStats) so existing serialized artifacts are
/// untouched by the fault layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped by a fault rule.
    pub dropped: u64,
    /// Messages delayed by a fault rule.
    pub delayed: u64,
    /// Messages duplicated by a fault rule.
    pub duplicated: u64,
    /// Messages whose payload a fault rule mutated.
    pub mutated: u64,
}

impl FaultStats {
    /// Total number of injected faults.
    pub fn total(&self) -> u64 {
        self.dropped + self.delayed + self.duplicated + self.mutated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_all() -> FaultPlan {
        FaultPlan::new().with_rule(FaultRule::every(FaultAction::Drop))
    }

    #[test]
    fn the_empty_plan_passes_everything() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for seq in 0..64 {
            assert_eq!(
                plan.decide(7, seq, 3, NodeId(1), NodeId(2), 0),
                FaultDecision::Pass
            );
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new()
            .with_rule(FaultRule::every(FaultAction::Drop).kinds([2]))
            .with_rule(FaultRule::every(FaultAction::Mutate));
        assert_eq!(
            plan.decide(1, 0, 0, NodeId(0), NodeId(1), 2),
            FaultDecision::Drop,
            "kind 2 hits the drop rule first"
        );
        assert_eq!(
            plan.decide(1, 0, 0, NodeId(0), NodeId(1), 3),
            FaultDecision::Mutate,
            "other kinds fall through to the catch-all"
        );
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_seq() {
        let plan = FaultPlan::new()
            .with_rule(FaultRule::every(FaultAction::Drop).with_prob(0.5))
            .with_rule(FaultRule::every(FaultAction::Delay { ticks: 700 }).with_prob(0.5));
        let first: Vec<FaultDecision> = (0..256)
            .map(|seq| plan.decide(42, seq, 5, NodeId(3), NodeId(4), 1))
            .collect();
        let second: Vec<FaultDecision> = (0..256)
            .map(|seq| plan.decide(42, seq, 5, NodeId(3), NodeId(4), 1))
            .collect();
        assert_eq!(first, second, "same inputs, same decisions");
        assert!(
            first.contains(&FaultDecision::Drop)
                && first.contains(&FaultDecision::Delay(700))
                && first.contains(&FaultDecision::Pass),
            "a 0.5/0.5 two-rule plan exercises all three outcomes: {first:?}"
        );
        let other_seed: Vec<FaultDecision> = (0..256)
            .map(|seq| plan.decide(43, seq, 5, NodeId(3), NodeId(4), 1))
            .collect();
        assert_ne!(first, other_seed, "the seed matters");
    }

    #[test]
    fn selectors_and_windows_restrict_the_match() {
        let plan = FaultPlan::new().with_rule(
            FaultRule::every(FaultAction::Drop)
                .in_window(RoundWindow::between(10, 20))
                .from(NodeSelector::Id { id: 5 })
                .to(NodeSelector::Region {
                    assign: RegionAssign::halves(8),
                    region: 0,
                }),
        );
        let hit = plan.decide(1, 0, 15, NodeId(5), NodeId(3), 0);
        assert_eq!(hit, FaultDecision::Drop);
        assert_eq!(
            plan.decide(1, 0, 9, NodeId(5), NodeId(3), 0),
            FaultDecision::Pass,
            "before the window"
        );
        assert_eq!(
            plan.decide(1, 0, 20, NodeId(5), NodeId(3), 0),
            FaultDecision::Pass,
            "the window end is exclusive"
        );
        assert_eq!(
            plan.decide(1, 0, 15, NodeId(6), NodeId(3), 0),
            FaultDecision::Pass,
            "wrong sender"
        );
        assert_eq!(
            plan.decide(1, 0, 15, NodeId(5), NodeId(9), 0),
            FaultDecision::Pass,
            "receiver in the wrong region"
        );
    }

    #[test]
    fn degenerate_probabilities_never_panic() {
        for prob in [0.0, -1.0, 2.0, f64::NAN] {
            let plan =
                FaultPlan::new().with_rule(FaultRule::every(FaultAction::Drop).with_prob(prob));
            // NaN and non-positive probabilities never fire; ≥ 1 always does.
            let d = plan.decide(1, 0, 0, NodeId(0), NodeId(1), 0);
            if prob >= 1.0 {
                assert_eq!(d, FaultDecision::Drop);
            } else {
                assert_eq!(d, FaultDecision::Pass);
            }
        }
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan::new()
            .with_rule(
                FaultRule::every(FaultAction::Delay { ticks: 1500 })
                    .in_window(RoundWindow::starting_at(4))
                    .kinds([2, 3])
                    .with_prob(0.25),
            )
            .with_rule(FaultRule::every(FaultAction::Mutate).to(NodeSelector::Id { id: 7 }));
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(plan, back);
        let json2 = serde_json::to_string(&back).expect("plan re-serializes");
        assert_eq!(json, json2, "serialization is byte-stable");
    }

    #[test]
    fn default_fields_are_skipped_in_json() {
        let plan = drop_all();
        let json = serde_json::to_string(&plan).expect("plan serializes");
        assert_eq!(
            json, r#"{"rules":[{"action":"Drop"}]}"#,
            "every defaulted field stays off the wire"
        );
        let empty = serde_json::to_string(&FaultPlan::default()).expect("serializes");
        assert_eq!(empty, "{}", "the empty plan is an empty object");
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(FaultPlan::default().label(), "f0");
        assert_eq!(drop_all().label(), "fd*");
        let plan = FaultPlan::new()
            .with_rule(FaultRule::every(FaultAction::Delay { ticks: 5 }))
            .with_rule(FaultRule::every(FaultAction::Mutate).to(NodeSelector::Id { id: 3 }));
        assert_eq!(plan.label(), "fl*m#3");
        assert_eq!(RoundWindow::all().label(), "");
        assert_eq!(RoundWindow::starting_at(8).label(), "@8..");
        assert_eq!(RoundWindow::between(8, 20).label(), "@8..20");
    }

    #[test]
    fn mutation_entropy_is_stable_and_seq_sensitive() {
        assert_eq!(
            FaultPlan::mutation_entropy(9, 100),
            FaultPlan::mutation_entropy(9, 100)
        );
        assert_ne!(
            FaultPlan::mutation_entropy(9, 100),
            FaultPlan::mutation_entropy(9, 101)
        );
    }
}
