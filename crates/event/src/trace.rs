//! Per-message fate traces: record a run on one engine, replay it on a twin.
//!
//! A [`MessageTrace`] pins down the one degree of freedom that separates the
//! deterministic engines from a real transport: *what happened to each
//! message*. Indexed by the global send sequence number — which both the
//! [`EventSimulator`](crate::EventSimulator) and the `tsa-net` loopback
//! runner assign identically (in activation id order within each round) — a
//! trace says for every message whether it was lost or delivered, and if
//! delivered, at which round boundary its receiver read it.
//!
//! Recorded on the real transport and replayed as a fixed-fate schedule in
//! the event engine, the trace turns wall-clock nondeterminism into data: if
//! the replay reproduces the recorded run's protocol state, the transport
//! run was *some* valid execution of the deterministic model.

use serde::{Deserialize, Serialize};
use tsa_sim::Round;

/// What ultimately happened to one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageFate {
    /// The message reached its receiver's inbox in time for the activation
    /// at round `at_round` (or was dropped there because the receiver had
    /// departed — the engines distinguish those at delivery, not in the
    /// trace).
    Delivered {
        /// The round boundary at which the message was read.
        at_round: Round,
    },
    /// The message never reached an inbox: dropped by the loss model, failed
    /// at the socket, or still in flight when the run ended.
    Lost,
}

/// A per-message fate schedule, indexed by global send sequence number.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTrace {
    fates: Vec<MessageFate>,
}

impl MessageTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the fate of message `seq`, overwriting any earlier record.
    ///
    /// Gaps are filled with [`MessageFate::Lost`], so a recorder may register
    /// deliveries out of order (as a real transport observes them) and leave
    /// in-flight messages implicitly lost.
    pub fn record(&mut self, seq: u64, fate: MessageFate) {
        let idx = seq as usize;
        if idx >= self.fates.len() {
            self.fates.resize(idx + 1, MessageFate::Lost);
        }
        self.fates[idx] = fate;
    }

    /// The fate of message `seq`, if the trace extends that far.
    pub fn fate(&self, seq: u64) -> Option<MessageFate> {
        self.fates.get(seq as usize).copied()
    }

    /// Number of messages the trace covers.
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// Whether the trace covers no messages.
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    /// Number of recorded deliveries.
    pub fn delivered_count(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, MessageFate::Delivered { .. }))
            .count()
    }

    /// Number of recorded losses.
    pub fn lost_count(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, MessageFate::Lost))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_fill_as_lost_and_records_overwrite() {
        let mut trace = MessageTrace::new();
        trace.record(2, MessageFate::Delivered { at_round: 5 });
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.fate(0), Some(MessageFate::Lost));
        assert_eq!(trace.fate(1), Some(MessageFate::Lost));
        assert_eq!(trace.fate(2), Some(MessageFate::Delivered { at_round: 5 }));
        assert_eq!(trace.fate(3), None);
        trace.record(0, MessageFate::Delivered { at_round: 1 });
        assert_eq!(trace.fate(0), Some(MessageFate::Delivered { at_round: 1 }));
        assert_eq!(trace.delivered_count(), 2);
        assert_eq!(trace.lost_count(), 1);
    }

    #[test]
    fn traces_round_trip_through_serde() {
        let mut trace = MessageTrace::new();
        trace.record(0, MessageFate::Delivered { at_round: 3 });
        trace.record(1, MessageFate::Lost);
        let json = serde_json::to_string(&trace).unwrap();
        let back: MessageTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
