//! The deterministic virtual-time discrete-event engine.
//!
//! # Model
//!
//! Virtual time is measured in integer *ticks*;
//! [`TICKS_PER_ROUND`] ticks make one protocol round.
//! Nodes keep the synchronous cadence of the paper's model — every node
//! activates once per round boundary of the virtual clock, with the same
//! per-`(seed, node, round)` RNG streams as the lockstep engine — but the
//! *network* between them is asynchronous: each message individually samples
//! a latency (plus jitter) from the [`NetModel`] and may be lost. A message
//! whose arrival tick has passed is handed to its receiver at the next round
//! boundary ("round-boundary delivery"), so a delay of at most one round
//! reproduces the synchronous model's one-round message delay exactly, while
//! longer or spread-out delays let messages straddle epochs — the asynchrony
//! the two-steps-ahead maintenance protocol was never proved against.
//!
//! # Event queue and determinism
//!
//! Pending deliveries live in a [`CalendarQueue`](crate::queue) — a timing
//! wheel with one bucket per round window — whose pop order is exactly the
//! old binary heap's total order `(arrival tick, sequence number,
//! receiver)`. The sequence number is the
//! message's global send index, which makes the order total and *stable*.
//! Each boundary's deliverable batch is additionally re-sorted into send
//! order before it reaches the inboxes (residual jitter within one boundary
//! has no semantic meaning), so every inbox is filled exactly like the
//! lockstep engine's in-flight buffer would fill it. Message fates are pure functions of
//! `(master seed, sequence number)` and the engine itself is strictly
//! sequential, so identical seeds give byte-identical traces at any
//! thread/host configuration — including under `TSA_THREADS` caps and inside
//! parallel sweep workers. See the "Execution models" chapter of DESIGN.md
//! for the full argument.
//!
//! Churn happens at round boundaries through the *same* arbiter as the
//! lockstep engine ([`tsa_sim::apply_churn_plan`]), against the same
//! lateness-filtered [`KnowledgeView`] — the budget, bootstrap-age and
//! fan-in rules cannot drift between the two scheduler policies.

use std::collections::BTreeMap;

use tsa_obs::ObsHandle;
use tsa_sim::knowledge::{KnowledgeView, MemberInfo, RoundRecord};
use tsa_sim::{
    apply_churn_plan, record_round_obs, run_activation, Adversary, ChurnBudget, ChurnOutcome,
    CommGraph, Envelope, MetricsHistory, MetricsMode, MetricsSummary, NodeFactory, NodeId,
    PlanScratch, ProtocolStep, Round, RoundMetrics, RoundMetricsBuilder, SimConfig,
    StreamingMetrics,
};

use crate::fault::{FaultAdapter, FaultCoins, FaultDecision, FaultPlan, FaultStats};
use crate::model::{FateBlock, NetModel, Topology};
use crate::queue::{CalendarQueue, Pending};
use crate::trace::{MessageFate, MessageTrace};
use crate::TICKS_PER_ROUND;

/// Configuration of an event-driven run: the shared simulation knobs (seed,
/// lateness, churn rules, history window — `parallel` is ignored, the event
/// loop is strictly sequential) plus the network topology and clock
/// resolution.
#[derive(Clone, Debug)]
pub struct EventConfig {
    /// The shared simulation configuration. Seeds and hash seeds are derived
    /// exactly as in the lockstep engine, so a zero-delay event run and a
    /// round run of the same seed are bit-identical.
    pub sim: SimConfig,
    /// The link topology: which per-message latency/jitter/loss model each
    /// directed `(sender, receiver)` link runs at each round. A scalar
    /// [`NetModel`] is the [`Topology::Global`] special case.
    pub topology: Topology,
    /// Virtual ticks per protocol round (defaults to
    /// [`TICKS_PER_ROUND`]).
    pub ticks_per_round: u64,
}

impl EventConfig {
    /// An event configuration over `sim` with the link-uniform network model
    /// `net` at the default clock resolution.
    pub fn new(sim: SimConfig, net: NetModel) -> Self {
        EventConfig::with_topology(sim, Topology::Global(net))
    }

    /// An event configuration over `sim` with an explicit link topology at
    /// the default clock resolution.
    pub fn with_topology(sim: SimConfig, topology: Topology) -> Self {
        EventConfig {
            sim,
            topology,
            ticks_per_round: TICKS_PER_ROUND,
        }
    }
}

/// Whole-run counters of the network model's effects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
    /// Messages dropped because the receiver departed before delivery.
    pub dropped_departed: u64,
    /// Largest sampled per-message delay, in ticks.
    pub max_delay_ticks: u64,
    /// Sum of all sampled delays, in ticks (mean = `/ (sent - lost)`).
    pub total_delay_ticks: u64,
    /// Messages handed to the network whose link crossed a region boundary
    /// of a [`Topology::Regions`] (0 for other topologies).
    pub bridge_sent: u64,
    /// Cross-region messages dropped by the loss model.
    pub bridge_lost: u64,
}

/// A node in the event engine: protocol state plus its accumulated inbox and
/// reusable outbox buffer.
struct EvSlot<P: ProtocolStep> {
    id: NodeId,
    joined_at: Round,
    process: P,
    /// Messages delivered since the node's last activation, in
    /// `(arrival, seq)` order.
    inbox: Vec<Envelope<P::Msg>>,
    /// Reusable outbox buffer, drained into the event queue each activation.
    out: Vec<(NodeId, P::Msg)>,
    /// This round's sponsorships: a range of the engine's `sponsored_ids`.
    sponsored_start: usize,
    sponsored_len: usize,
}

/// The virtual-time event simulator: the second scheduler policy over the
/// same transport-agnostic [`ProtocolStep`] node logic as the round engine.
pub struct EventSimulator<P: ProtocolStep, A: Adversary> {
    config: EventConfig,
    adversary: A,
    factory: NodeFactory<P>,
    /// Node slots, sorted by identifier.
    slots: Vec<EvSlot<P>>,
    members: BTreeMap<NodeId, MemberInfo>,
    /// The event queue: pending deliveries, earliest `(arrival, seq)` first.
    queue: CalendarQueue<P::Msg>,
    /// Global send sequence number: the identity of a message for the
    /// network model's per-message streams.
    seq: u64,
    /// The cached network fate block for the current 64-message window of
    /// `seq` (sequence numbers are monotone, so one generation serves the
    /// whole window).
    fate_block: Option<FateBlock>,
    /// The cached per-rule fault-coin blocks (same amortization).
    fault_coins: FaultCoins,
    /// High-water mark of the event queue depth, sampled once per boundary.
    peak_queue_depth: u64,
    /// Scratch: the current boundary's deliverable batch, re-sorted into
    /// global send order before it reaches the inboxes.
    deliverable: Vec<Pending<P::Msg>>,
    /// Scratch: `(bootstrap, joiner)` pairs of the current round.
    sponsored_pairs: Vec<(NodeId, NodeId)>,
    /// Scratch: joiner ids grouped contiguously per bootstrap node.
    sponsored_ids: Vec<NodeId>,
    /// Scratch for per-node distinct-receiver computation.
    dedup_scratch: Vec<NodeId>,
    /// Scratch for churn-plan validation.
    plan_scratch: PlanScratch,
    /// Buffers donated by departed nodes, reused by joining nodes.
    spare_outboxes: Vec<Vec<(NodeId, P::Msg)>>,
    spare_inboxes: Vec<Vec<Envelope<P::Msg>>>,
    /// Round records trimmed out of the history window, recycled.
    spare_records: Vec<RoundRecord>,
    records: Vec<RoundRecord>,
    metrics: MetricsHistory,
    /// When set, finished rounds fold into O(1) accumulators instead of
    /// growing the history ([`MetricsMode::Streaming`]).
    streaming: Option<StreamingMetrics>,
    /// Observability sink; off by default (one branch per probe).
    obs: ObsHandle,
    budget: ChurnBudget,
    round: Round,
    next_id: u64,
    last_outcome: ChurnOutcome,
    stats: NetStats,
    /// When `Some`, every routed message's fate is recorded here (this
    /// engine acting as the recording twin).
    trace: Option<MessageTrace>,
    /// When `Some`, message fates are read from this schedule instead of
    /// being sampled from the network model (this engine acting as the
    /// replaying twin of a recorded run).
    replay: Option<MessageTrace>,
    /// When `Some`, every outgoing message is matched against the fault
    /// plan at the delivery boundary (decisions are pure functions of
    /// `(seed, seq)`, identical on the loopback transport).
    faults: Option<(FaultPlan, FaultAdapter<P::Msg>)>,
    /// Whole-run counters of injected faults (separate from [`NetStats`]).
    fault_stats: FaultStats,
}

impl<P: ProtocolStep, A: Adversary> EventSimulator<P, A> {
    /// Creates an empty event simulator. Populate the initial node set `V_0`
    /// with [`EventSimulator::seed_nodes`] before stepping.
    pub fn new(config: EventConfig, adversary: A, factory: NodeFactory<P>) -> Self {
        assert!(config.ticks_per_round > 0, "ticks_per_round must be > 0");
        let queue = CalendarQueue::new(config.ticks_per_round);
        let fault_coins = FaultCoins::new(config.sim.seed);
        EventSimulator {
            config,
            adversary,
            factory,
            slots: Vec::new(),
            members: BTreeMap::new(),
            queue,
            seq: 0,
            fate_block: None,
            fault_coins,
            peak_queue_depth: 0,
            deliverable: Vec::new(),
            sponsored_pairs: Vec::new(),
            sponsored_ids: Vec::new(),
            dedup_scratch: Vec::new(),
            plan_scratch: PlanScratch::default(),
            spare_outboxes: Vec::new(),
            spare_inboxes: Vec::new(),
            spare_records: Vec::new(),
            records: Vec::new(),
            metrics: MetricsHistory::new(),
            streaming: None,
            obs: ObsHandle::off(),
            budget: ChurnBudget::new(),
            round: 0,
            next_id: 0,
            last_outcome: ChurnOutcome::default(),
            stats: NetStats::default(),
            trace: None,
            replay: None,
            faults: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// Creates `count` initial nodes (the churn-free initial set `V_0`).
    /// Returns their identifiers.
    pub fn seed_nodes(&mut self, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        self.slots.reserve(count);
        for _ in 0..count {
            let id = NodeId(self.next_id);
            self.next_id += 1;
            self.members.insert(
                id,
                MemberInfo {
                    joined_at: self.round,
                },
            );
            self.spawn_slot(id, self.round);
            ids.push(id);
        }
        ids
    }

    /// Materializes the engine-side slot for a node that is already a member.
    fn spawn_slot(&mut self, id: NodeId, round: Round) {
        let process = (self.factory)(id, round);
        let out = self.spare_outboxes.pop().unwrap_or_default();
        let inbox = self.spare_inboxes.pop().unwrap_or_default();
        self.slots.push(EvSlot {
            id,
            joined_at: round,
            process,
            inbox,
            out,
            sponsored_start: 0,
            sponsored_len: 0,
        });
    }

    /// The current round (the next round boundary to be executed).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current virtual time in ticks (the tick of the next boundary).
    /// Saturates at `u64::MAX`: a hostile `ticks_per_round` can pin the
    /// clock at the end of time but can never wrap it back to the past.
    pub fn virtual_time(&self) -> u64 {
        self.round.saturating_mul(self.config.ticks_per_round)
    }

    /// The configuration.
    pub fn config(&self) -> &EventConfig {
        &self.config
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Identifiers of all current members, in ascending order.
    pub fn member_ids(&self) -> Vec<NodeId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// The round a current member joined, if it exists.
    pub fn joined_at(&self, id: NodeId) -> Option<Round> {
        self.members.get(&id).map(|m| m.joined_at)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slot_index(id).map(|i| &self.slots[i].process)
    }

    /// Iterates over `(id, protocol state)` pairs of all current members.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.slots.iter().map(|s| (s.id, &s.process))
    }

    /// Metrics collected so far (one row per round boundary). Empty under
    /// [`MetricsMode::Streaming`] — use
    /// [`metrics_summary`](Self::metrics_summary) /
    /// [`last_metrics`](Self::last_metrics) for mode-independent access.
    pub fn metrics(&self) -> &MetricsHistory {
        &self.metrics
    }

    /// Attaches an observability sink (or detaches it with
    /// [`ObsHandle::off`]); recording starts with the next boundary.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Selects how finished rounds are retained. Call before running.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.streaming = match mode {
            MetricsMode::Full => None,
            MetricsMode::Streaming => Some(StreamingMetrics::new()),
        };
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        match &self.streaming {
            Some(s) => s.summary(),
            None => self.metrics.summary(),
        }
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        match &self.streaming {
            Some(s) => s.last(),
            None => self.metrics.last(),
        }
    }

    /// The streaming accumulators, when running under
    /// [`MetricsMode::Streaming`].
    pub fn streaming_metrics(&self) -> Option<&StreamingMetrics> {
        self.streaming.as_ref()
    }

    /// Archived round records (communication graphs and digests).
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The churn outcome of the most recently executed round.
    pub fn last_churn_outcome(&self) -> &ChurnOutcome {
        &self.last_outcome
    }

    /// Number of messages currently in flight (queued, not yet delivered).
    pub fn in_flight_count(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the event queue depth over the whole run, sampled
    /// at each round boundary after dispatch (when the queue is fullest).
    pub fn peak_queue_depth(&self) -> u64 {
        self.peak_queue_depth
    }

    /// Whole-run counters of the network model's effects.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// The adversary, for post-run inspection.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Starts recording a per-message fate trace. Call before the first
    /// [`step`](EventSimulator::step); retrieve the result with
    /// [`take_trace`](EventSimulator::take_trace).
    pub fn record_trace(&mut self) {
        self.trace = Some(MessageTrace::new());
    }

    /// Takes the recorded fate trace, ending recording.
    pub fn take_trace(&mut self) -> Option<MessageTrace> {
        self.trace.take()
    }

    /// Replays `trace` as a fixed fate schedule: from now on, message fates
    /// come from the trace (by send sequence number) instead of the network
    /// model. Panics during [`step`](EventSimulator::step) if a message is
    /// sent beyond the end of the trace — under a faithful twin the replayed
    /// run sends exactly the recorded messages, so running out of trace
    /// means the executions diverged.
    pub fn set_replay(&mut self, trace: MessageTrace) {
        self.replay = Some(trace);
    }

    /// Installs a fault-injection plan and the protocol's message adapter.
    /// Call before the first [`step`](EventSimulator::step). Decisions are
    /// pure functions of `(seed, seq)`; the same plan injects the same
    /// faults on the loopback transport. When combined with
    /// [`set_replay`](EventSimulator::set_replay), Drop and Delay decisions
    /// defer to the trace (which already encodes every fate) while
    /// Duplicate and Mutate are re-applied to keep sequence numbers and
    /// payload bytes aligned with the recording.
    pub fn set_faults(&mut self, plan: FaultPlan, adapter: FaultAdapter<P::Msg>) {
        self.faults = Some((plan, adapter));
    }

    /// Whole-run counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    fn slot_index(&self, id: NodeId) -> Option<usize> {
        self.slots.binary_search_by_key(&id, |s| s.id).ok()
    }

    /// Executes `rounds` round boundaries.
    pub fn run(&mut self, rounds: u64) {
        if self.streaming.is_none() {
            self.metrics.reserve(rounds as usize);
        }
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes a single round boundary: churn, deliver everything that has
    /// arrived by now, activate every node, route the sent messages through
    /// the network model.
    pub fn step(&mut self) {
        let t = self.round;
        // This boundary's tick: messages that have arrived by `now` are
        // delivered here; this round's own sends are stamped `now` plus their
        // sampled delay and are examined from the next boundary on. The
        // product saturates: a hostile `ticks_per_round` pins the clock at
        // the end of time instead of wrapping it (which would reorder the
        // queue).
        let now = t.saturating_mul(self.config.ticks_per_round);
        let mut mb = RoundMetricsBuilder::new(t);
        let obs_on = self.obs.is_on();
        let stats_before = self.stats;
        let fault_stats_before = self.fault_stats;

        // Phase 1: adversarial churn at the boundary, through the shared
        // arbiter (suppressed during the bootstrap phase).
        let span = self.obs.span_start();
        let mut outcome = std::mem::take(&mut self.last_outcome);
        outcome.departed.clear();
        outcome.joined.clear();
        outcome.rejected_departures.clear();
        outcome.rejected_joins.clear();
        if t >= self.config.sim.churn_rules.bootstrap_rounds {
            let remaining = self.budget.remaining(t, &self.config.sim.churn_rules);
            let plan = {
                let view = KnowledgeView::new(
                    t,
                    self.config.sim.lateness,
                    &self.records,
                    &self.members,
                    remaining,
                    self.config.sim.churn_rules.min_bootstrap_age,
                );
                self.adversary.plan(t, &view)
            };
            let rules = self.config.sim.churn_rules;
            apply_churn_plan(
                t,
                plan,
                &rules,
                &mut self.budget,
                &mut self.members,
                &mut self.next_id,
                &mut self.plan_scratch,
                &mut outcome,
            );
            for &id in outcome.departed.iter() {
                let idx = self.slot_index(id).expect("departed node has a slot");
                let slot = self.slots.remove(idx);
                let mut out = slot.out;
                out.clear();
                self.spare_outboxes.push(out);
                let mut inbox = slot.inbox;
                inbox.clear();
                self.spare_inboxes.push(inbox);
            }
            for &(id, _bootstrap) in outcome.joined.iter() {
                self.spawn_slot(id, t);
            }
        }
        mb.record_churn(outcome.departed.len(), outcome.joined.len());
        self.obs.span_end("event.churn", span);

        // Phase 2: hand every message that has arrived by this boundary's
        // tick to its receiver. A delay of `d ∈ [0, ticks_per_round]` for a
        // message sent at boundary `t - 1` lands at `(t-1)·T + d ≤ t·T` and
        // is therefore read here, which is the synchronous model's one-round
        // delay; `d > ticks_per_round` straddles further boundaries.
        //
        // The batch is re-sorted into global *send* order before it reaches
        // the inboxes: within one boundary the residual arrival jitter has
        // no semantic meaning (every message of the batch is read by the
        // same activation), and send order is exactly the lockstep engine's
        // delivery order — this is what makes any sub-round network model,
        // jitter included, bit-identical to the round engine instead of
        // only the constant-delay ones.
        let span = self.obs.span_start();
        let mut dropped = 0usize;
        self.deliverable.clear();
        // The wheel moves whole due buckets with a bulk append (unordered);
        // the by-seq sort below is the only order the inboxes ever see.
        self.queue.drain_at_or_before(now, &mut self.deliverable);
        self.deliverable.sort_unstable_by_key(|p| p.seq);
        for pending in self.deliverable.drain(..) {
            match self.slots.binary_search_by_key(&pending.env.to, |s| s.id) {
                Ok(idx) => self.slots[idx].inbox.push(pending.env),
                Err(_) => {
                    dropped += 1;
                    self.stats.dropped_departed += 1;
                }
            }
        }
        self.obs.span_end("event.pop", span);

        // Sponsored joiners, grouped contiguously by bootstrap node exactly
        // as in the lockstep engine.
        self.sponsored_pairs.clear();
        self.sponsored_pairs.extend(
            outcome
                .joined
                .iter()
                .map(|&(joiner, bootstrap)| (bootstrap, joiner)),
        );
        self.sponsored_pairs
            .sort_by_key(|&(bootstrap, _)| bootstrap);
        self.sponsored_ids.clear();
        self.sponsored_ids
            .extend(self.sponsored_pairs.iter().map(|&(_, joiner)| joiner));
        for slot in self.slots.iter_mut() {
            slot.sponsored_start = 0;
            slot.sponsored_len = 0;
        }
        {
            let mut s = 0usize;
            let mut k = 0usize;
            while k < self.sponsored_pairs.len() {
                let bootstrap = self.sponsored_pairs[k].0;
                let run_start = k;
                while k < self.sponsored_pairs.len() && self.sponsored_pairs[k].0 == bootstrap {
                    k += 1;
                }
                while s < self.slots.len() && self.slots[s].id < bootstrap {
                    s += 1;
                }
                if s < self.slots.len() && self.slots[s].id == bootstrap {
                    self.slots[s].sponsored_start = run_start;
                    self.slots[s].sponsored_len = k - run_start;
                }
            }
        }

        mb.record_node_count(self.slots.len());

        // Phase 3: activate every node at this boundary, in id order, through
        // the shared protocol step, and route every emitted message through
        // the network model. The engine is strictly sequential; determinism
        // needs no further argument than the total event order.
        let mut rec = self.spare_records.pop().unwrap_or_default();
        rec.graph.round = t;
        rec.graph.edges.clear();
        rec.graph.members.clear();
        rec.digests.clear();
        let seed = self.config.sim.seed;
        let hash_seed = self.config.sim.hash_seed;
        let record_digests = self.config.sim.record_digests;
        let mut lost = 0usize;
        let span = self.obs.span_start();
        {
            let obs = &self.obs;
            let topology = &self.config.topology;
            let ticks_per_round = self.config.ticks_per_round;
            let sponsored_ids = &self.sponsored_ids;
            let queue = &mut self.queue;
            let seq = &mut self.seq;
            let stats = &mut self.stats;
            let scratch = &mut self.dedup_scratch;
            let replay = self.replay.as_ref();
            let trace = &mut self.trace;
            let faults = self.faults.as_ref();
            let fault_stats = &mut self.fault_stats;
            let fates = &mut self.fate_block;
            let fault_coins = &mut self.fault_coins;
            for slot in self.slots.iter_mut() {
                mb.record_received(slot.id, slot.inbox.len());
                if obs_on {
                    // Same name and semantics as the round engine's probe:
                    // messages this activation reads.
                    obs.observe("proto.inbox_len", slot.inbox.len() as u64);
                }
                let sponsored =
                    &sponsored_ids[slot.sponsored_start..slot.sponsored_start + slot.sponsored_len];
                let (out, digest) = run_activation(
                    &mut slot.process,
                    slot.id,
                    t,
                    slot.joined_at,
                    sponsored,
                    seed,
                    hash_seed,
                    &slot.inbox,
                    std::mem::take(&mut slot.out),
                    record_digests,
                );
                slot.out = out;
                slot.inbox.clear();
                scratch.clear();
                scratch.extend(slot.out.iter().map(|(to, _)| *to));
                scratch.sort_unstable();
                scratch.dedup();
                mb.record_sent(slot.id, slot.out.len(), scratch.len());
                for &to in scratch.iter() {
                    rec.graph.edges.push((slot.id, to));
                }
                if record_digests {
                    rec.digests.push((slot.id, digest));
                }
                let fate_span = obs.span_start();
                for (to, mut payload) in slot.out.drain(..) {
                    // Fault-plan decision on the sequence number this message
                    // is about to take — a pure function of (seed, seq), so
                    // the loopback transport takes the identical branch for
                    // the identical frame.
                    let (fault_drop, extra_delay, duplicate) = match faults {
                        None => (false, 0u64, false),
                        Some((plan, adapter)) => match plan.decide_with(
                            fault_coins,
                            *seq,
                            t,
                            slot.id,
                            to,
                            (adapter.kind_of)(&payload),
                        ) {
                            FaultDecision::Pass => (false, 0, false),
                            FaultDecision::Drop => {
                                fault_stats.dropped += 1;
                                (true, 0, false)
                            }
                            FaultDecision::Delay(ticks) => {
                                fault_stats.delayed += 1;
                                (false, ticks, false)
                            }
                            FaultDecision::Duplicate => {
                                fault_stats.duplicated += 1;
                                (false, 0, true)
                            }
                            FaultDecision::Mutate => {
                                if (adapter.mutate)(
                                    &mut payload,
                                    FaultPlan::mutation_entropy(seed, *seq),
                                ) {
                                    fault_stats.mutated += 1;
                                }
                                (false, 0, false)
                            }
                        },
                    };
                    // When replaying a recorded trace, Drop and Delay are
                    // already encoded in the fates; only Mutate (payload
                    // bytes) and Duplicate (sequence alignment) re-apply.
                    let (fault_drop, extra_delay) = if replay.is_some() {
                        (false, 0)
                    } else {
                        (fault_drop, extra_delay)
                    };
                    // The duplicate copy consumes the next sequence number
                    // and takes its own network fate, with no fault decision
                    // of its own.
                    let dup = duplicate.then(|| payload.clone());
                    for payload in std::iter::once(payload).chain(dup) {
                        let msg_seq = *seq;
                        *seq += 1;
                        stats.sent += 1;
                        // The effective model of this message is a pure
                        // function of (round, sender, receiver); the fate
                        // stream it consumes is seeded from (seed, seq)
                        // alone, so two topologies resolving this link to
                        // equal models take identical branches here.
                        let (net, cross) = topology.resolve(t, slot.id, to);
                        if cross {
                            stats.bridge_sent += 1;
                        }
                        // The fate: a fault drop, a sample from the network
                        // model (plus any fault delay), or — when replaying
                        // a recorded twin run — the fixed schedule's entry
                        // for this sequence number.
                        let delay = if fault_drop {
                            None
                        } else {
                            match replay {
                                None => {
                                    // One fate block serves 64 consecutive
                                    // sequence numbers; regenerate only when
                                    // `msg_seq` crosses a window boundary.
                                    let block = match fates {
                                        Some(b) if b.covers(seed, msg_seq) => &*b,
                                        _ => &*fates.insert(FateBlock::containing(seed, msg_seq)),
                                    };
                                    net.route_with(block, msg_seq)
                                        .map(|d| d.saturating_add(extra_delay))
                                }
                                Some(tr) => match tr.fate(msg_seq) {
                                    Some(MessageFate::Lost) => None,
                                    Some(MessageFate::Delivered { at_round }) => {
                                        // Delivered at boundary `at_round`
                                        // means an arrival tick at exactly
                                        // that boundary (saturating, like
                                        // every other tick product).
                                        let arrival = at_round.saturating_mul(ticks_per_round);
                                        assert!(
                                            at_round > t,
                                            "replay trace delivers seq {msg_seq} at round \
                                             {at_round}, not after its send round {t}"
                                        );
                                        Some(arrival.saturating_sub(now))
                                    }
                                    None => panic!(
                                        "replay trace exhausted at seq {msg_seq}: the \
                                         replayed execution diverged from the recording"
                                    ),
                                },
                            }
                        };
                        match delay {
                            None => {
                                lost += 1;
                                stats.lost += 1;
                                if cross {
                                    stats.bridge_lost += 1;
                                }
                                if let Some(tr) = trace.as_mut() {
                                    tr.record(msg_seq, MessageFate::Lost);
                                }
                            }
                            Some(delay) => {
                                stats.max_delay_ticks = stats.max_delay_ticks.max(delay);
                                stats.total_delay_ticks =
                                    stats.total_delay_ticks.saturating_add(delay);
                                let arrival = now.saturating_add(delay);
                                if let Some(tr) = trace.as_mut() {
                                    // The boundary that will read this
                                    // message: the first one at or past the
                                    // arrival tick, and never the sending
                                    // round's own.
                                    let at_round = (arrival.div_ceil(ticks_per_round))
                                        .max(t.saturating_add(1));
                                    tr.record(msg_seq, MessageFate::Delivered { at_round });
                                }
                                queue.push(Pending {
                                    arrival,
                                    seq: msg_seq,
                                    env: Envelope::new(slot.id, to, t, payload),
                                });
                            }
                        }
                    }
                }
                obs.span_end("event.fate", fate_span);
                rec.graph.members.push(slot.id);
            }
        }
        self.obs.span_end("event.dispatch", span);
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len() as u64);
        // Receiver-departed drops are charged to the delivery round, loss
        // drops to the sending round (the network never carried them).
        mb.record_dropped(dropped + lost);
        rec.graph.edges.sort_unstable();
        rec.graph.edges.dedup();

        self.records.push(rec);
        if let Some(window) = self.config.sim.history_window {
            while self.records.len() > window {
                let mut old = self.records.remove(0);
                old.graph.edges.clear();
                old.graph.members.clear();
                old.digests.clear();
                self.spare_records.push(old);
            }
        }

        let row = mb.finish();
        if obs_on {
            record_round_obs(&self.obs, &row);
            // Scheduler-specific (but still deterministic) counters: the
            // network model's per-round effects and the queue depth.
            let d = &self.stats;
            self.obs.add("event.net_sent", d.sent - stats_before.sent);
            self.obs.add("event.net_lost", d.lost - stats_before.lost);
            self.obs.add(
                "event.dropped_departed",
                d.dropped_departed - stats_before.dropped_departed,
            );
            self.obs.add(
                "event.bridge_sent",
                d.bridge_sent - stats_before.bridge_sent,
            );
            self.obs.add(
                "event.bridge_lost",
                d.bridge_lost - stats_before.bridge_lost,
            );
            self.obs.observe("event.queue_len", self.queue.len() as u64);
            // Fault counters only exist when a plan is installed, so
            // fault-free runs keep their exact historical obs output.
            if self.faults.is_some() {
                let f = &self.fault_stats;
                self.obs.add(
                    "proto.fault_dropped",
                    f.dropped - fault_stats_before.dropped,
                );
                self.obs.add(
                    "proto.fault_delayed",
                    f.delayed - fault_stats_before.delayed,
                );
                self.obs.add(
                    "proto.fault_duplicated",
                    f.duplicated - fault_stats_before.duplicated,
                );
                self.obs.add(
                    "proto.fault_mutated",
                    f.mutated - fault_stats_before.mutated,
                );
            }
        }
        match &mut self.streaming {
            Some(s) => s.push(row),
            None => self.metrics.push(row),
        }
        self.last_outcome = outcome;
        self.round += 1;
    }

    /// The communication graph of `round`, if still archived.
    pub fn comm_graph_at(&self, round: Round) -> Option<&CommGraph> {
        self.records
            .iter()
            .find(|r| r.graph.round == round)
            .map(|r| &r.graph)
    }

    /// Number of distinct directed edges in the most recent archived
    /// communication graph that cross a region boundary of the configured
    /// topology — the quantity that shows whether the two halves of a
    /// partition are still talking. 0 when the topology has no regions or
    /// nothing is archived yet.
    pub fn cross_region_edges(&self) -> usize {
        self.records.last().map_or(0, |rec| {
            rec.graph
                .edges
                .iter()
                .filter(|&&(from, to)| self.config.topology.is_cross(from, to))
                .count()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LatencyModel;
    use tsa_sim::prelude::*;

    // The queue's ordering contract (pop order, overflow handling, clamped
    // late pushes) is tested in `crate::queue` and held against a reference
    // `BinaryHeap` by `tests/queue_props.rs`; here we only pin the engine's
    // overflow behavior at the clock level.

    struct Pinger;
    impl Process for Pinger {
        type Msg = ();
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
            ctx.send(NodeId(0), ());
        }
    }

    #[test]
    fn virtual_time_saturates_instead_of_wrapping() {
        let mut config = EventConfig::new(
            SimConfig::default().with_seed(1),
            NetModel::new(LatencyModel::constant(0)),
        );
        config.ticks_per_round = u64::MAX;
        let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Pinger));
        sim.seed_nodes(2);
        // From round 1 on, round × u64::MAX ticks saturates; without the
        // saturation the clock would wrap to 0 and re-deliver the past.
        sim.run(3);
        assert_eq!(sim.virtual_time(), u64::MAX);
        assert!(sim.metrics().rounds().len() == 3);
    }
}
