//! The calendar (timing-wheel) event queue behind the event engine.
//!
//! # Why not a binary heap
//!
//! The engine's delivery pattern is extremely structured: events are pushed
//! with arrival ticks at most a few round-windows ahead of the virtual clock
//! and are drained in whole round-boundary batches. A binary heap pays
//! `O(log n)` pointer-chasing comparisons per push *and* per pop for a
//! generality the workload never uses. A calendar queue instead hashes each
//! event into the bucket covering its arrival window (`arrival /
//! bucket_width`), keeps a small ring of near-future buckets plus an
//! overflow list for far-future events, and sorts a bucket only when it is
//! actually popped from — `O(1)` amortized per operation for round-shaped
//! workloads.
//!
//! # Ordering contract
//!
//! [`CalendarQueue::pop_at_or_before`] yields events in exactly the total
//! order the engine's original `BinaryHeap<Pending>` popped them:
//! ascending `(arrival, seq, receiver)`. Bucket indices are monotone in the
//! arrival tick, late pushes whose natural bucket has already been drained
//! are clamped into the current bucket (where the in-bucket sort restores
//! their key order), and overflow events are folded back into the ring
//! *whenever the wheel horizon advances over them* — never only when the
//! ring empties, which would let a fresh in-ring push overtake an earlier
//! overflow event. `crates/event/tests/queue_props.rs` holds this
//! equivalence against a reference heap under dense, sparse, far-future and
//! duplicate-arrival tick distributions.
//!
//! All tick arithmetic saturates: an event at `arrival = u64::MAX` (a
//! hostile `FaultAction::Delay` plan) parks in the overflow list instead of
//! wrapping into the past and reordering the queue, and folds back into the
//! ring once the wheel catches up — the in-ring test compares bucket
//! *distances* rather than a `cur + WHEEL_SLOTS` horizon, so even bucket
//! `u64::MAX` (width 1) is reachable rather than stuck beyond a horizon
//! that saturates at `u64::MAX`.

use std::cmp::Ordering;

use tsa_sim::{Envelope, NodeId};

/// Number of near-future buckets kept in the ring. One bucket per round
/// window (the engine sets `bucket_width = ticks_per_round`), so the ring
/// covers 64 rounds of look-ahead before events spill to overflow.
const WHEEL_SLOTS: u64 = 64;

/// One message in flight: its arrival tick, global send sequence number and
/// envelope. The queue orders by `(arrival, seq, receiver)`; `seq` is unique
/// in a live engine, so the order is total and delivery is deterministic.
pub struct Pending<M> {
    /// The virtual tick at which the message becomes deliverable.
    pub arrival: u64,
    /// The message's global send index.
    pub seq: u64,
    /// The envelope handed to the receiver's inbox.
    pub env: Envelope<M>,
}

impl<M> Pending<M> {
    /// The total-order key: `(arrival, seq, receiver)`.
    pub fn cmp_key(&self) -> (u64, u64, NodeId) {
        (self.arrival, self.seq, self.env.to)
    }
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the earliest event pops
        // first. Kept on `Pending` so a reference heap (tests, benches)
        // still orders exactly like the calendar queue.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// One wheel slot: its events plus a lazily-maintained sort flag. A drained
/// bucket keeps its allocation — the ring recycles it for the round window
/// that wraps onto the same slot.
struct Bucket<M> {
    /// The slot's events; sorted *descending* by key when `sorted` is set,
    /// so the minimum pops from the tail in O(1).
    items: Vec<Pending<M>>,
    sorted: bool,
}

impl<M> Default for Bucket<M> {
    fn default() -> Self {
        Bucket {
            items: Vec::new(),
            sorted: true,
        }
    }
}

/// A calendar queue over [`Pending`] events, keyed on the arrival tick.
///
/// See the module docs for the layout and the ordering contract.
pub struct CalendarQueue<M> {
    /// Ticks covered by one bucket (the engine's `ticks_per_round`; ≥ 1).
    width: u64,
    /// The ring of near-future buckets; absolute bucket `b` lives in slot
    /// `b % WHEEL_SLOTS` while `b < cur + WHEEL_SLOTS`.
    ring: Vec<Bucket<M>>,
    /// The absolute index of the earliest live bucket. Monotone.
    cur: u64,
    /// Events currently in the ring.
    ring_len: usize,
    /// Far-future events (arrival beyond the ring horizon), unordered.
    overflow: Vec<Pending<M>>,
    /// Smallest absolute bucket index present in `overflow`, `None` when
    /// the overflow list is empty. An `Option` rather than a `u64::MAX`
    /// sentinel: at width 1 an event at `arrival = u64::MAX` really lives
    /// in bucket `u64::MAX`, and a sentinel collision there once made
    /// `seek_to_live_bucket` spin forever.
    overflow_min: Option<u64>,
}

impl<M> CalendarQueue<M> {
    /// A queue whose buckets each cover `bucket_width` ticks (clamped to at
    /// least 1).
    pub fn new(bucket_width: u64) -> Self {
        CalendarQueue {
            width: bucket_width.max(1),
            ring: (0..WHEEL_SLOTS).map(|_| Bucket::default()).collect(),
            cur: 0,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: None,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The absolute bucket index covering `arrival`, clamped so that a late
    /// push (arrival before the current bucket's window) lands in the
    /// current bucket, where the in-bucket sort restores its key order.
    fn bucket_of(&self, arrival: u64) -> u64 {
        (arrival / self.width).max(self.cur)
    }

    /// Whether absolute bucket `b` currently falls inside the ring. The
    /// check compares the *distance* from `cur` (saturating, for the
    /// clamped-late-push case where `b` sits below `cur`): a
    /// `b < cur + WHEEL_SLOTS` horizon comparison would saturate at
    /// `u64::MAX` near the top of the tick range and never admit bucket
    /// `u64::MAX` itself.
    fn in_ring(&self, b: u64) -> bool {
        b.saturating_sub(self.cur) < WHEEL_SLOTS
    }

    /// Queues an event.
    pub fn push(&mut self, p: Pending<M>) {
        let b = self.bucket_of(p.arrival);
        if self.in_ring(b) {
            let slot = &mut self.ring[(b % WHEEL_SLOTS) as usize];
            slot.items.push(p);
            slot.sorted = false;
            self.ring_len += 1;
        } else {
            self.overflow_min = Some(self.overflow_min.map_or(b, |m| m.min(b)));
            self.overflow.push(p);
        }
    }

    /// Folds every overflow event whose bucket has come inside the ring
    /// horizon back into the ring, and recomputes the overflow minimum.
    fn refill_from_overflow(&mut self) {
        let mut min: Option<u64> = None;
        let mut i = 0;
        while i < self.overflow.len() {
            let b = self.bucket_of(self.overflow[i].arrival);
            if self.in_ring(b) {
                let p = self.overflow.swap_remove(i);
                let slot = &mut self.ring[(b % WHEEL_SLOTS) as usize];
                slot.items.push(p);
                slot.sorted = false;
                self.ring_len += 1;
            } else {
                min = Some(min.map_or(b, |m| m.min(b)));
                i += 1;
            }
        }
        self.overflow_min = min;
    }

    /// Advances `cur` to the earliest non-empty bucket, folding overflow
    /// events back into the ring as the horizon moves over them. Returns
    /// `false` when the queue is empty.
    fn seek_to_live_bucket(&mut self) -> bool {
        loop {
            if self.overflow_min.is_some_and(|m| self.in_ring(m)) {
                self.refill_from_overflow();
            }
            if self.ring_len == 0 {
                let Some(min) = self.overflow_min else {
                    return false;
                };
                // Everything queued is far-future: jump the wheel straight
                // to the earliest overflow bucket (cur is monotone, the
                // overflow minimum is always at or past the old horizon).
                // The next iteration's refill then folds that bucket into
                // the ring — `in_ring` admits it even at `u64::MAX` — so
                // `ring_len` becomes nonzero and the loop terminates.
                self.cur = self.cur.max(min);
                continue;
            }
            if !self.ring[(self.cur % WHEEL_SLOTS) as usize]
                .items
                .is_empty()
            {
                return true;
            }
            self.cur += 1;
        }
    }

    /// Pops the minimum-key event if its arrival tick is at or before
    /// `now` — exactly the events and exactly the order a
    /// `BinaryHeap<Pending>` would yield with
    /// `heap.peek().arrival <= now` / `heap.pop()`.
    pub fn pop_at_or_before(&mut self, now: u64) -> Option<Pending<M>> {
        if !self.seek_to_live_bucket() {
            return None;
        }
        let bucket = &mut self.ring[(self.cur % WHEEL_SLOTS) as usize];
        if !bucket.sorted {
            // Descending, so the global minimum sits at the tail. The
            // current bucket holds the smallest keys in the whole queue:
            // later ring buckets and overflow events cover strictly later
            // arrival windows, and late pushes were clamped into this one.
            bucket
                .items
                .sort_unstable_by_key(|p| std::cmp::Reverse(p.cmp_key()));
            bucket.sorted = true;
        }
        if bucket.items.last()?.arrival > now {
            return None;
        }
        self.ring_len -= 1;
        bucket.items.pop()
    }

    /// Moves every event with `arrival <= now` into `out`, in **unspecified
    /// order** (the engine re-sorts its deliverable batch by `seq` anyway).
    /// Whole due buckets are appended with a bulk move and never key-sorted;
    /// use [`pop_at_or_before`](Self::pop_at_or_before) when the pop order
    /// itself matters.
    pub fn drain_at_or_before(&mut self, now: u64, out: &mut Vec<Pending<M>>) {
        loop {
            if !self.seek_to_live_bucket() {
                return;
            }
            let width = self.width;
            let bucket = &mut self.ring[(self.cur % WHEEL_SLOTS) as usize];
            // The current bucket's window ends at (cur + 1) · width − 1;
            // if that is within `now` the whole bucket is due (clamped late
            // pushes are even earlier) and moves without any sort. Checked
            // arithmetic throughout: near the top of the tick range the
            // true end meets or exceeds `u64::MAX`, and a clamped
            // `u64::MAX − 1` end would bulk-move an `arrival = u64::MAX`
            // event one tick early.
            let bucket_end = self
                .cur
                .checked_add(1)
                .and_then(|b| b.checked_mul(width))
                .map_or(u64::MAX, |e| e - 1);
            if bucket_end <= now {
                self.ring_len -= bucket.items.len();
                out.append(&mut bucket.items);
                bucket.sorted = true;
                continue;
            }
            // Partially due bucket: sort once, then peel the due tail.
            if !bucket.sorted {
                bucket
                    .items
                    .sort_unstable_by_key(|p| std::cmp::Reverse(p.cmp_key()));
                bucket.sorted = true;
            }
            while bucket.items.last().is_some_and(|p| p.arrival <= now) {
                out.push(bucket.items.pop().expect("tail checked above"));
                self.ring_len -= 1;
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(arrival: u64, seq: u64, to: u64) -> Pending<u64> {
        Pending {
            arrival,
            seq,
            env: Envelope::new(NodeId(0), NodeId(to), 0, 0),
        }
    }

    fn drain_keys(q: &mut CalendarQueue<u64>, now: u64) -> Vec<(u64, u64, NodeId)> {
        std::iter::from_fn(|| q.pop_at_or_before(now))
            .map(|p| p.cmp_key())
            .collect()
    }

    #[test]
    fn pops_by_arrival_then_seq_then_receiver() {
        // The queue's total order is (arrival, seq, receiver): earlier
        // arrivals first, ties broken by global send index, and — though a
        // live engine never produces two events with one seq — the receiver
        // keeps even hand-crafted duplicates deterministic.
        let mut q = CalendarQueue::new(2);
        for (a, s, r) in [(5, 9, 1), (5, 2, 9), (3, 7, 0), (5, 2, 3), (1, 50, 4)] {
            q.push(pending(a, s, r));
        }
        assert_eq!(
            drain_keys(&mut q, u64::MAX),
            vec![
                (1, 50, NodeId(4)),
                (3, 7, NodeId(0)),
                (5, 2, NodeId(3)),
                (5, 2, NodeId(9)),
                (5, 9, NodeId(1)),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn pop_respects_the_now_cutoff() {
        let mut q = CalendarQueue::new(10);
        q.push(pending(15, 0, 0));
        q.push(pending(5, 1, 0));
        assert_eq!(q.pop_at_or_before(10).unwrap().arrival, 5);
        assert!(q.pop_at_or_before(10).is_none(), "15 is after the cutoff");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_at_or_before(15).unwrap().arrival, 15);
    }

    #[test]
    fn overflow_events_come_back_in_order_as_the_horizon_advances() {
        // Regression shape: an event lands in overflow (beyond the ring),
        // then the wheel advances far enough that a *later* event is pushed
        // straight into the ring. The overflow event must still pop first.
        let w = 1u64;
        let mut q = CalendarQueue::new(w);
        q.push(pending(0, 0, 0));
        q.push(pending(WHEEL_SLOTS + 1, 1, 0)); // beyond horizon -> overflow
        assert_eq!(q.pop_at_or_before(0).unwrap().seq, 0);
        // Drain attempts advance the wheel; push a ring event *later* than
        // the overflow one.
        assert!(q.pop_at_or_before(WHEEL_SLOTS).is_none());
        q.push(pending(WHEEL_SLOTS + 2, 2, 0));
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 1);
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 2);
    }

    #[test]
    fn late_pushes_clamp_into_the_current_bucket_and_pop_first() {
        let mut q = CalendarQueue::new(1);
        q.push(pending(100, 0, 0));
        assert!(q.pop_at_or_before(99).is_none()); // advances cur to 100
        q.push(pending(3, 1, 0)); // natural bucket long drained
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 1);
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 0);
    }

    #[test]
    fn saturating_far_future_arrivals_never_wrap() {
        let mut q = CalendarQueue::new(1000);
        q.push(pending(u64::MAX, 7, 0));
        q.push(pending(0, 1, 0));
        assert_eq!(q.pop_at_or_before(0).unwrap().seq, 1);
        assert!(q.pop_at_or_before(u64::MAX - 1).is_none());
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 7);
    }

    #[test]
    fn width_one_saturated_arrival_pops_instead_of_hanging() {
        // Regression: at width 1 an arrival of u64::MAX lives in bucket
        // u64::MAX, which collided with the old overflow-min empty sentinel
        // and could never satisfy a `< cur + WHEEL_SLOTS` horizon check that
        // saturates at u64::MAX — pop_at_or_before(u64::MAX) spun forever.
        let mut q = CalendarQueue::new(1);
        q.push(pending(u64::MAX, 0, 0));
        assert!(q.pop_at_or_before(u64::MAX - 1).is_none());
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 0);
        assert!(q.is_empty());
        assert!(q.pop_at_or_before(u64::MAX).is_none());
    }

    #[test]
    fn width_one_pops_in_order_near_saturation() {
        // Buckets u64::MAX - 2 and u64::MAX both sit past any reachable
        // horizon; the wheel must jump to the first and still admit the
        // second, in key order.
        let mut q = CalendarQueue::new(1);
        q.push(pending(u64::MAX, 1, 0));
        q.push(pending(u64::MAX - 2, 0, 0));
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 0);
        assert_eq!(q.pop_at_or_before(u64::MAX).unwrap().seq, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_near_saturation_keeps_the_not_yet_due_max_arrival() {
        // Regression: the bulk-move bucket end was computed saturating then
        // minus one, clamping the last bucket's end to u64::MAX - 1, so
        // drain_at_or_before(u64::MAX - 1) moved an arrival = u64::MAX
        // event one tick early. Width 1000 exercises the saturated-multiply
        // arm (both events share the final partial bucket).
        let mut q = CalendarQueue::new(1000);
        q.push(pending(u64::MAX, 0, 0));
        q.push(pending(u64::MAX - 1, 1, 0));
        let mut out = Vec::new();
        q.drain_at_or_before(u64::MAX - 1, &mut out);
        assert_eq!(out.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![1]);
        assert_eq!(q.len(), 1);
        out.clear();
        q.drain_at_or_before(u64::MAX, &mut out);
        assert_eq!(out.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![0]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_at_width_one_respects_the_saturated_bucket_end() {
        // The saturated-add arm: at width 1 the final bucket IS u64::MAX,
        // whose inclusive end is u64::MAX, not u64::MAX - 1.
        let mut q = CalendarQueue::new(1);
        q.push(pending(u64::MAX, 0, 0));
        let mut out = Vec::new();
        q.drain_at_or_before(u64::MAX - 1, &mut out);
        assert!(out.is_empty(), "arrival u64::MAX is not yet due");
        q.drain_at_or_before(u64::MAX, &mut out);
        assert_eq!(out.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_moves_exactly_the_due_set() {
        let mut q = CalendarQueue::new(4);
        let mut reference = Vec::new();
        for (a, s) in [(0, 0), (3, 1), (4, 2), (7, 3), (8, 4), (1000, 5)] {
            q.push(pending(a, s, 0));
            reference.push((a, s));
        }
        let mut out = Vec::new();
        q.drain_at_or_before(7, &mut out);
        let mut got: Vec<u64> = out.iter().map(|p| p.seq).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 2);
        // The remainder still pops in key order.
        assert_eq!(
            drain_keys(&mut q, u64::MAX)
                .iter()
                .map(|k| k.1)
                .collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn equal_keys_compare_equal_across_payloads() {
        let a = pending(4, 4, 4);
        let b = Pending {
            arrival: 4,
            seq: 4,
            env: Envelope::new(NodeId(7), NodeId(4), 3, 999),
        };
        assert!(a == b, "ordering ignores everything but the key");
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
