//! Per-message latency, jitter and loss models, and the [`ExecutionModel`]
//! selector that picks between the round engine and the event engine.
//!
//! # Determinism
//!
//! Every message is assigned its fate (dropped or not, and its delay in
//! ticks) from a [`FateBlock`]: one ChaCha8 stream keyed on
//! `(master seed, seq / 64)` that serves 64 consecutive sequence numbers,
//! three fixed stream words per message (loss coin, latency, jitter). The
//! fate is still a pure function of `(master seed, sequence number)` — it
//! depends on *what* the message is (its global send order), never on *when*
//! the sampling happens or which queue state surrounds it — so a fixed seed
//! produces byte-identical traces at any thread or host configuration; the
//! block is merely an amortization of the RNG key schedule, which dominated
//! the per-message cost when each message seeded its own stream. The only
//! floating-point operations used are IEEE-754 basic operations plus `sqrt`
//! (all correctly rounded and therefore bit-stable across conforming hosts);
//! in particular the heavy-tail model restricts its tail index to powers of
//! two so it can be computed by repeated square roots instead of `powf`.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsa_sim::rng::mix;
use tsa_sim::{NodeId, Round};

/// Domain-separation label of the batched network fate streams.
const NET_LABEL: u64 = 0x4E45_545F_4C41_5433; // "NET_LAT3"

/// Stream words consumed per message lane: loss coin, latency, jitter. The
/// count is fixed per message (no rejection loops), which is what lets 64
/// lanes pack into one block at stable positions.
const LANE_WORDS: usize = 3;

/// Consecutive sequence numbers served by one [`FateBlock`].
pub const FATE_BLOCK_LANES: u64 = 64;

/// Maps one stream word onto the unit interval `[0, 1)` with a full 53-bit
/// mantissa (the same conversion the `rand` shim's `f64` sampling uses).
#[inline]
pub(crate) fn unit_f64(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps one stream word uniformly onto `[min, max]` (inclusive) by the
/// multiply-shift method: `min + (w · span) >> 64`. One word per draw, no
/// rejection loop — the (at most `span / 2^64`) bias is far below anything a
/// simulation could resolve, and the fixed word count is what keeps every
/// lane of a [`FateBlock`] at a stable stream position.
#[inline]
fn word_range(w: u64, min: u64, max: u64) -> u64 {
    let span = (max - min).wrapping_add(1); // 0 encodes the full u64 domain
    if span == 0 {
        w
    } else {
        min + (((w as u128 * span as u128) >> 64) as u64)
    }
}

/// One block of pre-generated network fate entropy: three stream words for
/// each of the 64 sequence numbers `[64·b, 64·b + 63]`, drawn from a single
/// ChaCha8 stream keyed on `(master seed, block index)`. Generating one
/// block amortizes the RNG key schedule that used to run once per message
/// (~6 µs/message per the ROADMAP profile) over 64 messages, while keeping
/// every fate a pure function of `(seed, seq)`.
#[derive(Clone)]
pub struct FateBlock {
    seed: u64,
    block: u64,
    words: [u64; LANE_WORDS * FATE_BLOCK_LANES as usize],
}

impl FateBlock {
    /// Generates the block covering sequence number `seq` under `seed`.
    pub fn containing(seed: u64, seq: u64) -> Self {
        let block = seq / FATE_BLOCK_LANES;
        let mut rng = ChaCha8Rng::seed_from_u64(mix(&[seed, block, NET_LABEL]));
        let mut words = [0u64; LANE_WORDS * FATE_BLOCK_LANES as usize];
        for w in words.iter_mut() {
            *w = rng.next_u64();
        }
        FateBlock { seed, block, words }
    }

    /// `true` when this block serves `seq` under `seed` — the engine's
    /// cache check before reusing a block for the next message.
    pub fn covers(&self, seed: u64, seq: u64) -> bool {
        self.seed == seed && seq / FATE_BLOCK_LANES == self.block
    }

    /// The three stream words of `seq`'s lane.
    fn lane(&self, seq: u64) -> &[u64] {
        debug_assert_eq!(seq / FATE_BLOCK_LANES, self.block, "wrong fate block");
        let i = (seq % FATE_BLOCK_LANES) as usize * LANE_WORDS;
        &self.words[i..i + LANE_WORDS]
    }
}

/// How long a message spends in the network, in virtual ticks
/// ([`TICKS_PER_ROUND`](crate::TICKS_PER_ROUND) ticks make one protocol
/// round).
///
/// A sampled delay of `d` ticks means the message becomes deliverable at
/// `send_time + d`; nodes collect deliverable messages at each round boundary
/// of the virtual clock, so any delay of at most one round reproduces the
/// synchronous model's "sent in `t`, delivered in `t + 1`" exactly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` ticks.
    Constant {
        /// The fixed delay in ticks.
        ticks: u64,
    },
    /// Delays drawn uniformly from `[min, max]` ticks.
    Uniform {
        /// Smallest possible delay in ticks.
        min: u64,
        /// Largest possible delay in ticks (inclusive; must be ≥ `min`).
        max: u64,
    },
    /// A bounded Pareto-ish heavy tail: `base` plus
    /// `scale · (u^(−1/α) − 1)` ticks for uniform `u ∈ (0, 1]`, truncated at
    /// `base + cap`. The tail index is `α = 2^alpha_log2`, restricted to
    /// powers of two so the inverse power is a chain of square roots
    /// (bit-stable everywhere, unlike `powf`): `alpha_log2 = 0` is the
    /// classic very-heavy `α = 1` tail, `1` the `α = 2` finite-mean tail.
    Pareto {
        /// The minimum delay in ticks.
        base: u64,
        /// The tail scale in ticks.
        scale: u64,
        /// `log2` of the tail index `α`.
        alpha_log2: u32,
        /// Upper bound on the tail's extra delay, in ticks.
        cap: u64,
    },
}

impl LatencyModel {
    /// A constant delay of `ticks` ticks.
    pub fn constant(ticks: u64) -> Self {
        LatencyModel::Constant { ticks }
    }

    /// A uniform delay in `[min, max]` ticks.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min <= max, "uniform latency needs min <= max");
        LatencyModel::Uniform { min, max }
    }

    /// A bounded heavy tail with index `α = 2^alpha_log2`.
    pub fn pareto(base: u64, scale: u64, alpha_log2: u32, cap: u64) -> Self {
        LatencyModel::Pareto {
            base,
            scale,
            alpha_log2,
            cap,
        }
    }

    /// Draws one delay in ticks from the model.
    ///
    /// Consumes exactly one stream word ([`sample_word`](Self::sample_word)
    /// on `rng.next_u64()`), so every model variant advances the stream by
    /// the same amount.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        self.sample_word(rng.next_u64())
    }

    /// Maps one stream word to a delay in ticks — the single sampling path
    /// shared by the streaming [`sample`](Self::sample) and the batched
    /// [`FateBlock`] route.
    ///
    /// A malformed `Uniform` with `max < min` (possible via deserialization,
    /// which bypasses the [`LatencyModel::uniform`] assertion) degrades to
    /// the constant `min` rather than panicking mid-run.
    pub fn sample_word(&self, w: u64) -> u64 {
        match *self {
            LatencyModel::Constant { ticks } => ticks,
            LatencyModel::Uniform { min, max } => word_range(w, min, max.max(min)),
            LatencyModel::Pareto {
                base,
                scale,
                alpha_log2,
                cap,
            } => {
                // u ∈ (0, 1]: flip the [0, 1) draw so the heavy tail sits at
                // small u without ever dividing by zero.
                let u = 1.0 - unit_f64(w);
                // u^(−1/2^k) by repeated square roots (IEEE-correct, so the
                // value is identical on every conforming host).
                let mut v = u;
                for _ in 0..alpha_log2 {
                    v = v.sqrt();
                }
                let extra = scale as f64 * (1.0 / v - 1.0);
                let extra = if extra.is_finite() {
                    (extra as u64).min(cap)
                } else {
                    cap
                };
                base.saturating_add(extra)
            }
        }
    }

    /// A compact label for tables, e.g. `c500`, `u200-1800`, `p500/1000a2`.
    pub fn label(&self) -> String {
        match *self {
            LatencyModel::Constant { ticks } => format!("c{ticks}"),
            LatencyModel::Uniform { min, max } => format!("u{min}-{max}"),
            LatencyModel::Pareto {
                base,
                scale,
                alpha_log2,
                ..
            } => format!("p{base}/{scale}a{}", 1u64 << alpha_log2),
        }
    }
}

/// The complete network model of an asynchronous execution: per-message
/// latency, extra uniform jitter, and an i.i.d. drop probability.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// The base delay distribution.
    pub latency: LatencyModel,
    /// Extra per-message jitter: a uniform draw from `[0, jitter]` ticks
    /// added on top of the latency (0 disables it).
    pub jitter: u64,
    /// Probability that a message is silently dropped in transit.
    pub loss: f64,
}

impl NetModel {
    /// A model with the given latency, no jitter and no loss.
    pub fn new(latency: LatencyModel) -> Self {
        NetModel {
            latency,
            jitter: 0,
            loss: 0.0,
        }
    }

    /// Decides the fate of message `seq` under master seed `seed`: `None`
    /// if the message is lost, otherwise its total delay in ticks.
    ///
    /// Generates `seq`'s [`FateBlock`] and reads one lane — the one-shot
    /// convenience over [`route_with`](Self::route_with), which hot loops
    /// use with a cached block (sequence numbers are handed out
    /// monotonically, so one block serves 64 consecutive messages).
    pub fn route(&self, seed: u64, seq: u64) -> Option<u64> {
        self.route_with(&FateBlock::containing(seed, seq), seq)
    }

    /// Decides the fate of message `seq` from its pre-generated fate block.
    ///
    /// Each lane's word positions are fixed (loss, latency, jitter), so a
    /// model that disables a component still reads the same stream positions
    /// as one that enables it — adding jitter to a sweep axis never perturbs
    /// the loss coin flips of its neighbours. All delay additions saturate:
    /// a hostile model summing to beyond `u64::MAX` ticks parks the message
    /// in the far future instead of wrapping it into the past.
    pub fn route_with(&self, fates: &FateBlock, seq: u64) -> Option<u64> {
        let lane = fates.lane(seq);
        let lost = unit_f64(lane[0]) < self.loss;
        let mut delay = self.latency.sample_word(lane[1]);
        if self.jitter > 0 {
            delay = delay.saturating_add(word_range(lane[2], 0, self.jitter));
        }
        if lost {
            None
        } else {
            Some(delay)
        }
    }

    /// A compact label for tables, e.g. `u200-1800+j300-l0.01`.
    pub fn label(&self) -> String {
        let mut label = self.latency.label();
        if self.jitter > 0 {
            label.push_str(&format!("+j{}", self.jitter));
        }
        if self.loss > 0.0 {
            label.push_str(&format!("-l{}", self.loss));
        }
        label
    }
}

/// Assigns every node to a *region* — a pure function of the node id, so the
/// assignment is identical on every host, at every thread configuration, and
/// across resumed runs. This is what keeps topology-aware traces
/// byte-identical everywhere: which side of a partition a node sits on can
/// never depend on hashing order, insertion order, or wall-clock state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RegionAssign {
    /// Two halves of the id space: ids below `split` are region 0, the rest
    /// region 1. With the engines' sequential id assignment (`V_0 = 0..n`),
    /// `split = n / 2` puts the two halves of the initial network in
    /// different regions; every later joiner (id ≥ n > split) lands in
    /// region 1.
    Halves {
        /// First id that belongs to region 1.
        split: u64,
    },
    /// `k`-way banding: region = `(id / width) mod k` — contiguous bands of
    /// `width` ids striped round-robin over `k` regions, so later joiners
    /// keep spreading across all regions instead of piling into the last
    /// one.
    Bands {
        /// Ids per contiguous band (0 is treated as 1).
        width: u64,
        /// Number of regions (0 is treated as 1).
        k: u32,
    },
    /// An explicit id → region map; ids the map does not mention fall into
    /// `default`.
    Explicit {
        /// Region of every id absent from the map.
        default: u32,
        /// The explicit assignments.
        map: Vec<RegionEntry>,
    },
}

/// One entry of an explicit region map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionEntry {
    /// The raw node id.
    pub id: u64,
    /// The region that id belongs to.
    pub region: u32,
}

impl RegionAssign {
    /// Two halves split at `split`.
    pub fn halves(split: u64) -> Self {
        RegionAssign::Halves { split }
    }

    /// `k`-way bands of `width` ids.
    pub fn bands(width: u64, k: u32) -> Self {
        RegionAssign::Bands { width, k }
    }

    /// An explicit map over `(id, region)` pairs with a default region.
    pub fn explicit(default: u32, pairs: impl IntoIterator<Item = (u64, u32)>) -> Self {
        RegionAssign::Explicit {
            default,
            map: pairs
                .into_iter()
                .map(|(id, region)| RegionEntry { id, region })
                .collect(),
        }
    }

    /// The region of `id` — a total, pure function.
    pub fn region_of(&self, id: NodeId) -> u32 {
        match self {
            RegionAssign::Halves { split } => u32::from(id.0 >= *split),
            RegionAssign::Bands { width, k } => {
                ((id.0 / (*width).max(1)) % u64::from((*k).max(1))) as u32
            }
            RegionAssign::Explicit { default, map } => map
                .iter()
                .find(|e| e.id == id.0)
                .map(|e| e.region)
                .unwrap_or(*default),
        }
    }

    /// A compact label for tables, e.g. `halves@64`, `bands16x4`, `map(5)`.
    pub fn label(&self) -> String {
        match self {
            RegionAssign::Halves { split } => format!("halves@{split}"),
            RegionAssign::Bands { width, k } => format!("bands{width}x{k}"),
            RegionAssign::Explicit { map, .. } => format!("map({})", map.len()),
        }
    }
}

/// The rounds during which a [`Topology::Regions`] bridge is *degraded*
/// (runs the `inter` model). Outside the window cross-region links run the
/// healthy `intra` model — this is the time-varying bridge that lets one
/// spec describe "healthy bootstrap, partition for D rounds, heal at round
/// R" without any out-of-band scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    /// First round boundary whose sends cross a degraded bridge.
    pub from: Round,
    /// First round boundary whose sends cross a healed bridge again
    /// (`u64::MAX` = the partition never heals).
    pub heal_at: Round,
}

impl PartitionSchedule {
    /// Degraded from `from` onwards, forever.
    pub fn starting_at(from: Round) -> Self {
        PartitionSchedule {
            from,
            heal_at: u64::MAX,
        }
    }

    /// Degraded during `[from, heal_at)`.
    pub fn window(from: Round, heal_at: Round) -> Self {
        PartitionSchedule { from, heal_at }
    }

    /// Whether the bridge is degraded for messages sent at `round`.
    pub fn degraded_at(&self, round: Round) -> bool {
        round >= self.from && round < self.heal_at
    }

    /// A compact label: `@3..11`, or `@3..` for a permanent partition.
    pub fn label(&self) -> String {
        if self.heal_at == u64::MAX {
            format!("@{}..", self.from)
        } else {
            format!("@{}..{}", self.from, self.heal_at)
        }
    }
}

/// One per-link override of a [`Topology::PerLink`] network: the directed
/// link `from → to` uses `net` instead of the base model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The model this directed link uses.
    pub net: NetModel,
}

/// The network *topology*: which [`NetModel`] governs each directed
/// `(sender, receiver)` link at each round.
///
/// Every variant resolves links through pure functions of
/// `(round, sender id, receiver id)` — never through runtime state — so a
/// topology-aware trace is exactly as deterministic as a global one. The
/// per-message randomness stream is seeded from `(seed, seq)` alone
/// ([`NetModel::route`]), independent of *which* model consumes it; two
/// topologies that resolve every link to equal models therefore produce
/// byte-identical traces — the equivalence the `topology_equivalence` test
/// bridge pins.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// One model for every link (what a scalar [`NetModel`] always was).
    Global(NetModel),
    /// A two-level regional structure: links inside a region run `intra`,
    /// links crossing regions run `inter` — optionally only during a
    /// [`PartitionSchedule`] window (and `intra` outside it).
    Regions {
        /// The pure id → region assignment.
        assign: RegionAssign,
        /// The model of links within one region.
        intra: NetModel,
        /// The model of links crossing regions (the "bridge").
        inter: NetModel,
        /// When the bridge is degraded; `None` = always.
        schedule: Option<PartitionSchedule>,
    },
    /// Explicit per-link overrides over a base model (first matching
    /// override wins; everything else runs `base`).
    PerLink {
        /// The model of every link without an override.
        base: NetModel,
        /// The directed-link overrides.
        overrides: Vec<LinkOverride>,
    },
}

impl Topology {
    /// One model everywhere.
    pub fn global(net: NetModel) -> Self {
        Topology::Global(net)
    }

    /// A regional topology with a permanently active bridge model.
    pub fn regions(assign: RegionAssign, intra: NetModel, inter: NetModel) -> Self {
        Topology::Regions {
            assign,
            intra,
            inter,
            schedule: None,
        }
    }

    /// A regional topology whose bridge is degraded only during `schedule`.
    pub fn regions_with_schedule(
        assign: RegionAssign,
        intra: NetModel,
        inter: NetModel,
        schedule: PartitionSchedule,
    ) -> Self {
        Topology::Regions {
            assign,
            intra,
            inter,
            schedule: Some(schedule),
        }
    }

    /// Per-link overrides over `base`.
    pub fn per_link(base: NetModel, overrides: Vec<LinkOverride>) -> Self {
        Topology::PerLink { base, overrides }
    }

    /// The *base* model: what most links run (`Global`'s model, `Regions`'
    /// intra model, `PerLink`'s base).
    pub fn base(&self) -> NetModel {
        match self {
            Topology::Global(net) => *net,
            Topology::Regions { intra, .. } => *intra,
            Topology::PerLink { base, .. } => *base,
        }
    }

    /// The region of `id`, for regional topologies.
    pub fn region_of(&self, id: NodeId) -> Option<u32> {
        match self {
            Topology::Regions { assign, .. } => Some(assign.region_of(id)),
            _ => None,
        }
    }

    /// Whether the directed link `from → to` crosses a region boundary
    /// (always `false` for non-regional topologies). This is the structural
    /// notion — it ignores the schedule — used for cross-region edge
    /// accounting.
    pub fn is_cross(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            Topology::Regions { assign, .. } => assign.region_of(from) != assign.region_of(to),
            _ => false,
        }
    }

    /// Whether cross-region links run the degraded `inter` model for
    /// messages sent at `round`.
    pub fn bridge_degraded_at(&self, round: Round) -> bool {
        match self {
            Topology::Regions { schedule, .. } => schedule.is_none_or(|s| s.degraded_at(round)),
            _ => false,
        }
    }

    /// Resolves the effective model of one message: sent at round boundary
    /// `round` over the directed link `from → to`.
    pub fn net_for(&self, round: Round, from: NodeId, to: NodeId) -> NetModel {
        self.resolve(round, from, to).0
    }

    /// [`Topology::net_for`] and [`Topology::is_cross`] in one pass — the
    /// engine's per-message entry point, so each endpoint's region (or the
    /// override list) is looked up exactly once per send.
    pub fn resolve(&self, round: Round, from: NodeId, to: NodeId) -> (NetModel, bool) {
        match self {
            Topology::Global(net) => (*net, false),
            Topology::Regions {
                assign,
                intra,
                inter,
                schedule,
            } => {
                let cross = assign.region_of(from) != assign.region_of(to);
                let net = if cross && schedule.is_none_or(|s| s.degraded_at(round)) {
                    *inter
                } else {
                    *intra
                };
                (net, cross)
            }
            Topology::PerLink { base, overrides } => (
                overrides
                    .iter()
                    .find(|o| o.from == from && o.to == to)
                    .map(|o| o.net)
                    .unwrap_or(*base),
                false,
            ),
        }
    }

    /// `true` for [`Topology::Global`].
    pub fn is_global(&self) -> bool {
        matches!(self, Topology::Global(_))
    }

    /// A compact label for tables, e.g.
    /// `regions(halves@24,intra=c500,inter=c3000-l0.5@6..14)`.
    pub fn label(&self) -> String {
        match self {
            Topology::Global(net) => net.label(),
            Topology::Regions {
                assign,
                intra,
                inter,
                schedule,
            } => format!(
                "regions({},intra={},inter={}{})",
                assign.label(),
                intra.label(),
                inter.label(),
                schedule.map(|s| s.label()).unwrap_or_default()
            ),
            Topology::PerLink { base, overrides } => {
                format!("perlink({}+{})", base.label(), overrides.len())
            }
        }
    }
}

/// Which execution engine a scenario runs on — the round-synchronous
/// lockstep engine, or the virtual-time event engine under a network model.
///
/// `Rounds` is the serde default and is *skipped* when a spec serializes, so
/// every artifact written before this type existed round-trips unchanged and
/// every artifact written after it stays byte-identical for synchronous runs.
/// The `topology` field plays the same game one level down: it is skipped
/// when `None`, so every `Async` spec serialized before topologies existed
/// (and every global-network spec after) keeps its exact serialized form.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// The paper's synchronous round model (`tsa-sim`'s lockstep engine).
    #[default]
    Rounds,
    /// The discrete-event engine of `tsa-event`: nodes still activate at
    /// round boundaries of the virtual clock, but every message individually
    /// samples a latency (plus jitter) and may be lost.
    Async {
        /// The base delay distribution, in ticks
        /// ([`TICKS_PER_ROUND`](crate::TICKS_PER_ROUND) per round).
        latency: LatencyModel,
        /// Extra uniform per-message jitter in `[0, jitter]` ticks.
        jitter: u64,
        /// Per-message drop probability.
        loss: f64,
        /// Link-level structure of the network. `None` (the serde default)
        /// means the flat `latency`/`jitter`/`loss` above apply to every
        /// link; `Some` makes the topology authoritative for link
        /// resolution, with the flat fields mirroring its
        /// [`base`](Topology::base) model (the constructors keep them in
        /// sync).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        topology: Option<Topology>,
    },
}

impl ExecutionModel {
    /// The synchronous round model.
    pub fn rounds() -> Self {
        ExecutionModel::Rounds
    }

    /// An asynchronous execution with the given latency model, no jitter and
    /// no loss, on a global (link-uniform) network.
    pub fn asynchronous(latency: LatencyModel) -> Self {
        ExecutionModel::Async {
            latency,
            jitter: 0,
            loss: 0.0,
            topology: None,
        }
    }

    /// An asynchronous execution over an explicit link [`Topology`]. The
    /// flat latency/jitter/loss fields mirror the topology's
    /// [`base`](Topology::base) model.
    pub fn topo(topology: Topology) -> Self {
        let base = topology.base();
        ExecutionModel::Async {
            latency: base.latency,
            jitter: base.jitter,
            loss: base.loss,
            topology: Some(topology),
        }
    }

    /// Replaces the network with an explicit link [`Topology`], switching to
    /// the event engine if necessary — the hook the sweep topology axis
    /// applies to each cell.
    pub fn with_topology(self, topology: Topology) -> Self {
        ExecutionModel::topo(topology)
    }

    /// `true` for [`ExecutionModel::Rounds`] — the `skip_serializing_if`
    /// predicate that keeps synchronous specs byte-identical to the
    /// pre-`ExecutionModel` serialization.
    pub fn is_rounds(&self) -> bool {
        matches!(self, ExecutionModel::Rounds)
    }

    /// Adds uniform `[0, jitter]`-tick jitter (asynchronous global models
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on [`ExecutionModel::Rounds`] (no network model) and on a
    /// topology-bearing model, where "the" jitter is ambiguous — configure
    /// the topology's per-link [`NetModel`]s instead.
    pub fn with_jitter(self, jitter: u64) -> Self {
        match self {
            ExecutionModel::Rounds => panic!("Rounds has no jitter to configure"),
            ExecutionModel::Async {
                topology: Some(_), ..
            } => panic!("a link topology carries its own per-link jitter"),
            ExecutionModel::Async { latency, loss, .. } => ExecutionModel::Async {
                latency,
                jitter,
                loss,
                topology: None,
            },
        }
    }

    /// Sets the per-message drop probability (asynchronous global models
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on [`ExecutionModel::Rounds`] (no network model) and on a
    /// topology-bearing model, where "the" loss is ambiguous — configure
    /// the topology's per-link [`NetModel`]s instead.
    pub fn with_loss(self, loss: f64) -> Self {
        match self {
            ExecutionModel::Rounds => panic!("Rounds has no loss to configure"),
            ExecutionModel::Async {
                topology: Some(_), ..
            } => panic!("a link topology carries its own per-link loss"),
            ExecutionModel::Async {
                latency, jitter, ..
            } => ExecutionModel::Async {
                latency,
                jitter,
                loss,
                topology: None,
            },
        }
    }

    /// The *base* network model of an asynchronous execution (`None` for
    /// `Rounds`): the flat model for global executions, the topology's
    /// [`base`](Topology::base) otherwise.
    pub fn net_model(&self) -> Option<NetModel> {
        match self {
            ExecutionModel::Rounds => None,
            ExecutionModel::Async {
                topology: Some(t), ..
            } => Some(t.base()),
            ExecutionModel::Async {
                latency,
                jitter,
                loss,
                topology: None,
            } => Some(NetModel {
                latency: *latency,
                jitter: *jitter,
                loss: *loss,
            }),
        }
    }

    /// The complete link topology the event engine should run (`None` for
    /// `Rounds`): the explicit topology when one is set, otherwise the flat
    /// model wrapped as [`Topology::Global`].
    pub fn effective_topology(&self) -> Option<Topology> {
        match self {
            ExecutionModel::Rounds => None,
            ExecutionModel::Async {
                topology: Some(t), ..
            } => Some(t.clone()),
            ExecutionModel::Async { .. } => self.net_model().map(Topology::Global),
        }
    }

    /// A compact label for sweep tables: `sync`, `async(<net label>)`, or
    /// `async(<topology label>)`.
    pub fn label(&self) -> String {
        match self {
            ExecutionModel::Rounds => "sync".to_string(),
            ExecutionModel::Async {
                topology: Some(t), ..
            } => format!("async({})", t.label()),
            ExecutionModel::Async { .. } => {
                format!("async({})", self.net_model().expect("async model").label())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::constant(7);
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 7);
        }
    }

    #[test]
    fn uniform_latency_stays_in_range_and_spreads() {
        let m = LatencyModel::uniform(100, 300);
        let mut r = rng(2);
        let draws: Vec<u64> = (0..500).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&d| (100..=300).contains(&d)));
        assert!(draws.iter().any(|&d| d < 150));
        assert!(draws.iter().any(|&d| d > 250));
    }

    #[test]
    fn pareto_latency_is_heavy_tailed_but_bounded() {
        let m = LatencyModel::pareto(100, 200, 1, 10_000);
        let mut r = rng(3);
        let draws: Vec<u64> = (0..2000).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&d| (100..=10_100).contains(&d)));
        // The α = 2 tail must actually produce multi-round outliers.
        assert!(draws.iter().any(|&d| d > 2000), "no tail events");
        let median = {
            let mut s = draws.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(median < 500, "median {median} should sit near the base");
    }

    #[test]
    fn routing_is_a_pure_function_of_seed_and_seq() {
        let net = NetModel {
            latency: LatencyModel::uniform(0, 1000),
            jitter: 250,
            loss: 0.1,
        };
        for seq in 0..200 {
            assert_eq!(net.route(9, seq), net.route(9, seq));
        }
        let fates_a: Vec<_> = (0..200).map(|s| net.route(9, s)).collect();
        let fates_b: Vec<_> = (0..200).map(|s| net.route(10, s)).collect();
        assert_ne!(fates_a, fates_b, "different seeds give different fates");
        assert!(fates_a.iter().any(|f| f.is_none()), "loss must occur");
        assert!(fates_a.iter().filter(|f| f.is_none()).count() < 60);
    }

    #[test]
    fn disabling_jitter_does_not_perturb_loss_or_latency() {
        let with = NetModel {
            latency: LatencyModel::constant(10),
            jitter: 5,
            loss: 0.5,
        };
        let without = NetModel { jitter: 0, ..with };
        for seq in 0..100 {
            let a = with.route(3, seq);
            let b = without.route(3, seq);
            assert_eq!(a.is_none(), b.is_none(), "loss coin flips must agree");
            if let (Some(a), Some(b)) = (a, b) {
                assert!((b..=b + 5).contains(&a));
            }
        }
    }

    #[test]
    fn execution_model_default_is_rounds_and_skipped() {
        assert_eq!(ExecutionModel::default(), ExecutionModel::Rounds);
        assert!(ExecutionModel::rounds().is_rounds());
        let asynch = ExecutionModel::asynchronous(LatencyModel::constant(500))
            .with_jitter(100)
            .with_loss(0.01);
        assert!(!asynch.is_rounds());
        let net = asynch.net_model().unwrap();
        assert_eq!(net.jitter, 100);
        assert_eq!(net.loss, 0.01);
        assert_eq!(asynch.label(), "async(c500+j100-l0.01)");
        assert_eq!(ExecutionModel::rounds().label(), "sync");
    }

    #[test]
    fn loss_zero_never_drops_and_loss_one_always_drops() {
        let never = NetModel {
            latency: LatencyModel::uniform(0, 100),
            jitter: 10,
            loss: 0.0,
        };
        let always = NetModel { loss: 1.0, ..never };
        for seq in 0..500 {
            assert!(never.route(11, seq).is_some(), "loss 0.0 must deliver");
            assert!(always.route(11, seq).is_none(), "loss 1.0 must drop");
        }
        // The two consume identical stream positions: delivered delays of the
        // loss-free model are what the lossy model *would* have delayed by.
        let half = NetModel { loss: 0.5, ..never };
        for seq in 0..100 {
            if let Some(d) = half.route(11, seq) {
                assert_eq!(Some(d), never.route(11, seq));
            }
        }
    }

    #[test]
    fn pareto_alpha_one_is_the_heaviest_supported_tail() {
        // alpha_log2 = 0 is α = 2^0 = 1: the repeated-sqrt chain is empty,
        // v = u, and the tail is the classic infinite-mean 1/u law — only
        // the cap keeps draws finite.
        let m = LatencyModel::pareto(100, 100, 0, 50_000);
        let mut r = rng(7);
        let draws: Vec<u64> = (0..4000).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&d| (100..=50_100).contains(&d)));
        assert!(
            draws.contains(&50_100),
            "α = 1 must actually hit the cap over 4000 draws"
        );
        let median = {
            let mut s = draws.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(median < 400, "median {median} should hug the base");
        // And α = 1 is strictly heavier than α = 2 at the same scale.
        let lighter = LatencyModel::pareto(100, 100, 1, 50_000);
        let mut r2 = rng(7);
        let capped_lighter = (0..4000)
            .map(|_| lighter.sample(&mut r2))
            .filter(|&d| d == 50_100)
            .count();
        let capped_heavy = draws.iter().filter(|&&d| d == 50_100).count();
        assert!(capped_heavy > capped_lighter);
    }

    #[test]
    fn jitter_zero_and_positive_share_fates_but_not_delays() {
        let flat = NetModel {
            latency: LatencyModel::constant(100),
            jitter: 0,
            loss: 0.2,
        };
        let jittered = NetModel {
            jitter: 400,
            ..flat
        };
        let mut spread = false;
        for seq in 0..200 {
            let (a, b) = (flat.route(5, seq), jittered.route(5, seq));
            assert_eq!(a.is_none(), b.is_none(), "fates agree at seq {seq}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a, 100, "jitter 0 is exactly the base latency");
                assert!((100..=500).contains(&b));
                spread |= b != a;
            }
        }
        assert!(spread, "positive jitter must actually move some delays");
    }

    #[test]
    fn region_assignment_is_a_pure_total_function_of_the_id() {
        let halves = RegionAssign::halves(24);
        assert_eq!(halves.region_of(NodeId(0)), 0);
        assert_eq!(halves.region_of(NodeId(23)), 0);
        assert_eq!(halves.region_of(NodeId(24)), 1);
        assert_eq!(halves.region_of(NodeId(u64::MAX)), 1, "joiners go right");

        let bands = RegionAssign::bands(4, 3);
        assert_eq!(bands.region_of(NodeId(0)), 0);
        assert_eq!(bands.region_of(NodeId(3)), 0);
        assert_eq!(bands.region_of(NodeId(4)), 1);
        assert_eq!(bands.region_of(NodeId(8)), 2);
        assert_eq!(bands.region_of(NodeId(12)), 0, "bands stripe round-robin");

        let map = RegionAssign::explicit(7, [(1, 0), (2, 5)]);
        assert_eq!(map.region_of(NodeId(1)), 0);
        assert_eq!(map.region_of(NodeId(2)), 5);
        assert_eq!(map.region_of(NodeId(3)), 7, "unlisted ids take the default");

        // Degenerate parameters degrade to one region, never panic.
        assert_eq!(RegionAssign::bands(0, 0).region_of(NodeId(9)), 0);
    }

    #[test]
    fn topology_resolves_links_by_region_schedule_and_override() {
        let fast = NetModel::new(LatencyModel::constant(100));
        let slow = NetModel {
            latency: LatencyModel::constant(3000),
            jitter: 0,
            loss: 0.5,
        };

        let global = Topology::global(fast);
        assert_eq!(global.net_for(9, NodeId(0), NodeId(99)), fast);
        assert!(!global.is_cross(NodeId(0), NodeId(99)));
        assert_eq!(global.base(), fast);

        let regions = Topology::regions(RegionAssign::halves(8), fast, slow);
        assert_eq!(regions.net_for(0, NodeId(1), NodeId(2)), fast, "intra");
        assert_eq!(regions.net_for(0, NodeId(1), NodeId(9)), slow, "bridge");
        assert_eq!(regions.net_for(0, NodeId(9), NodeId(1)), slow, "both ways");
        assert!(regions.is_cross(NodeId(1), NodeId(9)));
        assert_eq!(regions.region_of(NodeId(9)), Some(1));
        assert_eq!(regions.base(), fast);

        let windowed = Topology::regions_with_schedule(
            RegionAssign::halves(8),
            fast,
            slow,
            PartitionSchedule::window(3, 7),
        );
        assert_eq!(windowed.net_for(2, NodeId(1), NodeId(9)), fast, "pre");
        assert_eq!(windowed.net_for(3, NodeId(1), NodeId(9)), slow, "during");
        assert_eq!(windowed.net_for(6, NodeId(1), NodeId(9)), slow);
        assert_eq!(windowed.net_for(7, NodeId(1), NodeId(9)), fast, "healed");
        assert!(windowed.bridge_degraded_at(4) && !windowed.bridge_degraded_at(7));
        // The schedule never touches intra links.
        assert_eq!(windowed.net_for(4, NodeId(1), NodeId(2)), fast);

        let link = Topology::per_link(
            fast,
            vec![LinkOverride {
                from: NodeId(3),
                to: NodeId(5),
                net: slow,
            }],
        );
        assert_eq!(link.net_for(0, NodeId(3), NodeId(5)), slow);
        assert_eq!(link.net_for(0, NodeId(5), NodeId(3)), fast, "directed");
        assert_eq!(link.net_for(0, NodeId(0), NodeId(1)), fast);
    }

    #[test]
    fn equal_models_make_every_topology_the_global_one() {
        // The per-message stream is seeded from (seed, seq) alone, so two
        // topologies resolving every link to equal models give equal fates —
        // the model-level half of the equivalence bridge.
        let m = NetModel {
            latency: LatencyModel::uniform(100, 2500),
            jitter: 300,
            loss: 0.1,
        };
        let global = Topology::global(m);
        let regions = Topology::regions(RegionAssign::halves(8), m, m);
        let link = Topology::per_link(m, Vec::new());
        for seq in 0..100 {
            let (from, to) = (NodeId(seq % 16), NodeId((seq * 7) % 16));
            let expect = global.net_for(0, from, to).route(13, seq);
            assert_eq!(regions.net_for(0, from, to).route(13, seq), expect);
            assert_eq!(link.net_for(0, from, to).route(13, seq), expect);
        }
    }

    #[test]
    fn topology_models_round_trip_through_serde() {
        let fast = NetModel::new(LatencyModel::constant(500));
        let slow = NetModel {
            latency: LatencyModel::pareto(200, 800, 1, 8000),
            jitter: 100,
            loss: 0.25,
        };
        let topologies = [
            Topology::global(fast),
            Topology::regions(RegionAssign::halves(24), fast, slow),
            Topology::regions_with_schedule(
                RegionAssign::bands(8, 4),
                fast,
                slow,
                PartitionSchedule::window(6, 14),
            ),
            Topology::regions(RegionAssign::explicit(0, [(0, 1), (5, 1)]), fast, slow),
            Topology::per_link(
                fast,
                vec![LinkOverride {
                    from: NodeId(1),
                    to: NodeId(2),
                    net: slow,
                }],
            ),
        ];
        for topo in topologies {
            let json = serde_json::to_string(&topo).unwrap();
            let back: Topology = serde_json::from_str(&json).unwrap();
            assert_eq!(back, topo, "{json}");
            let model = ExecutionModel::topo(topo.clone());
            let json = serde_json::to_string(&model).unwrap();
            assert!(json.contains("topology"), "{json}");
            let back: ExecutionModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model, "{json}");
            assert_eq!(back.effective_topology(), Some(topo.clone()));
            assert_eq!(back.net_model(), Some(topo.base()));
        }
    }

    #[test]
    fn global_async_specs_never_serialize_the_topology_field() {
        // The byte-compatibility contract one level down from `Rounds`: an
        // Async model without a topology serializes exactly as it did before
        // the field existed, and old JSON deserializes to topology = None.
        let model = ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800))
            .with_jitter(100)
            .with_loss(0.01);
        let json = serde_json::to_string(&model).unwrap();
        assert!(!json.contains("topology"), "{json}");
        let pre_topology =
            r#"{"Async":{"latency":{"Constant":{"ticks":500}},"jitter":0,"loss":0.0}}"#;
        let back: ExecutionModel = serde_json::from_str(pre_topology).unwrap();
        assert_eq!(
            back,
            ExecutionModel::asynchronous(LatencyModel::constant(500))
        );
        assert_eq!(
            back.effective_topology(),
            back.net_model().map(Topology::Global)
        );
        assert_eq!(
            ExecutionModel::topo(Topology::global(NetModel::new(LatencyModel::constant(500))))
                .label(),
            "async(c500)",
            "a Global topology labels like its scalar model"
        );
    }

    #[test]
    fn execution_model_round_trips_through_serde() {
        let models = [
            ExecutionModel::rounds(),
            ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800)),
            ExecutionModel::asynchronous(LatencyModel::pareto(100, 500, 1, 20_000))
                .with_jitter(50)
                .with_loss(0.02),
        ];
        for model in models {
            let json = serde_json::to_string(&model).unwrap();
            let back: ExecutionModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model, "{json}");
        }
    }
}
