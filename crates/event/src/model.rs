//! Per-message latency, jitter and loss models, and the [`ExecutionModel`]
//! selector that picks between the round engine and the event engine.
//!
//! # Determinism
//!
//! Every message is assigned its fate (dropped or not, and its delay in
//! ticks) by a private ChaCha8 stream seeded from `(master seed, message
//! sequence number)`. The stream depends on *what* the message is (its global
//! send order), never on *when* the sampling happens or which queue state
//! surrounds it — so a fixed seed produces byte-identical traces at any
//! thread or host configuration. The only floating-point operations used are
//! IEEE-754 basic operations plus `sqrt` (all correctly rounded and therefore
//! bit-stable across conforming hosts); in particular the heavy-tail model
//! restricts its tail index to powers of two so it can be computed by
//! repeated square roots instead of `powf`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsa_sim::rng::mix;

/// Domain-separation label of the per-message network streams.
const NET_LABEL: u64 = 0x4E45_545F_4C41_5433; // "NET_LAT3"

/// How long a message spends in the network, in virtual ticks
/// ([`TICKS_PER_ROUND`](crate::TICKS_PER_ROUND) ticks make one protocol
/// round).
///
/// A sampled delay of `d` ticks means the message becomes deliverable at
/// `send_time + d`; nodes collect deliverable messages at each round boundary
/// of the virtual clock, so any delay of at most one round reproduces the
/// synchronous model's "sent in `t`, delivered in `t + 1`" exactly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` ticks.
    Constant {
        /// The fixed delay in ticks.
        ticks: u64,
    },
    /// Delays drawn uniformly from `[min, max]` ticks.
    Uniform {
        /// Smallest possible delay in ticks.
        min: u64,
        /// Largest possible delay in ticks (inclusive; must be ≥ `min`).
        max: u64,
    },
    /// A bounded Pareto-ish heavy tail: `base` plus
    /// `scale · (u^(−1/α) − 1)` ticks for uniform `u ∈ (0, 1]`, truncated at
    /// `base + cap`. The tail index is `α = 2^alpha_log2`, restricted to
    /// powers of two so the inverse power is a chain of square roots
    /// (bit-stable everywhere, unlike `powf`): `alpha_log2 = 0` is the
    /// classic very-heavy `α = 1` tail, `1` the `α = 2` finite-mean tail.
    Pareto {
        /// The minimum delay in ticks.
        base: u64,
        /// The tail scale in ticks.
        scale: u64,
        /// `log2` of the tail index `α`.
        alpha_log2: u32,
        /// Upper bound on the tail's extra delay, in ticks.
        cap: u64,
    },
}

impl LatencyModel {
    /// A constant delay of `ticks` ticks.
    pub fn constant(ticks: u64) -> Self {
        LatencyModel::Constant { ticks }
    }

    /// A uniform delay in `[min, max]` ticks.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min <= max, "uniform latency needs min <= max");
        LatencyModel::Uniform { min, max }
    }

    /// A bounded heavy tail with index `α = 2^alpha_log2`.
    pub fn pareto(base: u64, scale: u64, alpha_log2: u32, cap: u64) -> Self {
        LatencyModel::Pareto {
            base,
            scale,
            alpha_log2,
            cap,
        }
    }

    /// Draws one delay in ticks from the model.
    ///
    /// A malformed `Uniform` with `max < min` (possible via deserialization,
    /// which bypasses the [`LatencyModel::uniform`] assertion) degrades to
    /// the constant `min` rather than panicking mid-run.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        match *self {
            LatencyModel::Constant { ticks } => ticks,
            LatencyModel::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            LatencyModel::Pareto {
                base,
                scale,
                alpha_log2,
                cap,
            } => {
                // u ∈ (0, 1]: flip the [0, 1) draw so the heavy tail sits at
                // small u without ever dividing by zero.
                let u = 1.0 - rng.gen::<f64>();
                // u^(−1/2^k) by repeated square roots (IEEE-correct, so the
                // value is identical on every conforming host).
                let mut v = u;
                for _ in 0..alpha_log2 {
                    v = v.sqrt();
                }
                let extra = scale as f64 * (1.0 / v - 1.0);
                let extra = if extra.is_finite() {
                    (extra as u64).min(cap)
                } else {
                    cap
                };
                base + extra
            }
        }
    }

    /// A compact label for tables, e.g. `c500`, `u200-1800`, `p500/1000a2`.
    pub fn label(&self) -> String {
        match *self {
            LatencyModel::Constant { ticks } => format!("c{ticks}"),
            LatencyModel::Uniform { min, max } => format!("u{min}-{max}"),
            LatencyModel::Pareto {
                base,
                scale,
                alpha_log2,
                ..
            } => format!("p{base}/{scale}a{}", 1u64 << alpha_log2),
        }
    }
}

/// The complete network model of an asynchronous execution: per-message
/// latency, extra uniform jitter, and an i.i.d. drop probability.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// The base delay distribution.
    pub latency: LatencyModel,
    /// Extra per-message jitter: a uniform draw from `[0, jitter]` ticks
    /// added on top of the latency (0 disables it).
    pub jitter: u64,
    /// Probability that a message is silently dropped in transit.
    pub loss: f64,
}

impl NetModel {
    /// A model with the given latency, no jitter and no loss.
    pub fn new(latency: LatencyModel) -> Self {
        NetModel {
            latency,
            jitter: 0,
            loss: 0.0,
        }
    }

    /// Decides the fate of message `seq` under master seed `seed`: `None`
    /// if the message is lost, otherwise its total delay in ticks.
    ///
    /// The draw order inside the per-message stream is fixed (loss, latency,
    /// jitter), so a model that disables a component still consumes the same
    /// stream positions as one that enables it — adding jitter to a sweep
    /// axis never perturbs the loss coin flips of its neighbours.
    pub fn route(&self, seed: u64, seq: u64) -> Option<u64> {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(&[seed, seq, NET_LABEL]));
        let lost = rng.gen::<f64>() < self.loss;
        let mut delay = self.latency.sample(&mut rng);
        if self.jitter > 0 {
            delay += rng.gen_range(0..=self.jitter);
        }
        if lost {
            None
        } else {
            Some(delay)
        }
    }

    /// A compact label for tables, e.g. `u200-1800+j300-l0.01`.
    pub fn label(&self) -> String {
        let mut label = self.latency.label();
        if self.jitter > 0 {
            label.push_str(&format!("+j{}", self.jitter));
        }
        if self.loss > 0.0 {
            label.push_str(&format!("-l{}", self.loss));
        }
        label
    }
}

/// Which execution engine a scenario runs on — the round-synchronous
/// lockstep engine, or the virtual-time event engine under a network model.
///
/// `Rounds` is the serde default and is *skipped* when a spec serializes, so
/// every artifact written before this type existed round-trips unchanged and
/// every artifact written after it stays byte-identical for synchronous runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// The paper's synchronous round model (`tsa-sim`'s lockstep engine).
    #[default]
    Rounds,
    /// The discrete-event engine of `tsa-event`: nodes still activate at
    /// round boundaries of the virtual clock, but every message individually
    /// samples a latency (plus jitter) and may be lost.
    Async {
        /// The base delay distribution, in ticks
        /// ([`TICKS_PER_ROUND`](crate::TICKS_PER_ROUND) per round).
        latency: LatencyModel,
        /// Extra uniform per-message jitter in `[0, jitter]` ticks.
        jitter: u64,
        /// Per-message drop probability.
        loss: f64,
    },
}

impl ExecutionModel {
    /// The synchronous round model.
    pub fn rounds() -> Self {
        ExecutionModel::Rounds
    }

    /// An asynchronous execution with the given latency model, no jitter and
    /// no loss.
    pub fn asynchronous(latency: LatencyModel) -> Self {
        ExecutionModel::Async {
            latency,
            jitter: 0,
            loss: 0.0,
        }
    }

    /// `true` for [`ExecutionModel::Rounds`] — the `skip_serializing_if`
    /// predicate that keeps synchronous specs byte-identical to the
    /// pre-`ExecutionModel` serialization.
    pub fn is_rounds(&self) -> bool {
        matches!(self, ExecutionModel::Rounds)
    }

    /// Adds uniform `[0, jitter]`-tick jitter (asynchronous models only).
    ///
    /// # Panics
    ///
    /// Panics on [`ExecutionModel::Rounds`], which has no network model.
    pub fn with_jitter(self, jitter: u64) -> Self {
        match self {
            ExecutionModel::Rounds => panic!("Rounds has no jitter to configure"),
            ExecutionModel::Async { latency, loss, .. } => ExecutionModel::Async {
                latency,
                jitter,
                loss,
            },
        }
    }

    /// Sets the per-message drop probability (asynchronous models only).
    ///
    /// # Panics
    ///
    /// Panics on [`ExecutionModel::Rounds`], which has no network model.
    pub fn with_loss(self, loss: f64) -> Self {
        match self {
            ExecutionModel::Rounds => panic!("Rounds has no loss to configure"),
            ExecutionModel::Async {
                latency, jitter, ..
            } => ExecutionModel::Async {
                latency,
                jitter,
                loss,
            },
        }
    }

    /// The network model of an asynchronous execution, `None` for `Rounds`.
    pub fn net_model(&self) -> Option<NetModel> {
        match *self {
            ExecutionModel::Rounds => None,
            ExecutionModel::Async {
                latency,
                jitter,
                loss,
            } => Some(NetModel {
                latency,
                jitter,
                loss,
            }),
        }
    }

    /// A compact label for sweep tables: `sync`, or `async(<net label>)`.
    pub fn label(&self) -> String {
        match self.net_model() {
            None => "sync".to_string(),
            Some(net) => format!("async({})", net.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::constant(7);
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 7);
        }
    }

    #[test]
    fn uniform_latency_stays_in_range_and_spreads() {
        let m = LatencyModel::uniform(100, 300);
        let mut r = rng(2);
        let draws: Vec<u64> = (0..500).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&d| (100..=300).contains(&d)));
        assert!(draws.iter().any(|&d| d < 150));
        assert!(draws.iter().any(|&d| d > 250));
    }

    #[test]
    fn pareto_latency_is_heavy_tailed_but_bounded() {
        let m = LatencyModel::pareto(100, 200, 1, 10_000);
        let mut r = rng(3);
        let draws: Vec<u64> = (0..2000).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&d| (100..=10_100).contains(&d)));
        // The α = 2 tail must actually produce multi-round outliers.
        assert!(draws.iter().any(|&d| d > 2000), "no tail events");
        let median = {
            let mut s = draws.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(median < 500, "median {median} should sit near the base");
    }

    #[test]
    fn routing_is_a_pure_function_of_seed_and_seq() {
        let net = NetModel {
            latency: LatencyModel::uniform(0, 1000),
            jitter: 250,
            loss: 0.1,
        };
        for seq in 0..200 {
            assert_eq!(net.route(9, seq), net.route(9, seq));
        }
        let fates_a: Vec<_> = (0..200).map(|s| net.route(9, s)).collect();
        let fates_b: Vec<_> = (0..200).map(|s| net.route(10, s)).collect();
        assert_ne!(fates_a, fates_b, "different seeds give different fates");
        assert!(fates_a.iter().any(|f| f.is_none()), "loss must occur");
        assert!(fates_a.iter().filter(|f| f.is_none()).count() < 60);
    }

    #[test]
    fn disabling_jitter_does_not_perturb_loss_or_latency() {
        let with = NetModel {
            latency: LatencyModel::constant(10),
            jitter: 5,
            loss: 0.5,
        };
        let without = NetModel { jitter: 0, ..with };
        for seq in 0..100 {
            let a = with.route(3, seq);
            let b = without.route(3, seq);
            assert_eq!(a.is_none(), b.is_none(), "loss coin flips must agree");
            if let (Some(a), Some(b)) = (a, b) {
                assert!((b..=b + 5).contains(&a));
            }
        }
    }

    #[test]
    fn execution_model_default_is_rounds_and_skipped() {
        assert_eq!(ExecutionModel::default(), ExecutionModel::Rounds);
        assert!(ExecutionModel::rounds().is_rounds());
        let asynch = ExecutionModel::asynchronous(LatencyModel::constant(500))
            .with_jitter(100)
            .with_loss(0.01);
        assert!(!asynch.is_rounds());
        let net = asynch.net_model().unwrap();
        assert_eq!(net.jitter, 100);
        assert_eq!(net.loss, 0.01);
        assert_eq!(asynch.label(), "async(c500+j100-l0.01)");
        assert_eq!(ExecutionModel::rounds().label(), "sync");
    }

    #[test]
    fn execution_model_round_trips_through_serde() {
        let models = [
            ExecutionModel::rounds(),
            ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800)),
            ExecutionModel::asynchronous(LatencyModel::pareto(100, 500, 1, 20_000))
                .with_jitter(50)
                .with_loss(0.02),
        ];
        for model in models {
            let json = serde_json::to_string(&model).unwrap();
            let back: ExecutionModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model, "{json}");
        }
    }
}
