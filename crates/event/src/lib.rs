//! # tsa-event — deterministic virtual-time asynchronous execution
//!
//! The paper proves overlay maintenance in a *synchronous round* model; this
//! crate asks the robustness question that model cannot: does the
//! two-steps-ahead maintenance survive *bounded-delay asynchrony*, where
//! every message individually samples a latency, jitters across round
//! boundaries, or is lost outright?
//!
//! * [`EventSimulator`] is a discrete-event engine over a virtual tick clock
//!   ([`TICKS_PER_ROUND`] ticks per protocol round) with a calendar
//!   (timing-wheel) event queue ([`queue::CalendarQueue`]) popping in the
//!   total order `(time, seq, node)`;
//! * [`LatencyModel`] / [`NetModel`] are ChaCha8-seeded per-message
//!   latency/jitter/loss models — every message's fate is a pure function of
//!   `(master seed, send sequence number)` (derived in 64-message
//!   [`FateBlock`] batches that amortize the RNG key schedule), so identical
//!   seeds give byte-identical traces at any thread/host configuration;
//! * [`Topology`] makes the network addressable by link: one global model,
//!   regional partitions ([`RegionAssign`] is a pure function of the node
//!   id) joined by a possibly slow/lossy — and [`PartitionSchedule`]d —
//!   bridge, or explicit per-link overrides;
//! * [`MessageTrace`] records the fate of every message (lost, or delivered
//!   at which round) on one engine and replays it as a fixed schedule on
//!   another — the bridge the `tsa-net` loopback transport uses to twin a
//!   wall-clock run with a deterministic replay;
//! * [`FaultPlan`] is a serde-round-trippable fault-injection language:
//!   ordered rules of (round window, sender/receiver/region selector,
//!   message kind) → (drop | delay | duplicate | mutate), decided by pure
//!   functions of `(seed, seq)` so the same plan injects byte-identical
//!   faults on this engine and on the loopback transport;
//! * [`ExecutionModel`] is the serde-round-trippable selector the
//!   `tsa-scenario` / `tsa-sweep` stack uses to pick an engine per scenario
//!   (default: the synchronous round model).
//!
//! Both engines schedule the *same* node logic — any
//! [`ProtocolStep`](tsa_sim::ProtocolStep) (which every
//! [`Process`](tsa_sim::Process) implements) — and share one churn arbiter,
//! so the lockstep round engine is just one scheduler policy: an event run
//! whose delays never exceed one round reproduces it bit for bit.
//!
//! ```
//! use tsa_event::{EventConfig, EventSimulator, LatencyModel, NetModel};
//! use tsa_sim::prelude::*;
//!
//! // A trivial protocol: every node pings node 0 each activation.
//! struct Pinger;
//! impl Process for Pinger {
//!     type Msg = ();
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[Envelope<()>]) {
//!         ctx.send(NodeId(0), ());
//!     }
//! }
//!
//! let config = EventConfig::new(
//!     SimConfig::default().with_seed(7),
//!     NetModel::new(LatencyModel::uniform(200, 2500)), // delays straddle rounds
//! );
//! let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Pinger));
//! sim.seed_nodes(8);
//! sim.run(6);
//! assert_eq!(sim.node_count(), 8);
//! assert!(sim.metrics().total_messages() > 0);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod fault;
pub mod model;
pub mod queue;
pub mod trace;

pub use engine::{EventConfig, EventSimulator, NetStats};
pub use fault::{
    FaultAction, FaultAdapter, FaultCoins, FaultDecision, FaultPlan, FaultRule, FaultStats,
    NodeSelector, RoundWindow,
};
pub use model::{
    ExecutionModel, FateBlock, LatencyModel, LinkOverride, NetModel, PartitionSchedule,
    RegionAssign, RegionEntry, Topology, FATE_BLOCK_LANES,
};
pub use trace::{MessageFate, MessageTrace};

/// Virtual ticks per protocol round: the resolution at which latencies,
/// jitter and the round cadence are expressed. A latency of
/// `TICKS_PER_ROUND` is exactly the synchronous model's one-round delay.
pub const TICKS_PER_ROUND: u64 = 1000;

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::prelude::*;
    use tsa_sim::{SimConfig, Simulator};

    /// The round engine's own test protocol: flood a counter to the two
    /// numerically adjacent identifiers each round.
    #[derive(Default)]
    struct Ping {
        heard: Vec<u64>,
    }

    impl Process for Ping {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
            for env in inbox {
                self.heard.push(env.payload);
            }
            // The payload tags the sender, so per-inbox *order* is part of
            // every fingerprint: a delivery-order divergence between the
            // engines cannot hide behind identical payloads.
            let me = ctx.id().raw();
            let tag = (me << 32) | ctx.round();
            ctx.send(NodeId(me.wrapping_add(1)), tag);
            if me > 0 {
                ctx.send(NodeId(me - 1), tag);
            }
        }
        fn state_digest(&self) -> u64 {
            self.heard.len() as u64
        }
    }

    fn event_sim(net: NetModel, seed: u64) -> EventSimulator<Ping, NullAdversary> {
        let config = EventConfig::new(SimConfig::default().with_seed(seed), net);
        EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()))
    }

    /// The trace fingerprint two engines must agree on: per-node heard
    /// sequences, the latest comm graph, and the whole metrics history.
    fn fingerprint(
        heard: Vec<(NodeId, Vec<u64>)>,
        edges: Vec<(NodeId, NodeId)>,
        metrics: &tsa_sim::MetricsHistory,
    ) -> String {
        format!("{heard:?}|{edges:?}|{:?}", metrics.rounds())
    }

    fn round_engine_fingerprint(seed: u64, n: usize, rounds: u64) -> String {
        let config = SimConfig::default().with_seed(seed).with_parallel(false);
        let mut sim = Simulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
        sim.seed_nodes(n);
        sim.run(rounds);
        let heard = sim
            .member_ids()
            .iter()
            .map(|&id| (id, sim.node(id).unwrap().heard.clone()))
            .collect();
        let edges = sim.records().last().unwrap().graph.edges.clone();
        fingerprint(heard, edges, sim.metrics())
    }

    fn event_engine_fingerprint(net: NetModel, seed: u64, n: usize, rounds: u64) -> String {
        let mut sim = event_sim(net, seed);
        sim.seed_nodes(n);
        sim.run(rounds);
        let heard = sim
            .member_ids()
            .iter()
            .map(|&id| (id, sim.node(id).unwrap().heard.clone()))
            .collect();
        let edges = sim.records().last().unwrap().graph.edges.clone();
        fingerprint(heard, edges, sim.metrics())
    }

    #[test]
    fn sub_round_delays_reproduce_the_round_engine_exactly() {
        // Any constant delay of at most one round is the synchronous model.
        for ticks in [0, 1, 500, TICKS_PER_ROUND] {
            let net = NetModel::new(LatencyModel::constant(ticks));
            assert_eq!(
                event_engine_fingerprint(net, 11, 12, 6),
                round_engine_fingerprint(11, 12, 6),
                "constant {ticks}-tick delay must match the round engine"
            );
        }
        // ... and so is sub-round jitter on a zero base.
        let jittered = NetModel {
            latency: LatencyModel::constant(0),
            jitter: TICKS_PER_ROUND,
            loss: 0.0,
        };
        assert_eq!(
            event_engine_fingerprint(jittered, 11, 12, 6),
            round_engine_fingerprint(11, 12, 6),
            "sub-round jitter must not change the trace"
        );
    }

    #[test]
    fn traces_are_a_pure_function_of_the_seed() {
        let net = NetModel {
            latency: LatencyModel::uniform(100, 3500),
            jitter: 400,
            loss: 0.05,
        };
        let a = event_engine_fingerprint(net, 5, 16, 8);
        let b = event_engine_fingerprint(net, 5, 16, 8);
        assert_eq!(a, b, "same seed, same trace");
        let c = event_engine_fingerprint(net, 6, 16, 8);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn a_recorded_lossy_run_replays_bit_for_bit() {
        // Record the fates of a jittery, lossy run, then replay them in an
        // engine whose own network model would deliver instantly: the fixed
        // fate schedule alone must reproduce the recorded trace.
        let net = NetModel {
            latency: LatencyModel::uniform(100, 3500),
            jitter: 400,
            loss: 0.05,
        };
        let mut rec = event_sim(net, 5);
        rec.record_trace();
        rec.seed_nodes(16);
        rec.run(8);
        let trace = rec.take_trace().unwrap();
        assert_eq!(trace.len() as u64, rec.net_stats().sent);
        assert_eq!(trace.lost_count() as u64, rec.net_stats().lost);

        let mut rep = event_sim(NetModel::new(LatencyModel::constant(0)), 5);
        rep.set_replay(trace);
        rep.seed_nodes(16);
        rep.run(8);

        let fp = |sim: &EventSimulator<Ping, NullAdversary>| {
            let heard = sim
                .member_ids()
                .iter()
                .map(|&id| (id, sim.node(id).unwrap().heard.clone()))
                .collect();
            let edges = sim.records().last().unwrap().graph.edges.clone();
            fingerprint(heard, edges, sim.metrics())
        };
        assert_eq!(fp(&rep), fp(&rec), "replay must reproduce the recording");
        assert_eq!(rep.net_stats().sent, rec.net_stats().sent);
        assert_eq!(rep.net_stats().lost, rec.net_stats().lost);
    }

    #[test]
    fn traces_ignore_the_ambient_thread_budget() {
        // The event loop is sequential; a thread cap (as imposed on sweep
        // workers) must not perturb a single bit.
        let net = NetModel {
            latency: LatencyModel::pareto(100, 800, 1, 20_000),
            jitter: 100,
            loss: 0.02,
        };
        let baseline = event_engine_fingerprint(net, 9, 16, 8);
        for cap in [1usize, 2, 4] {
            let capped = rayon::with_thread_cap(cap, || event_engine_fingerprint(net, 9, 16, 8));
            assert_eq!(capped, baseline, "divergence under thread cap {cap}");
        }
    }

    fn event_sim_topo(topology: Topology, seed: u64) -> EventSimulator<Ping, NullAdversary> {
        let config = EventConfig::with_topology(SimConfig::default().with_seed(seed), topology);
        EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()))
    }

    fn topo_fingerprint(topology: Topology, seed: u64, n: usize, rounds: u64) -> String {
        let mut sim = event_sim_topo(topology, seed);
        sim.seed_nodes(n);
        sim.run(rounds);
        let heard = sim
            .member_ids()
            .iter()
            .map(|&id| (id, sim.node(id).unwrap().heard.clone()))
            .collect();
        let edges = sim.records().last().unwrap().graph.edges.clone();
        fingerprint(heard, edges, sim.metrics())
    }

    #[test]
    fn equal_model_topologies_reproduce_the_global_trace() {
        // The trace-level half of the topology equivalence bridge: a
        // regional split whose intra and inter models agree, and a per-link
        // topology with no overrides, are the global network bit for bit —
        // loss coins, delays and delivery order included.
        let net = NetModel {
            latency: LatencyModel::uniform(100, 2800),
            jitter: 300,
            loss: 0.05,
        };
        let global = topo_fingerprint(Topology::global(net), 13, 16, 8);
        for assign in [
            RegionAssign::halves(8),
            RegionAssign::bands(4, 3),
            RegionAssign::explicit(1, [(0, 0), (7, 2)]),
        ] {
            assert_eq!(
                topo_fingerprint(Topology::regions(assign.clone(), net, net), 13, 16, 8),
                global,
                "intra == inter must be the global network ({})",
                assign.label()
            );
        }
        assert_eq!(
            topo_fingerprint(Topology::per_link(net, Vec::new()), 13, 16, 8),
            global,
            "no overrides must be the global network"
        );
    }

    #[test]
    fn a_severed_bridge_cuts_cross_region_traffic_only() {
        // 4 nodes in two halves {0,1} | {2,3}; the Ping protocol talks to
        // id ± 1, so the only cross links are 1 → 2 and 2 → 1. A bridge
        // with loss 1.0 must kill exactly those messages.
        let intra = NetModel::new(LatencyModel::constant(0));
        let cut = NetModel {
            latency: LatencyModel::constant(0),
            jitter: 0,
            loss: 1.0,
        };
        let mut sim = event_sim_topo(Topology::regions(RegionAssign::halves(2), intra, cut), 5);
        sim.seed_nodes(4);
        sim.run(6);
        let stats = sim.net_stats();
        assert!(stats.bridge_sent > 0, "cross sends are attempted");
        assert_eq!(stats.bridge_lost, stats.bridge_sent, "and all are lost");
        assert_eq!(stats.lost, stats.bridge_lost, "intra traffic is untouched");
        // Node 2 can only ever hear node 3 (tag high bits = sender id).
        let heard = &sim.node(NodeId(2)).unwrap().heard;
        assert!(!heard.is_empty());
        assert!(heard.iter().all(|tag| tag >> 32 == 3));
        // The comm graph still records the *attempted* cross edges — the
        // halves still try to talk, which is what cross_region_edges
        // measures (2 directed edges: 1→2 and 2→1).
        assert_eq!(sim.cross_region_edges(), 2);
    }

    #[test]
    fn a_scheduled_partition_heals_on_time() {
        // Bridge severed for sends of rounds [1, 3): node 2 must hear node
        // 1's round-0, round-3 and round-4 tags, and nothing in between.
        let intra = NetModel::new(LatencyModel::constant(0));
        let cut = NetModel {
            latency: LatencyModel::constant(0),
            jitter: 0,
            loss: 1.0,
        };
        let mut sim = event_sim_topo(
            Topology::regions_with_schedule(
                RegionAssign::halves(2),
                intra,
                cut,
                PartitionSchedule::window(1, 3),
            ),
            5,
        );
        sim.seed_nodes(4);
        sim.run(6);
        let from_one: Vec<u64> = sim
            .node(NodeId(2))
            .unwrap()
            .heard
            .iter()
            .filter(|tag| *tag >> 32 == 1)
            .map(|tag| tag & 0xFFFF_FFFF)
            .collect();
        assert_eq!(from_one, vec![0, 3, 4], "severed exactly during [1, 3)");
        let stats = sim.net_stats();
        assert!(stats.bridge_lost > 0 && stats.bridge_lost < stats.bridge_sent);
    }

    #[test]
    fn multi_round_delays_straddle_boundaries() {
        // A constant 2.5-round delay: messages sent in round t arrive in
        // round t + 3 (the first boundary past 2500 ticks).
        let net = NetModel::new(LatencyModel::constant(2 * TICKS_PER_ROUND + 500));
        let mut sim = event_sim(net, 3);
        sim.seed_nodes(4);
        sim.run(3);
        assert_eq!(
            sim.metrics().rounds()[2].messages_delivered,
            0,
            "nothing can arrive before round 3"
        );
        sim.step();
        assert!(
            sim.metrics().rounds()[3].messages_delivered > 0,
            "round-0 sends arrive at round 3"
        );
        assert!(sim.in_flight_count() > 0);
        assert_eq!(sim.net_stats().max_delay_ticks, 2500);
    }

    #[test]
    fn loss_drops_messages_and_counts_them() {
        let net = NetModel {
            latency: LatencyModel::constant(0),
            jitter: 0,
            loss: 0.25,
        };
        let mut sim = event_sim(net, 8);
        sim.seed_nodes(16);
        sim.run(10);
        let stats = sim.net_stats();
        assert!(stats.lost > 0, "a 25% loss rate must drop something");
        assert!(stats.lost < stats.sent / 2, "but not half the traffic");
        // The edge nodes also ping the nonexistent ids -1/n, which count as
        // receiver-departed drops (exactly as in the round engine).
        let dropped: usize = sim
            .metrics()
            .rounds()
            .iter()
            .map(|m| m.messages_dropped)
            .sum();
        assert_eq!(
            dropped as u64,
            stats.lost + stats.dropped_departed,
            "every drop is charged to metrics"
        );
        let delivered: usize = sim
            .metrics()
            .rounds()
            .iter()
            .map(|m| m.messages_delivered)
            .sum();
        assert_eq!(
            delivered as u64 + stats.lost + stats.dropped_departed + sim.in_flight_count() as u64,
            stats.sent,
            "every sent message is delivered, lost, dropped, or still queued"
        );
    }

    #[test]
    fn churn_works_at_round_boundaries() {
        use tsa_sim::ChurnRules;

        struct OneShotChurn;
        impl Adversary for OneShotChurn {
            fn plan(&mut self, round: Round, view: &KnowledgeView<'_>) -> ChurnPlan {
                if round == 2 {
                    let bootstrap = *view.eligible_bootstraps().last().unwrap();
                    ChurnPlan {
                        departures: vec![NodeId(0)],
                        joins: vec![JoinPlan { bootstrap }],
                    }
                } else {
                    ChurnPlan::none()
                }
            }
        }
        let sim_config = SimConfig::default().with_churn_rules(ChurnRules {
            max_events: Some(10),
            window: 4,
            ..ChurnRules::default()
        });
        let config = EventConfig::new(sim_config, NetModel::new(LatencyModel::constant(0)));
        let mut sim = EventSimulator::new(config, OneShotChurn, Box::new(|_, _| Ping::default()));
        sim.seed_nodes(4);
        sim.run(3);
        assert!(!sim.member_ids().contains(&NodeId(0)), "node 0 departed");
        assert_eq!(sim.node_count(), 4, "one left, one joined");
        let outcome = sim.last_churn_outcome();
        assert_eq!(outcome.departed, vec![NodeId(0)]);
        assert_eq!(sim.joined_at(outcome.joined[0].0), Some(2));
        // Messages addressed to node 0 before its departure are dropped.
        sim.step();
        assert!(sim.net_stats().dropped_departed > 0);
    }

    #[test]
    fn history_window_trims_records() {
        let sim_config = SimConfig::default().with_history_window(3);
        let config = EventConfig::new(sim_config, NetModel::new(LatencyModel::constant(0)));
        let mut sim = EventSimulator::new(config, NullAdversary, Box::new(|_, _| Ping::default()));
        sim.seed_nodes(2);
        sim.run(10);
        assert_eq!(sim.records().len(), 3);
        assert_eq!(sim.records()[0].graph.round, 7);
        assert!(sim.comm_graph_at(9).is_some());
        assert!(sim.comm_graph_at(5).is_none());
    }
}
