//! A SPARTAN-style overlay (Augustine & Sivasubramaniam \\[2\\]): a wrapped
//! butterfly of *virtual* nodes, each simulated by a committee of `Θ(log n)`
//! real nodes.
//!
//! The real SPARTAN protocol continuously rotates nodes through committees;
//! for the Table-1 comparison we only need its *structure*, because the point
//! of the comparison is what a 2-late adversary can do to a topology whose
//! committee membership it can observe: removing a single committee
//! disconnects the corresponding virtual node and with it the butterfly's
//! routing paths.

use rand::seq::SliceRandom;
use rand::Rng;

use tsa_overlay::OverlayGraph;
use tsa_sim::NodeId;

/// A butterfly-of-committees overlay.
#[derive(Clone, Debug)]
pub struct SpartanOverlay {
    /// Number of butterfly levels (`log m` for `m` virtual nodes per level).
    pub levels: usize,
    /// Virtual nodes per level.
    pub per_level: usize,
    /// `committees[level][index]` = the real nodes simulating that virtual node.
    pub committees: Vec<Vec<Vec<NodeId>>>,
}

impl SpartanOverlay {
    /// Distributes `nodes` over a wrapped butterfly with committees of size
    /// roughly `committee_size`.
    pub fn build<R: Rng + ?Sized>(
        mut nodes: Vec<NodeId>,
        committee_size: usize,
        rng: &mut R,
    ) -> Self {
        nodes.shuffle(rng);
        let committee_size = committee_size.max(1);
        let total_committees = (nodes.len() / committee_size).max(1);
        // Choose per_level as a power of two and levels = log2(per_level),
        // the canonical wrapped-butterfly shape.
        let mut per_level = 1usize;
        while per_level * (per_level.trailing_zeros() as usize + 1).max(1) * 2 <= total_committees {
            per_level *= 2;
        }
        let levels = per_level.trailing_zeros().max(1) as usize;
        let needed = per_level * levels;
        let mut committees = vec![vec![Vec::new(); per_level]; levels];
        for (i, node) in nodes.iter().enumerate() {
            let c = i % needed;
            let level = c / per_level;
            let idx = c % per_level;
            committees[level][idx].push(*node);
        }
        SpartanOverlay {
            levels,
            per_level,
            committees,
        }
    }

    /// The committee of a virtual node.
    pub fn committee(&self, level: usize, index: usize) -> &[NodeId] {
        &self.committees[level][index]
    }

    /// The smallest committee size (zero means a virtual node is unpopulated
    /// and the butterfly is broken).
    pub fn min_committee_size(&self) -> usize {
        self.committees
            .iter()
            .flat_map(|l| l.iter())
            .map(|c| c.len())
            .min()
            .unwrap_or(0)
    }

    /// Materializes the real-node graph: full connectivity inside each
    /// committee and between committees adjacent in the wrapped butterfly
    /// (straight edge and cross edge to the next level).
    pub fn to_graph(&self) -> OverlayGraph {
        let mut g = OverlayGraph::new();
        for level in 0..self.levels {
            for idx in 0..self.per_level {
                let members = &self.committees[level][idx];
                for &m in members {
                    g.add_vertex(m);
                }
                // Intra-committee clique.
                for (i, &a) in members.iter().enumerate() {
                    for &b in members.iter().skip(i + 1) {
                        g.add_undirected_edge(a, b);
                    }
                }
                // Butterfly edges to the next level (wrapped).
                let next_level = (level + 1) % self.levels;
                let bit = 1usize
                    << (level % usize::BITS as usize).min(self.per_level.trailing_zeros() as usize);
                let straight = idx;
                let cross = idx ^ bit.min(self.per_level / 2);
                for &target in [straight, cross].iter() {
                    for &a in members {
                        for &b in &self.committees[next_level][target % self.per_level] {
                            if a != b {
                                g.add_undirected_edge(a, b);
                            }
                        }
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn butterfly_is_connected_and_committees_populated() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = SpartanOverlay::build(nodes(256), 8, &mut rng);
        assert!(s.levels >= 1);
        assert!(
            s.min_committee_size() >= 1,
            "every virtual node needs a committee"
        );
        assert!(s.to_graph().is_connected());
    }

    #[test]
    fn committee_access() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = SpartanOverlay::build(nodes(64), 4, &mut rng);
        let c = s.committee(0, 0);
        assert!(!c.is_empty());
    }

    #[test]
    fn small_networks_do_not_panic() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = SpartanOverlay::build(nodes(5), 4, &mut rng);
        assert!(s.min_committee_size() >= 1);
        let g = s.to_graph();
        assert_eq!(g.vertex_count(), 5);
    }
}
