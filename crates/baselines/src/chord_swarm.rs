//! Chord with swarms (Fiat, Saia & Young \\[7\\]): every virtual Chord address is
//! maintained by a swarm of `Θ(log n)` nodes, the construction the LDS borrows
//! its swarm idea from. Static baseline for Table 1.

use rand::Rng;

use tsa_overlay::{OverlayGraph, OverlayParams, Position, SwarmIndex};
use tsa_sim::NodeId;

/// A Chord-with-swarms snapshot: nodes at random ring positions, each
/// connected to its own swarm and to the swarms at the classic Chord finger
/// distances `2^{-i}`.
#[derive(Clone, Debug)]
pub struct ChordSwarm {
    params: OverlayParams,
    index: SwarmIndex,
    positions: Vec<(NodeId, Position)>,
}

impl ChordSwarm {
    /// Builds a Chord-with-swarms overlay with uniformly random positions.
    pub fn random<R: Rng + ?Sized>(params: OverlayParams, nodes: Vec<NodeId>, rng: &mut R) -> Self {
        let positions: Vec<(NodeId, Position)> = nodes
            .into_iter()
            .map(|id| (id, Position::new(rng.gen::<f64>())))
            .collect();
        let index = SwarmIndex::build(positions.iter().copied());
        ChordSwarm {
            params,
            index,
            positions,
        }
    }

    /// Number of finger levels (`λ`).
    pub fn fingers(&self) -> u32 {
        self.params.lambda()
    }

    /// The neighbours of one node: its own swarm plus the swarm at each finger
    /// distance.
    pub fn neighbors(&self, node: NodeId, position: Position) -> Vec<NodeId> {
        let r = self.params.swarm_radius();
        let mut out = self.index.within(position, r);
        for i in 1..=self.fingers() {
            let finger = position.offset(1.0 / (1u64 << i) as f64);
            out.extend(self.index.within(finger, r));
        }
        out.sort();
        out.dedup();
        out.retain(|&id| id != node);
        out
    }

    /// Materializes the graph.
    pub fn to_graph(&self) -> OverlayGraph {
        let mut g = OverlayGraph::with_vertices(self.positions.iter().map(|(id, _)| *id));
        for &(id, p) in &self.positions {
            for w in self.neighbors(id, p) {
                g.add_edge(id, w);
            }
        }
        g
    }

    /// The positions of all nodes.
    pub fn positions(&self) -> &[(NodeId, Position)] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn chord_swarm_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = OverlayParams::with_default_c(128);
        let c = ChordSwarm::random(params, (0..128).map(NodeId).collect(), &mut rng);
        assert!(c.to_graph().is_connected());
        assert!(c.fingers() >= 7);
        assert_eq!(c.positions().len(), 128);
    }

    #[test]
    fn neighbors_exclude_self_and_are_deduplicated() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = OverlayParams::with_default_c(64);
        let c = ChordSwarm::random(params, (0..64).map(NodeId).collect(), &mut rng);
        let (id, p) = c.positions()[0];
        let nbrs = c.neighbors(id, p);
        assert!(!nbrs.contains(&id));
        let mut sorted = nbrs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), nbrs.len());
    }
}
