//! # tsa-baselines — the Table-1 comparison overlays
//!
//! Faithful structural reimplementations of the related-work overlays the
//! paper compares against in Table 1, plus churn-resilience trials:
//!
//! * [`HdGraph`] — union of `d` random rings (Drees, Gmyr & Scheideler);
//! * [`SpartanOverlay`] — wrapped butterfly of `Θ(log n)` committees
//!   (Augustine & Sivasubramaniam);
//! * [`ChordSwarm`] — Chord with swarms (Fiat, Saia & Young);
//! * a *static* (never reconfigured) LDS is available directly from
//!   `tsa_overlay::Lds`;
//! * [`attack_trial`] — remove a churn budget randomly or targeted at a
//!   neighbourhood and measure what is left.
//!
//! Only the structures are reproduced, not the full maintenance protocols of
//! those papers: the Table-1 experiment compares what a 2-late adversary can
//! do to a topology it can observe, which depends on the structure alone.

#![warn(missing_docs)]

pub mod chord_swarm;
pub mod hdgraph;
pub mod resilience;
pub mod spartan;

pub use chord_swarm::ChordSwarm;
pub use hdgraph::HdGraph;
pub use resilience::{attack_trial, AttackMode, ResilienceOutcome};
pub use spartan::SpartanOverlay;
