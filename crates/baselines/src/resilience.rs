//! Churn-resilience trials over static topology snapshots.
//!
//! These trials drive the Table-1 comparison: given a topology snapshot, an
//! adversary that can see it (because it is static and the adversary is only
//! 2-late) removes its churn budget either *randomly* (what an oblivious
//! adversary can do) or *targeted* — concentrating on one node's neighbourhood
//! to carve out a cut. The maintained LDS is exercised separately through the
//! full protocol; here we quantify how every non-reconfiguring structure
//! collapses under the same budget.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use tsa_overlay::OverlayGraph;
use tsa_sim::NodeId;

/// How the trial spends its removal budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackMode {
    /// Remove uniformly random nodes (oblivious adversary).
    Random,
    /// Remove a pivot node's neighbourhood (and, budget permitting, the
    /// neighbourhoods of its neighbours) — what a topology-aware adversary
    /// does to a static overlay.
    TargetedNeighborhood,
}

/// Result of one resilience trial.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ResilienceOutcome {
    /// Nodes before the attack.
    pub nodes_before: usize,
    /// Nodes removed.
    pub removed: usize,
    /// Whether the surviving graph is still connected.
    pub connected_after: bool,
    /// Fraction of survivors in the largest component.
    pub largest_component_fraction: f64,
    /// Number of survivors that ended up isolated (degree 0).
    pub isolated_survivors: usize,
}

/// Removes `budget` nodes from `graph` according to `mode` and measures what
/// is left.
pub fn attack_trial<R: Rng + ?Sized>(
    graph: &OverlayGraph,
    budget: usize,
    mode: AttackMode,
    rng: &mut R,
) -> ResilienceOutcome {
    let mut vertices: Vec<NodeId> = graph.vertices().collect();
    vertices.sort();
    let nodes_before = vertices.len();
    let budget = budget.min(nodes_before.saturating_sub(1));

    let mut removed: HashSet<NodeId> = HashSet::new();
    match mode {
        AttackMode::Random => {
            vertices.shuffle(rng);
            removed.extend(vertices.iter().copied().take(budget));
        }
        AttackMode::TargetedNeighborhood => {
            vertices.shuffle(rng);
            let mut frontier: Vec<NodeId> = Vec::new();
            let mut source = vertices.into_iter();
            while removed.len() < budget {
                let pivot = match frontier.pop() {
                    Some(p) => p,
                    None => match source.next() {
                        Some(p) => p,
                        None => break,
                    },
                };
                if !removed.insert(pivot) {
                    continue;
                }
                for &n in graph.neighbors(pivot) {
                    if !removed.contains(&n) {
                        frontier.push(n);
                    }
                }
            }
            while removed.len() > budget {
                // We may have overshot by inserting the last pivot; trim back.
                let extra = *removed.iter().next().unwrap();
                removed.remove(&extra);
            }
        }
    }

    let survivors: HashSet<NodeId> = graph.vertices().filter(|v| !removed.contains(v)).collect();
    let restricted = graph.restrict_to(&survivors);
    let isolated = survivors
        .iter()
        .filter(|v| restricted.out_degree(**v) == 0)
        .count();
    ResilienceOutcome {
        nodes_before,
        removed: removed.len(),
        connected_after: restricted.is_connected(),
        largest_component_fraction: restricted.largest_component_fraction(),
        isolated_survivors: isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: u64) -> OverlayGraph {
        let mut g = OverlayGraph::new();
        for i in 0..n {
            g.add_undirected_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    /// A clique is connected no matter which nodes are removed.
    fn clique(n: u64) -> OverlayGraph {
        let mut g = OverlayGraph::new();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_undirected_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn clique_survives_any_attack() {
        let g = clique(32);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for mode in [AttackMode::Random, AttackMode::TargetedNeighborhood] {
            let out = attack_trial(&g, 8, mode, &mut rng);
            assert!(out.connected_after, "{mode:?} must not disconnect a clique");
            assert_eq!(out.removed, 8);
            assert_eq!(out.isolated_survivors, 0);
        }
    }

    /// A star graph: node 0 is the hub, everyone else is a leaf.
    fn star(n: u64) -> OverlayGraph {
        let mut g = OverlayGraph::new();
        for i in 1..n {
            g.add_undirected_edge(NodeId(0), NodeId(i));
        }
        g
    }

    #[test]
    fn targeted_attack_shatters_a_star() {
        // The first pivot is a leaf, whose only neighbour is the hub, so the
        // hub is removed almost immediately and the survivors are isolated.
        let g = star(64);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = attack_trial(&g, 8, AttackMode::TargetedNeighborhood, &mut rng);
        assert!(
            out.largest_component_fraction < 0.1,
            "hub removal must shatter the star: {out:?}"
        );
        assert!(out.isolated_survivors > 40);
    }

    #[test]
    fn targeted_attack_carves_a_contiguous_block_from_a_ring() {
        // A ring survives as a path when one contiguous block is removed; the
        // point is that the removal is contiguous (no isolated survivors).
        let g = ring(64);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = attack_trial(&g, 8, AttackMode::TargetedNeighborhood, &mut rng);
        assert_eq!(out.removed, 8);
        assert_eq!(out.isolated_survivors, 0);
    }

    #[test]
    fn budget_is_respected_and_capped() {
        let g = ring(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = attack_trial(&g, 100, AttackMode::Random, &mut rng);
        assert_eq!(out.removed, 9, "budget capped to n-1");
        assert_eq!(out.nodes_before, 10);
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let g = ring(16);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out = attack_trial(&g, 0, AttackMode::TargetedNeighborhood, &mut rng);
        assert_eq!(out.removed, 0);
        assert!(out.connected_after);
        assert_eq!(out.largest_component_fraction, 1.0);
    }
}
