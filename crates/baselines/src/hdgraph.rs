//! The H_d graph of Drees, Gmyr & Scheideler \\[4\\]: the union of `d` random
//! rings ("random cycles"), a constant-degree structured expander.
//!
//! Used as a Table-1 baseline: it tolerates enormous churn against an
//! `O(log log n)`-late adversary, but a 2-late adversary that can see the
//! (static) topology simply removes one node's entire neighbourhood.

use rand::seq::SliceRandom;
use rand::Rng;

use tsa_overlay::OverlayGraph;
use tsa_sim::NodeId;

/// A union of `d` independent uniformly random rings over the node set.
#[derive(Clone, Debug)]
pub struct HdGraph {
    /// The node set.
    pub nodes: Vec<NodeId>,
    /// The `d` rings, each a permutation of the node set.
    pub rings: Vec<Vec<NodeId>>,
}

impl HdGraph {
    /// Samples an H_d graph over `nodes` with `d` rings.
    pub fn random<R: Rng + ?Sized>(nodes: Vec<NodeId>, d: usize, rng: &mut R) -> Self {
        let mut rings = Vec::with_capacity(d);
        for _ in 0..d {
            let mut ring = nodes.clone();
            ring.shuffle(rng);
            rings.push(ring);
        }
        HdGraph { nodes, rings }
    }

    /// The number of rings `d`.
    pub fn d(&self) -> usize {
        self.rings.len()
    }

    /// Materializes the (undirected) edge set.
    pub fn to_graph(&self) -> OverlayGraph {
        let mut g = OverlayGraph::with_vertices(self.nodes.iter().copied());
        for ring in &self.rings {
            let len = ring.len();
            if len < 2 {
                continue;
            }
            for i in 0..len {
                g.add_undirected_edge(ring[i], ring[(i + 1) % len]);
            }
        }
        g
    }

    /// Maximum degree (at most `2d`).
    pub fn max_degree(&self) -> usize {
        self.to_graph().max_out_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn hd_graph_is_connected_and_low_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = HdGraph::random(nodes(128), 3, &mut rng);
        assert_eq!(g.d(), 3);
        let graph = g.to_graph();
        assert!(graph.is_connected());
        assert!(g.max_degree() <= 6, "degree is at most 2d");
    }

    #[test]
    fn single_ring_is_a_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = HdGraph::random(nodes(10), 1, &mut rng);
        let graph = g.to_graph();
        assert!(graph.is_connected());
        assert_eq!(
            graph.edge_count(),
            20,
            "10 undirected cycle edges = 20 directed"
        );
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = HdGraph::random(nodes(1), 2, &mut rng);
        assert!(g.to_graph().is_connected());
    }
}
