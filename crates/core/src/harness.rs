//! A convenience harness wiring the maintenance protocol, an adversary and the
//! simulator together, plus the routability / health reporting used by the
//! experiments.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tsa_obs::ObsHandle;
use tsa_overlay::{Lds, OverlayGraph, Position};
use tsa_sim::{
    Adversary, ChurnRules, Lateness, MetricsHistory, MetricsMode, MetricsSummary, NodeId, Round,
    RoundMetrics, SimConfig, Simulator,
};

use crate::node::ProtocolNode;
use crate::params::MaintenanceParams;
use crate::snapshot::NodeSnapshot;

/// Health report of the maintained overlay at one instant.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MaintenanceReport {
    /// The round the report was taken after.
    pub round: Round,
    /// The overlay epoch that round belongs to.
    pub epoch: u64,
    /// Nodes currently in the network.
    pub node_count: usize,
    /// Nodes that count as mature.
    pub mature_count: usize,
    /// Mature nodes that hold a non-empty neighbour set for the current epoch.
    pub participating: usize,
    /// `participating / mature_count`.
    pub participation_rate: f64,
    /// Whether the actual neighbour graph over participating nodes is
    /// connected.
    pub connected: bool,
    /// Fraction of participating nodes in the largest component.
    pub largest_component_fraction: f64,
    /// Mean degree of participating nodes.
    pub mean_degree: f64,
    /// Smallest swarm size of the *ideal* overlay over participating nodes
    /// (empty swarms make the overlay unroutable).
    pub min_swarm_size: usize,
    /// Maximum messages received by one node in the most recent round.
    pub max_congestion: usize,
}

impl MaintenanceReport {
    /// The routability criterion used by the experiments: every mature node is
    /// wired in, the graph is connected, and no swarm is empty.
    pub fn is_routable(&self) -> bool {
        self.connected && self.participation_rate > 0.9 && self.min_swarm_size > 0
    }
}

/// The maintenance protocol running inside the simulator against an adversary.
pub struct MaintenanceHarness<A: Adversary> {
    sim: Simulator<ProtocolNode, A>,
    params: MaintenanceParams,
    /// The harness's own grip on the observability sink (the engine holds a
    /// clone): the protocol-level probes — sampling ages — live here, above
    /// the engine.
    obs: ObsHandle,
}

/// The genesis [`SimConfig`] shared by the round harness and the async
/// harness: same seed/hash-seed derivation, same history window — so the two
/// scheduler policies start from bit-identical worlds.
pub(crate) fn harness_sim_config(
    seed: u64,
    churn_rules: ChurnRules,
    lateness: Lateness,
) -> SimConfig {
    SimConfig::default()
        .with_seed(seed)
        .with_churn_rules(churn_rules)
        .with_lateness(lateness)
        .with_parallel(true)
        .with_history_window(64)
}

/// The node factory shared by both harnesses: genesis nodes (round 0) know
/// the initial member set, later joiners know nothing.
pub(crate) fn harness_factory(params: MaintenanceParams) -> tsa_sim::NodeFactory<ProtocolNode> {
    let n = params.overlay.n;
    let genesis: Arc<Vec<NodeId>> = Arc::new((0..n as u64).map(NodeId).collect());
    Box::new(move |id, round| {
        let genesis_ref = if round == 0 {
            Some(genesis.clone())
        } else {
            None
        };
        let mut node = ProtocolNode::new(params, genesis_ref);
        // The byzantine role is a pure function of the id, so every engine
        // (and a rejoining id) assigns it identically.
        if let Some(spec) = params.byzantine {
            if spec.is_byzantine(id) {
                node.set_byzantine(Some(spec.kind));
            }
        }
        node
    })
}

/// Builds the [`MaintenanceReport`] for one instant of a maintained overlay —
/// shared by the round harness and the async harness, so "healthy" means the
/// same thing under every execution engine.
pub(crate) fn build_report(
    params: &MaintenanceParams,
    hash_seed: u64,
    round: Round,
    snapshots: &[(NodeId, NodeSnapshot)],
    max_congestion: usize,
) -> MaintenanceReport {
    let epoch = round / 2;
    let node_count = snapshots.len();
    // Single pass: count the mature nodes and keep the participating
    // subset (no intermediate reference vectors, no set clones).
    let mut mature_count = 0usize;
    let mut participating: Vec<(NodeId, &NodeSnapshot)> = Vec::new();
    for (id, snap) in snapshots {
        if snap.mature {
            mature_count += 1;
            if snap.participating {
                participating.push((*id, snap));
            }
        }
    }
    let participating_ids: HashSet<NodeId> = participating.iter().map(|(id, _)| *id).collect();

    // The actual neighbour graph over participating nodes.
    let mut graph = OverlayGraph::with_vertices(participating_ids.iter().copied());
    for (id, snap) in &participating {
        for n in &snap.neighbors {
            if participating_ids.contains(n) {
                graph.add_edge(*id, *n);
            }
        }
    }
    let connected = !participating.is_empty() && graph.is_connected();
    let largest = if participating.is_empty() {
        0.0
    } else {
        graph.largest_component_fraction()
    };
    let mean_degree = if participating.is_empty() {
        0.0
    } else {
        participating.iter().map(|(_, s)| s.degree()).sum::<usize>() as f64
            / participating.len() as f64
    };

    // Ideal overlay over participating nodes: the smallest swarm size
    // determines whether routing can still make progress everywhere.
    let min_swarm_size = if participating.is_empty() {
        0
    } else {
        let lds = Lds::from_hash(
            params.overlay,
            participating_ids.iter().copied(),
            hash_seed,
            epoch,
        );
        lds.goodness_stats(&participating_ids, 0.75).min_swarm_size
    };

    let participation_rate = if mature_count == 0 {
        0.0
    } else {
        participating.len() as f64 / mature_count as f64
    };

    MaintenanceReport {
        round,
        epoch,
        node_count,
        mature_count,
        participating: participating.len(),
        participation_rate,
        connected,
        largest_component_fraction: largest,
        mean_degree,
        min_swarm_size,
        max_congestion,
    }
}

impl<A: Adversary> MaintenanceHarness<A> {
    /// Wires the protocol, an adversary and the simulator together from fully
    /// explicit parts. This is the low-level entry point the `tsa-scenario`
    /// builder sits on; experiments should prefer `tsa_scenario::Scenario`.
    pub fn assemble(
        params: MaintenanceParams,
        adversary: A,
        seed: u64,
        churn_rules: ChurnRules,
        lateness: Lateness,
    ) -> Self {
        let config = harness_sim_config(seed, churn_rules, lateness);
        let mut sim = Simulator::new(config, adversary, harness_factory(params));
        sim.seed_nodes(params.overlay.n);
        MaintenanceHarness {
            sim,
            params,
            obs: ObsHandle::off(),
        }
    }

    /// Attaches an observability sink to the engine and the harness-level
    /// probes (pass [`ObsHandle::off`] to detach).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.sim.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Selects how the engine retains per-round metrics. Call before
    /// running.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.sim.set_metrics_mode(mode);
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        self.sim.metrics_summary()
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        self.sim.last_metrics()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &MaintenanceParams {
        &self.params
    }

    /// The current round.
    pub fn round(&self) -> Round {
        self.sim.round()
    }

    /// The current overlay epoch.
    pub fn epoch(&self) -> u64 {
        self.sim.round() / 2
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.sim.node_count()
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        if self.obs.is_on() {
            // The engine's own `run` bypasses the harness-level probes.
            for _ in 0..rounds {
                self.step();
            }
        } else {
            self.sim.run(rounds);
        }
    }

    /// Runs the full churn-free bootstrap phase.
    pub fn run_bootstrap(&mut self) {
        self.run(self.params.bootstrap_rounds());
    }

    /// Executes a single round.
    pub fn step(&mut self) {
        self.sim.step();
        if self.obs.is_on() {
            self.probe_repair_sample_ages();
        }
    }

    /// Records the age — in maturity ages — of every sample surfaced by
    /// neighbour repair this round. The round harness has no network
    /// topology, so everything lands in region 0.
    fn probe_repair_sample_ages(&self) {
        let t = self.sim.round().saturating_sub(1);
        let maturity = self.params.maturity_age().max(1);
        for (_, node) in self.sim.nodes() {
            for &owner in node.repair_samples() {
                if let Some(joined) = self.sim.joined_at(owner) {
                    let age = t.saturating_sub(joined) / maturity;
                    self.obs.observe_region("proto.repair_sample_age", 0, age);
                }
            }
        }
    }

    /// Direct access to the underlying simulator.
    pub fn simulator(&self) -> &Simulator<ProtocolNode, A> {
        &self.sim
    }

    /// The per-round message metrics (congestion, Lemma 24).
    pub fn metrics(&self) -> &MetricsHistory {
        self.sim.metrics()
    }

    /// Snapshots of every node's observable state.
    pub fn snapshots(&self) -> Vec<(NodeId, NodeSnapshot)> {
        let now = self.sim.round().saturating_sub(1);
        self.sim
            .nodes()
            .map(|(id, node)| (id, node.snapshot(now)))
            .collect()
    }

    /// The health report for the most recently completed round.
    pub fn report(&self) -> MaintenanceReport {
        let round = self.sim.round().saturating_sub(1);
        let snapshots = self.snapshots();
        build_report(
            &self.params,
            self.sim.config().hash_seed,
            round,
            &snapshots,
            self.sim
                .last_metrics()
                .map(|m| m.max_received_per_node)
                .unwrap_or(0),
        )
    }

    /// Per-node connect counts of the last round, keyed by node — the quantity
    /// bounded by Lemma 22.
    pub fn connect_load(&self) -> HashMap<NodeId, usize> {
        self.snapshots()
            .into_iter()
            .map(|(id, s)| (id, s.stats.connects_received_last_round))
            .collect()
    }

    /// The current positions (ideal overlay) of all participating mature
    /// nodes, for analyses that need them.
    pub fn ideal_positions(&self) -> Vec<(NodeId, Position)> {
        let epoch = self.epoch();
        let hash_seed = self.sim.config().hash_seed;
        self.snapshots()
            .into_iter()
            .filter(|(_, s)| s.mature && s.participating)
            .map(|(id, _)| {
                (
                    id,
                    Position::new(tsa_sim::rng::position_hash(hash_seed, id, epoch)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::NullAdversary;

    fn small_params() -> MaintenanceParams {
        MaintenanceParams::new(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
    }

    fn without_churn(params: MaintenanceParams, seed: u64) -> MaintenanceHarness<NullAdversary> {
        MaintenanceHarness::assemble(
            params,
            NullAdversary,
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        )
    }

    #[test]
    fn bootstrap_produces_a_connected_participating_overlay() {
        let params = small_params();
        let mut h = without_churn(params, 1);
        h.run_bootstrap();
        // Run a couple of epochs beyond the bootstrap so the overlay is fully
        // CREATE-driven rather than genesis-driven.
        h.run(6);
        let report = h.report();
        assert_eq!(report.node_count, 48);
        assert_eq!(report.mature_count, 48);
        assert!(
            report.participation_rate > 0.95,
            "participation {} too low: {report:?}",
            report.participation_rate
        );
        assert!(report.connected, "overlay must be connected: {report:?}");
        assert!(report.min_swarm_size > 0);
        assert!(report.is_routable());
    }

    #[test]
    fn overlay_is_rebuilt_every_epoch() {
        let params = small_params();
        let mut h = without_churn(params, 2);
        h.run_bootstrap();
        h.run(4);
        let a = h.ideal_positions();
        h.run(2);
        let b = h.ideal_positions();
        let map_a: HashMap<NodeId, Position> = a.into_iter().collect();
        let moved = b
            .iter()
            .filter(|(id, p)| {
                map_a
                    .get(id)
                    .map(|q| q.distance(*p) > 1e-9)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            moved > 40,
            "positions must be completely re-drawn every epoch, only {moved} moved"
        );
    }

    #[test]
    fn report_before_any_round_is_safe() {
        let params = small_params();
        let h = without_churn(params, 3);
        let report = h.report();
        assert_eq!(report.node_count, 48);
        // Nothing has run yet, so nobody participates.
        assert!(!report.is_routable() || report.participating > 0);
    }
}
