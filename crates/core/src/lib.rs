//! # tsa-core — the overlay-maintenance protocol (`A_LDS` + `A_RANDOM`)
//!
//! The primary contribution of *"Always be Two Steps Ahead of Your Enemy"*:
//! an algorithm that rebuilds the entire overlay every two rounds, so that a
//! `(2, O(log n))`-late adversary that may churn `αn` nodes per `O(log n)`
//! rounds can never partition the network, while every node sends and
//! receives only `O(log^3 n)` messages per round.
//!
//! * [`ProtocolNode`] is the per-node state machine (Listings 3 and 4).
//! * [`MaintenanceParams`] bundles every tunable (`c`, `δ`, `τ`, `r`, …).
//! * [`MaintenanceHarness`] wires the protocol, an adversary and the
//!   round-synchronous simulator together and produces health reports
//!   (participation, connectivity, swarm sizes, congestion).
//!
//! Experiments should compose a harness through the `tsa-scenario` builder
//! (`Scenario::maintained_lds(n)…`); the low-level entry point it sits on is
//! [`MaintenanceHarness::assemble`]:
//!
//! ```no_run
//! use tsa_core::{MaintenanceHarness, MaintenanceParams};
//! use tsa_sim::NullAdversary;
//!
//! let params = MaintenanceParams::new(64).with_tau(4).with_replication(2);
//! let mut harness = MaintenanceHarness::assemble(
//!     params,
//!     NullAdversary,
//!     42,
//!     params.paper_churn_rules(),
//!     params.paper_lateness(),
//! );
//! harness.run_bootstrap();
//! harness.run(10);
//! let report = harness.report();
//! assert!(report.is_routable());
//! ```

#![deny(missing_docs)]

pub mod byzantine;
pub mod event_harness;
pub mod harness;
pub mod messages;
pub mod net_harness;
pub mod node;
pub mod params;
pub mod snapshot;

pub use byzantine::{ByzantineSpec, MisbehaviorKind};
pub use event_harness::AsyncMaintenanceHarness;
pub use harness::{MaintenanceHarness, MaintenanceReport};
pub use messages::{MsgKind, ProtocolMsg};
pub use net_harness::NetMaintenanceHarness;
pub use node::ProtocolNode;
pub use params::MaintenanceParams;
pub use snapshot::{NodeSnapshot, NodeStats};
